"""Geodesy substrate: ellipsoid, polar stereographic projection, corrections.

The paper overlays ICESat-2 tracks on Sentinel-2 scenes in the Antarctic
polar stereographic projection (EPSG:3976) and applies the ATL03 geophysical
corrections (geoid, ocean tide, inverted barometer) plus the first-photon
bias correction before resampling.  This subpackage provides those pieces
without external projection libraries.
"""

from repro.geodesy.ellipsoid import WGS84, Ellipsoid
from repro.geodesy.grid import GridDefinition
from repro.geodesy.projection import PolarStereographic, antarctic_polar_stereographic
from repro.geodesy.corrections import (
    GeophysicalCorrections,
    apply_geophysical_corrections,
    first_photon_bias_correction,
    inverted_barometer_correction,
    ocean_tide_correction,
    geoid_undulation,
)

__all__ = [
    "WGS84",
    "Ellipsoid",
    "GridDefinition",
    "PolarStereographic",
    "antarctic_polar_stereographic",
    "GeophysicalCorrections",
    "apply_geophysical_corrections",
    "first_photon_bias_correction",
    "inverted_barometer_correction",
    "ocean_tide_correction",
    "geoid_undulation",
]
