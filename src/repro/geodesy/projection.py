"""Polar stereographic projection (EPSG:3976 style) on an ellipsoid.

The forward/inverse formulas follow Snyder, *Map Projections — A Working
Manual* (USGS PP 1395), section 21, the same formulation used by proj4 for
the NSIDC Antarctic polar stereographic grid.  EPSG:3976 is the south polar
variant with a standard parallel of 70° S and central meridian 0° E on WGS84.

Only this projection is needed by the pipeline: both the simulated Sentinel-2
scenes and the ICESat-2 track points are expressed in its metre grid, so
overlaying the two datasets (paper Section III.A.3) is a direct nearest-pixel
lookup in projected coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geodesy.ellipsoid import WGS84, Ellipsoid


@dataclass(frozen=True)
class PolarStereographic:
    """Ellipsoidal polar stereographic projection.

    Parameters
    ----------
    ellipsoid:
        Reference ellipsoid.
    standard_parallel_deg:
        Latitude of true scale.  Negative for the south polar aspect
        (EPSG:3976 uses -70).
    central_meridian_deg:
        Longitude of the projection's y axis.
    false_easting, false_northing:
        Offsets added to the projected coordinates, in metres.
    """

    ellipsoid: Ellipsoid = WGS84
    standard_parallel_deg: float = -70.0
    central_meridian_deg: float = 0.0
    false_easting: float = 0.0
    false_northing: float = 0.0

    def __post_init__(self) -> None:
        if self.standard_parallel_deg == 0.0:
            raise ValueError("standard parallel of a polar stereographic projection cannot be 0")

    @property
    def south(self) -> bool:
        """True for the south polar aspect."""
        return self.standard_parallel_deg < 0.0

    # -- internal helpers ---------------------------------------------------

    def _t(self, lat_rad: np.ndarray) -> np.ndarray:
        """Isometric colatitude function t(lat) from Snyder eq. 15-9."""
        e = self.ellipsoid.e
        sin_lat = np.sin(lat_rad)
        return np.tan(np.pi / 4.0 - lat_rad / 2.0) / (
            (1.0 - e * sin_lat) / (1.0 + e * sin_lat)
        ) ** (e / 2.0)

    def _m(self, lat_rad: float) -> float:
        """Scale function m(lat) from Snyder eq. 14-15."""
        e2 = self.ellipsoid.e2
        sin_lat = np.sin(lat_rad)
        return float(np.cos(lat_rad) / np.sqrt(1.0 - e2 * sin_lat**2))

    # -- public API ---------------------------------------------------------

    def forward(
        self, lat_deg: np.ndarray, lon_deg: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project geodetic (lat, lon) in degrees to (x, y) in metres."""
        lat = np.asarray(lat_deg, dtype=float)
        lon = np.asarray(lon_deg, dtype=float)
        if np.any(np.abs(lat) > 90.0):
            raise ValueError("latitude out of range [-90, 90]")
        sign = -1.0 if self.south else 1.0
        # Work in the north polar aspect internally by mirroring latitudes.
        lat_rad = np.radians(sign * lat)
        lon_rad = np.radians(sign * (lon - self.central_meridian_deg))
        lat_ts = np.radians(sign * self.standard_parallel_deg)

        a = self.ellipsoid.a
        t = self._t(lat_rad)
        t_c = self._t(np.asarray(lat_ts))
        m_c = self._m(float(lat_ts))
        rho = a * m_c * t / t_c

        x = rho * np.sin(lon_rad)
        y = -rho * np.cos(lon_rad)
        if self.south:
            x, y = -x, -y  # mirror back to the south aspect
        return x + self.false_easting, y + self.false_northing

    def inverse(
        self, x_m: np.ndarray, y_m: np.ndarray, max_iter: int = 12, tol: float = 1e-12
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inverse projection: (x, y) metres back to geodetic degrees."""
        x = np.asarray(x_m, dtype=float) - self.false_easting
        y = np.asarray(y_m, dtype=float) - self.false_northing
        sign = -1.0 if self.south else 1.0
        if self.south:
            x, y = -x, -y

        a = self.ellipsoid.a
        e = self.ellipsoid.e
        lat_ts = np.radians(sign * self.standard_parallel_deg)
        t_c = self._t(np.asarray(lat_ts))
        m_c = self._m(float(lat_ts))

        rho = np.hypot(x, y)
        t = rho * t_c / (a * m_c)

        # Iterate Snyder eq. 7-9 for the conformal latitude inversion.
        lat = np.pi / 2.0 - 2.0 * np.arctan(t)
        for _ in range(max_iter):
            sin_lat = np.sin(lat)
            new_lat = np.pi / 2.0 - 2.0 * np.arctan(
                t * ((1.0 - e * sin_lat) / (1.0 + e * sin_lat)) ** (e / 2.0)
            )
            if np.all(np.abs(new_lat - lat) < tol):
                lat = new_lat
                break
            lat = new_lat

        lon = np.arctan2(x, -y)
        # At the exact pole rho == 0 and the longitude is undefined; pick 0.
        lon = np.where(rho == 0.0, 0.0, lon)
        lat_deg = sign * np.degrees(lat)
        lon_deg = sign * np.degrees(lon) + self.central_meridian_deg
        lon_deg = (lon_deg + 180.0) % 360.0 - 180.0
        return lat_deg, lon_deg

    def scale_factor(self, lat_deg: np.ndarray) -> np.ndarray:
        """Point scale factor k at a given latitude (1 at the standard parallel)."""
        sign = -1.0 if self.south else 1.0
        lat_rad = np.radians(sign * np.asarray(lat_deg, dtype=float))
        lat_ts = np.radians(sign * self.standard_parallel_deg)
        t = self._t(lat_rad)
        t_c = self._t(np.asarray(lat_ts))
        m_c = self._m(float(lat_ts))
        m = np.cos(lat_rad) / np.sqrt(1.0 - self.ellipsoid.e2 * np.sin(lat_rad) ** 2)
        with np.errstate(divide="ignore", invalid="ignore"):
            k = np.where(m > 0, m_c * t / (t_c * m), m_c / t_c * 0.5 * 2.0)
        return k


def antarctic_polar_stereographic() -> PolarStereographic:
    """The EPSG:3976-equivalent projection used throughout the pipeline."""
    return PolarStereographic(
        ellipsoid=WGS84,
        standard_parallel_deg=-70.0,
        central_meridian_deg=0.0,
        false_easting=0.0,
        false_northing=0.0,
    )
