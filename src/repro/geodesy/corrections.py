"""Geophysical height corrections applied to ATL03 photon heights.

The ATL03 ATBD applies (among others) geoid undulation, ocean tide and
inverted-barometer corrections so that sea-surface heights are expressed
relative to the local mean sea surface, plus a first-photon (dead-time) bias
correction to the received photon heights.  The real corrections come from
global models; here each correction is a smooth, deterministic analytic field
parameterised the same way (position and/or time and surface pressure), which
is sufficient to exercise the correction pipeline and to make "corrected"
versus "uncorrected" heights measurably different in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_same_length


@dataclass(frozen=True)
class GeophysicalCorrections:
    """Per-photon correction terms, all in metres, positive upward."""

    geoid: np.ndarray
    ocean_tide: np.ndarray
    inverted_barometer: np.ndarray

    def total(self) -> np.ndarray:
        """Sum of all correction terms."""
        return self.geoid + self.ocean_tide + self.inverted_barometer


def geoid_undulation(lat_deg: np.ndarray, lon_deg: np.ndarray) -> np.ndarray:
    """Synthetic geoid undulation field over the Ross Sea, in metres.

    The true EGM2008 undulation over the Ross Sea is around -50 to -60 m and
    varies smoothly on ~100 km scales; the synthetic field reproduces that
    character with low-order harmonics of position.
    """
    lat = np.asarray(lat_deg, dtype=float)
    lon = np.asarray(lon_deg, dtype=float)
    return (
        -55.0
        + 2.5 * np.sin(np.radians(lon) * 3.0)
        + 1.5 * np.cos(np.radians(lat) * 7.0)
        + 0.5 * np.sin(np.radians(lon + lat) * 5.0)
    )


def ocean_tide_correction(time_s: np.ndarray, lat_deg: np.ndarray) -> np.ndarray:
    """Synthetic ocean tide height, in metres.

    Dominated by an M2-like semidiurnal component (period 12.42 h) with a
    small diurnal term; amplitude ~0.3 m, typical of the Ross Sea.
    """
    t = np.asarray(time_s, dtype=float)
    lat = np.asarray(lat_deg, dtype=float)
    m2 = 0.25 * np.sin(2.0 * np.pi * t / (12.42 * 3600.0) + np.radians(lat))
    k1 = 0.08 * np.sin(2.0 * np.pi * t / (23.93 * 3600.0))
    return m2 + k1


def inverted_barometer_correction(pressure_hpa: np.ndarray) -> np.ndarray:
    """Inverted-barometer sea-level response, in metres.

    The standard -9.948 mm/hPa response relative to a 1013.25 hPa reference.
    """
    p = np.asarray(pressure_hpa, dtype=float)
    return -0.009948 * (p - 1013.25)


def apply_geophysical_corrections(
    height_m: np.ndarray,
    lat_deg: np.ndarray,
    lon_deg: np.ndarray,
    time_s: np.ndarray,
    pressure_hpa: np.ndarray | float = 990.0,
) -> tuple[np.ndarray, GeophysicalCorrections]:
    """Apply geoid, tide and inverted-barometer corrections to photon heights.

    Returns the corrected heights (relative to the local mean sea surface)
    and the individual correction terms.
    """
    height = np.asarray(height_m, dtype=float)
    lat = np.asarray(lat_deg, dtype=float)
    lon = np.asarray(lon_deg, dtype=float)
    time = np.asarray(time_s, dtype=float)
    ensure_same_length(height, lat, lon, time, names=("height", "lat", "lon", "time"))
    pressure = np.broadcast_to(np.asarray(pressure_hpa, dtype=float), height.shape)

    corr = GeophysicalCorrections(
        geoid=geoid_undulation(lat, lon),
        ocean_tide=ocean_tide_correction(time, lat),
        inverted_barometer=inverted_barometer_correction(pressure),
    )
    return height - corr.total(), corr


def first_photon_bias_correction(
    height_m: np.ndarray,
    photon_rate_per_shot: np.ndarray | float,
    dead_time_ns: float = 3.2,
    pulse_width_ns: float = 1.5,
) -> np.ndarray:
    """First-photon (detector dead-time) bias correction.

    Strong returns bias the earliest detected photon toward the top of the
    return pulse, raising apparent surface heights.  The bias grows with the
    per-shot photon rate; the correction subtracts an estimate of that shift.
    The functional form follows the ATL03 ATBD's first-order model: the bias
    is proportional to the pulse width times the expected fraction of the
    pulse lost to dead time, saturating at high rates.

    Parameters
    ----------
    height_m:
        Photon heights in metres.
    photon_rate_per_shot:
        Expected signal photons per laser shot (scalar or per-photon array).
    dead_time_ns, pulse_width_ns:
        Detector dead time and transmitted pulse width (1 ns ≈ 0.15 m of
        one-way range).
    """
    height = np.asarray(height_m, dtype=float)
    rate = np.broadcast_to(np.asarray(photon_rate_per_shot, dtype=float), height.shape)
    if np.any(rate < 0):
        raise ValueError("photon_rate_per_shot must be non-negative")
    metres_per_ns = 0.15  # one-way light travel distance per nanosecond
    saturation = 1.0 - np.exp(-rate * dead_time_ns / max(pulse_width_ns, 1e-9) * 0.1)
    bias = 0.5 * pulse_width_ns * metres_per_ns * saturation
    return height - bias
