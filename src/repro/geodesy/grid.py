"""Regular metre grids on the polar stereographic plane.

A :class:`GridDefinition` is the one description of a regular, axis-aligned
grid of square cells in projected (EPSG:3976-style) metre coordinates that
every raster-like consumer shares: the simulated Sentinel-2 images, the
labeling overlay's nearest-pixel lookup, and the Level-3 gridded products
(:mod:`repro.l3`).  Keeping the point -> cell arithmetic in one place means
"which cell does this projected point fall in" has exactly one answer
across the codebase.

Conventions (matching the existing S2 georeferencing):

* ``(x_min_m, y_min_m)`` is the **lower-left corner** of the grid;
* cell ``(row, col)`` covers ``[x_min + col*s, x_min + (col+1)*s)`` by
  ``[y_min + row*s, y_min + (row+1)*s)`` — half-open, so a point exactly on
  the upper/right boundary belongs to the next cell (and is outside the
  grid when there is no next cell);
* rows increase with y (northward in grid coordinates), columns with x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.geodesy.ellipsoid import Ellipsoid
from repro.geodesy.projection import PolarStereographic, antarctic_polar_stereographic


@dataclass(frozen=True)
class GridDefinition:
    """A regular grid of square cells in projected metre coordinates.

    Parameters
    ----------
    x_min_m, y_min_m:
        Lower-left corner of the grid, in projected metres.
    cell_size_m:
        Side length of the square cells.
    nx, ny:
        Number of columns / rows.
    projection:
        The projection whose plane the grid lives in; used only by the
        geodetic cell-centre lookup (:meth:`cell_center_latlon`).
    """

    x_min_m: float
    y_min_m: float
    cell_size_m: float
    nx: int
    ny: int
    projection: PolarStereographic = field(default_factory=antarctic_polar_stereographic)

    def __post_init__(self) -> None:
        for name in ("x_min_m", "y_min_m", "cell_size_m"):
            if not math.isfinite(float(getattr(self, name))):
                raise ValueError(
                    f"degenerate grid: {name} must be finite, got {getattr(self, name)!r}"
                )
        if not self.cell_size_m > 0:
            raise ValueError(
                f"degenerate grid: cell_size_m must be positive, got {self.cell_size_m!r}"
            )
        if self.nx < 1 or self.ny < 1:
            raise ValueError(
                f"degenerate grid: need at least one column and one row, got "
                f"nx={self.nx}, ny={self.ny} (zero/negative extent, or a cell "
                "size larger than the requested extent rounded down to 0 cells?)"
            )

    # -- extent ------------------------------------------------------------

    @property
    def x_max_m(self) -> float:
        return self.x_min_m + self.nx * self.cell_size_m

    @property
    def y_max_m(self) -> float:
        return self.y_min_m + self.ny * self.cell_size_m

    @property
    def shape(self) -> tuple[int, int]:
        """(ny, nx) — numpy array shape of one grid variable."""
        return self.ny, self.nx

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    @classmethod
    def from_extent(
        cls,
        x_min_m: float,
        x_max_m: float,
        y_min_m: float,
        y_max_m: float,
        cell_size_m: float,
        projection: PolarStereographic | None = None,
    ) -> "GridDefinition":
        """Grid covering ``[x_min, x_max) x [y_min, y_max)``.

        The cell count is rounded up, so the grid always covers the full
        requested extent (the last row/column may extend past it).
        """
        for name, value in (
            ("x_min_m", x_min_m),
            ("x_max_m", x_max_m),
            ("y_min_m", y_min_m),
            ("y_max_m", y_max_m),
            ("cell_size_m", cell_size_m),
        ):
            if not math.isfinite(float(value)):
                raise ValueError(
                    f"degenerate grid extent: {name} must be finite, got {value!r}"
                )
        if not cell_size_m > 0:
            raise ValueError(
                f"degenerate grid: cell_size_m must be positive, got {cell_size_m!r}"
            )
        if x_max_m <= x_min_m or y_max_m <= y_min_m:
            raise ValueError(
                "degenerate grid extent: width and height must be positive, got "
                f"width={x_max_m - x_min_m!r}, height={y_max_m - y_min_m!r}"
            )
        nx = int(math.ceil((x_max_m - x_min_m) / cell_size_m))
        ny = int(math.ceil((y_max_m - y_min_m) / cell_size_m))
        kwargs: dict[str, Any] = {}
        if projection is not None:
            kwargs["projection"] = projection
        return cls(
            x_min_m=float(x_min_m),
            y_min_m=float(y_min_m),
            cell_size_m=float(cell_size_m),
            nx=nx,
            ny=ny,
            **kwargs,
        )

    # -- point -> cell -----------------------------------------------------

    def contains(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the grid footprint (NaN is outside)."""
        x = np.asarray(x_m, dtype=float)
        y = np.asarray(y_m, dtype=float)
        return (
            (x >= self.x_min_m)
            & (x < self.x_max_m)
            & (y >= self.y_min_m)
            & (y < self.y_max_m)
        )

    def cell_index(
        self, x_m: np.ndarray, y_m: np.ndarray, clip: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """(row, col) indices of projected points.

        With ``clip=True`` out-of-grid points snap to the nearest edge cell
        (the historical nearest-pixel behaviour of the S2 overlay).  With
        ``clip=False`` callers must mask with :meth:`contains` first —
        out-of-grid or non-finite points yield out-of-range indices.
        """
        col = np.floor((np.asarray(x_m, dtype=float) - self.x_min_m) / self.cell_size_m)
        row = np.floor((np.asarray(y_m, dtype=float) - self.y_min_m) / self.cell_size_m)
        if clip:
            row = np.clip(row, 0, self.ny - 1)
            col = np.clip(col, 0, self.nx - 1)
        return row.astype(np.intp), col.astype(np.intp)

    def flat_index(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """Flat cell index ``row * nx + col`` per point; -1 outside the grid.

        This is the composite-key form the Level-3 binning kernels consume.
        """
        x = np.asarray(x_m, dtype=float)
        y = np.asarray(y_m, dtype=float)
        inside = self.contains(x, y)
        flat = np.full(x.shape, -1, dtype=np.int64)
        if inside.any():
            row, col = self.cell_index(x[inside], y[inside])
            flat[inside] = row.astype(np.int64) * self.nx + col.astype(np.int64)
        return flat

    # -- cell -> coordinates -----------------------------------------------

    def cell_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """(x_edges, y_edges) of shapes (nx+1,), (ny+1,)."""
        x_edges = self.x_min_m + np.arange(self.nx + 1) * self.cell_size_m
        y_edges = self.y_min_m + np.arange(self.ny + 1) * self.cell_size_m
        return x_edges, y_edges

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) cell-centre coordinate arrays, each of shape (ny, nx)."""
        x = self.x_min_m + (np.arange(self.nx) + 0.5) * self.cell_size_m
        y = self.y_min_m + (np.arange(self.ny) + 0.5) * self.cell_size_m
        return np.broadcast_to(x, (self.ny, self.nx)).copy(), np.broadcast_to(
            y[:, None], (self.ny, self.nx)
        ).copy()

    def cell_center_latlon(self) -> tuple[np.ndarray, np.ndarray]:
        """Geodetic (lat, lon) of every cell centre, each of shape (ny, nx)."""
        x, y = self.cell_centers()
        return self.projection.inverse(x, y)

    # -- serialisation (the self-describing product writer) -----------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable description, inverse of :meth:`from_dict`."""
        proj = self.projection
        return {
            "x_min_m": self.x_min_m,
            "y_min_m": self.y_min_m,
            "cell_size_m": self.cell_size_m,
            "nx": self.nx,
            "ny": self.ny,
            "projection": {
                "standard_parallel_deg": proj.standard_parallel_deg,
                "central_meridian_deg": proj.central_meridian_deg,
                "false_easting": proj.false_easting,
                "false_northing": proj.false_northing,
                "ellipsoid": {
                    "a": proj.ellipsoid.a,
                    "f": proj.ellipsoid.f,
                    "name": proj.ellipsoid.name,
                },
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GridDefinition":
        proj_payload = payload["projection"]
        ell = proj_payload["ellipsoid"]
        projection = PolarStereographic(
            ellipsoid=Ellipsoid(a=ell["a"], f=ell["f"], name=ell.get("name", "custom")),
            standard_parallel_deg=proj_payload["standard_parallel_deg"],
            central_meridian_deg=proj_payload["central_meridian_deg"],
            false_easting=proj_payload["false_easting"],
            false_northing=proj_payload["false_northing"],
        )
        return cls(
            x_min_m=float(payload["x_min_m"]),
            y_min_m=float(payload["y_min_m"]),
            cell_size_m=float(payload["cell_size_m"]),
            nx=int(payload["nx"]),
            ny=int(payload["ny"]),
            projection=projection,
        )
