"""Reference ellipsoid model (WGS84) and basic geodesic helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Ellipsoid:
    """An oblate reference ellipsoid.

    Attributes
    ----------
    a:
        Semi-major axis in metres.
    f:
        Flattening.
    """

    a: float
    f: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError("semi-major axis must be positive")
        if not 0 <= self.f < 1:
            raise ValueError("flattening must be in [0, 1)")

    @property
    def b(self) -> float:
        """Semi-minor axis in metres."""
        return self.a * (1.0 - self.f)

    @property
    def e2(self) -> float:
        """First eccentricity squared."""
        return self.f * (2.0 - self.f)

    @property
    def e(self) -> float:
        """First eccentricity."""
        return float(np.sqrt(self.e2))

    def prime_vertical_radius(self, lat_rad: np.ndarray) -> np.ndarray:
        """Radius of curvature in the prime vertical, N(lat)."""
        sin_lat = np.sin(lat_rad)
        return self.a / np.sqrt(1.0 - self.e2 * sin_lat**2)

    def meridional_radius(self, lat_rad: np.ndarray) -> np.ndarray:
        """Radius of curvature in the meridian, M(lat)."""
        sin_lat = np.sin(lat_rad)
        return self.a * (1.0 - self.e2) / (1.0 - self.e2 * sin_lat**2) ** 1.5

    def geodetic_to_ecef(
        self, lat_deg: np.ndarray, lon_deg: np.ndarray, height_m: np.ndarray | float = 0.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Convert geodetic coordinates to Earth-centred Earth-fixed XYZ."""
        lat = np.radians(np.asarray(lat_deg, dtype=float))
        lon = np.radians(np.asarray(lon_deg, dtype=float))
        h = np.asarray(height_m, dtype=float)
        n = self.prime_vertical_radius(lat)
        cos_lat = np.cos(lat)
        x = (n + h) * cos_lat * np.cos(lon)
        y = (n + h) * cos_lat * np.sin(lon)
        z = (n * (1.0 - self.e2) + h) * np.sin(lat)
        return x, y, z

    def surface_distance(
        self,
        lat1_deg: np.ndarray,
        lon1_deg: np.ndarray,
        lat2_deg: np.ndarray,
        lon2_deg: np.ndarray,
    ) -> np.ndarray:
        """Great-circle distance (spherical approximation with mean radius).

        Accurate to a fraction of a percent over the short along-track
        distances used by the pipeline (kilometres), which is sufficient for
        windowing; the precise along-track distance used for resampling is
        carried in projected coordinates instead.
        """
        lat1 = np.radians(np.asarray(lat1_deg, dtype=float))
        lon1 = np.radians(np.asarray(lon1_deg, dtype=float))
        lat2 = np.radians(np.asarray(lat2_deg, dtype=float))
        lon2 = np.radians(np.asarray(lon2_deg, dtype=float))
        mean_radius = (2.0 * self.a + self.b) / 3.0
        d_lat = lat2 - lat1
        d_lon = lon2 - lon1
        h = np.sin(d_lat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(d_lon / 2.0) ** 2
        return 2.0 * mean_radius * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


#: The WGS84 ellipsoid used by the ICESat-2 products (ITRF2014 realisation).
WGS84 = Ellipsoid(a=6_378_137.0, f=1.0 / 298.257223563, name="WGS84")
