"""Dataset utilities: one-hot encoding, splitting, batching and sharding.

The paper uses an 80/20 train/test split and a batch size of 32; the
distributed trainer additionally shards the training set across simulated
GPUs the way Horovod's data-parallel training does (disjoint, equally sized
shards per rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.utils.random import default_rng, stratified_indices


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels into an ``(n, n_classes)`` float array."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError(f"labels must be in [0, {n_classes - 1}]")
    out = np.zeros((labels.shape[0], n_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    stratify: bool = True,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split features and labels into train and test sets.

    With ``stratify=True`` (the default) per-class proportions are preserved,
    which matters for the rare open-water class.
    Returns ``(X_train, y_train, X_test, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y must have the same number of samples")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = default_rng(rng)
    if stratify:
        train_idx, test_idx = stratified_indices(rng, y, test_fraction)
    else:
        perm = rng.permutation(X.shape[0])
        n_test = int(round(X.shape[0] * test_fraction))
        test_idx = np.sort(perm[:n_test])
        train_idx = np.sort(perm[n_test:])
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]


@dataclass
class Dataset:
    """A features/labels pair with batching and sharding helpers."""

    X: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y)
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("X and y must have the same number of samples")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[-1])

    def class_counts(self, n_classes: int) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.y.astype(int), minlength=n_classes)

    def shuffled(self, rng: np.random.Generator | int | None = None) -> "Dataset":
        """Return a shuffled copy (used once per epoch)."""
        rng = default_rng(rng)
        perm = rng.permutation(len(self))
        return Dataset(self.X[perm], self.y[perm])

    def batches(self, batch_size: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate over consecutive mini-batches (last one may be smaller)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for start in range(0, len(self), batch_size):
            stop = start + batch_size
            yield self.X[start:stop], self.y[start:stop]

    def shard(self, rank: int, world_size: int) -> "Dataset":
        """Disjoint shard for data-parallel rank ``rank`` of ``world_size``.

        Samples are strided (``rank::world_size``) so every shard sees a
        representative class mix; shard sizes differ by at most one sample.
        """
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if not 0 <= rank < world_size:
            raise ValueError("rank must satisfy 0 <= rank < world_size")
        return Dataset(self.X[rank::world_size], self.y[rank::world_size])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Arbitrary indexed subset."""
        indices = np.asarray(indices)
        return Dataset(self.X[indices], self.y[indices])
