"""Loss functions: categorical cross-entropy and focal loss.

The paper trains both models with the *focal loss* (Lin et al. 2017) because
thick ice dominates the Ross Sea training data; the focal term down-weights
well-classified majority-class samples.  Both losses here expect softmax
probabilities and one-hot targets, and their ``gradient`` returns the
derivative with respect to the *pre-softmax logits* (the fused
softmax-plus-loss formulation), which is both faster and numerically stabler
than chaining through the softmax Jacobian.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-9


def _validate(probs: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    probs = np.asarray(probs, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if probs.shape != targets.shape:
        raise ValueError(f"probs shape {probs.shape} != targets shape {targets.shape}")
    if probs.ndim != 2:
        raise ValueError("probs and targets must be 2-D (batch, n_classes)")
    return probs, targets


class CategoricalCrossEntropy:
    """Standard multi-class cross-entropy over softmax probabilities."""

    def __init__(self, class_weights: np.ndarray | None = None) -> None:
        self.class_weights = None if class_weights is None else np.asarray(class_weights, dtype=float)

    def _weights(self, targets: np.ndarray) -> np.ndarray:
        if self.class_weights is None:
            return np.ones(targets.shape[0])
        if self.class_weights.shape[0] != targets.shape[1]:
            raise ValueError("class_weights must have one entry per class")
        return targets @ self.class_weights

    def __call__(self, probs: np.ndarray, targets: np.ndarray) -> float:
        probs, targets = _validate(probs, targets)
        w = self._weights(targets)
        per_sample = -np.sum(targets * np.log(probs + _EPS), axis=1)
        return float(np.mean(w * per_sample))

    def gradient(self, probs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient with respect to the pre-softmax logits, averaged over the batch."""
        probs, targets = _validate(probs, targets)
        w = self._weights(targets)[:, None]
        return w * (probs - targets) / probs.shape[0]


class FocalLoss:
    """Multi-class focal loss: ``-(1 - p_t)^gamma * log(p_t)``.

    Parameters
    ----------
    gamma:
        Focusing parameter; ``gamma = 0`` reduces to cross-entropy.
    alpha:
        Optional per-class weights (length ``n_classes``), applied to the
        target class of each sample.
    """

    def __init__(self, gamma: float = 2.0, alpha: np.ndarray | None = None) -> None:
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma
        self.alpha = None if alpha is None else np.asarray(alpha, dtype=float)

    def _alpha_t(self, targets: np.ndarray) -> np.ndarray:
        if self.alpha is None:
            return np.ones(targets.shape[0])
        if self.alpha.shape[0] != targets.shape[1]:
            raise ValueError("alpha must have one entry per class")
        return targets @ self.alpha

    def __call__(self, probs: np.ndarray, targets: np.ndarray) -> float:
        probs, targets = _validate(probs, targets)
        p_t = np.sum(probs * targets, axis=1)
        alpha_t = self._alpha_t(targets)
        loss = -alpha_t * (1.0 - p_t) ** self.gamma * np.log(p_t + _EPS)
        return float(np.mean(loss))

    def gradient(self, probs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient with respect to the pre-softmax logits, averaged over the batch.

        Derivation: with :math:`p_t = \\sum_k y_k p_k` and the focal loss
        :math:`L = -\\alpha_t (1-p_t)^\\gamma \\log p_t`,

        .. math::
            \\frac{\\partial L}{\\partial p_t} =
            \\alpha_t \\Big( \\gamma (1-p_t)^{\\gamma-1} \\log p_t
                            - \\frac{(1-p_t)^\\gamma}{p_t} \\Big)

        and :math:`\\partial p_t / \\partial z_j = p_t (y_j - p_j)` through
        the softmax, giving the expression below.
        """
        probs, targets = _validate(probs, targets)
        n = probs.shape[0]
        p_t = np.sum(probs * targets, axis=1, keepdims=True)
        alpha_t = self._alpha_t(targets)[:, None]
        one_minus = np.clip(1.0 - p_t, _EPS, 1.0)
        dL_dpt = alpha_t * (
            self.gamma * one_minus ** (self.gamma - 1.0) * np.log(p_t + _EPS)
            - one_minus**self.gamma / (p_t + _EPS)
        )
        dpt_dz = p_t * (targets - probs)
        return dL_dpt * dpt_dz / n


def class_balanced_alpha(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Inverse-frequency per-class weights normalised to mean 1.

    Convenience used when constructing the focal loss for the heavily
    imbalanced thick-ice / thin-ice / open-water data.
    """
    labels = np.asarray(labels)
    counts = np.bincount(labels[labels >= 0], minlength=n_classes).astype(float)
    counts = np.where(counts > 0, counts, 1.0)
    weights = counts.sum() / (n_classes * counts)
    return weights / weights.mean()
