"""A Keras-like ``Sequential`` model with training, evaluation and inference.

The model chains layers from :mod:`repro.ml.layers` /
:mod:`repro.ml.lstm`, computes the loss from :mod:`repro.ml.losses`, and
updates parameters with an optimizer from :mod:`repro.ml.optimizers`.  It
also exposes exactly the hooks the distributed trainer needs:

* :meth:`Sequential.compute_gradients` — forward + backward over a batch
  without applying the update (so gradients can be all-reduced first);
* :meth:`Sequential.apply_gradients` — optimizer step on externally supplied
  (e.g. averaged) gradients;
* :meth:`Sequential.get_weights` / :meth:`Sequential.set_weights` — broadcast
  of the initial state from rank 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.layers import Layer
from repro.ml.losses import CategoricalCrossEntropy, FocalLoss
from repro.ml.optimizers import Adam, Optimizer
from repro.ml.dataset import Dataset, one_hot
from repro.ml.metrics import accuracy_score
from repro.utils.random import default_rng


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by :meth:`Sequential.fit`."""

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.loss)


class Sequential:
    """A linear stack of layers."""

    def __init__(self, layers: list[Layer], n_classes: int) -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.layers = list(layers)
        self.n_classes = n_classes
        self.loss: FocalLoss | CategoricalCrossEntropy | None = None
        self.optimizer: Optimizer | None = None

    # -- construction ---------------------------------------------------------

    def compile(
        self,
        optimizer: Optimizer | None = None,
        loss: FocalLoss | CategoricalCrossEntropy | None = None,
    ) -> "Sequential":
        """Attach an optimizer and loss (defaults: Adam lr=0.003, focal loss)."""
        self.optimizer = optimizer if optimizer is not None else Adam(learning_rate=0.003)
        self.loss = loss if loss is not None else FocalLoss(gamma=2.0)
        return self

    # -- parameter access -------------------------------------------------------

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.params))

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.params]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        params = self.params
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} weight arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            w = np.asarray(w, dtype=float)
            if p.shape != w.shape:
                raise ValueError(f"weight shape mismatch: expected {p.shape}, got {w.shape}")
            p[...] = w

    # -- forward / backward ------------------------------------------------------

    def forward(self, X: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(X, dtype=float)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # -- gradients / updates ------------------------------------------------------

    def compute_gradients(
        self, X: np.ndarray, y: np.ndarray, training: bool = True
    ) -> tuple[float, list[np.ndarray]]:
        """Forward + backward over one batch; returns (loss, gradient copies).

        The returned gradients are copies so callers (the distributed
        trainer) can aggregate them without aliasing the layer buffers.
        """
        if self.loss is None:
            raise RuntimeError("model must be compiled before training")
        targets = one_hot(np.asarray(y), self.n_classes)
        probs = self.forward(X, training=training)
        loss_value = self.loss(probs, targets)
        grad = self.loss.gradient(probs, targets)
        self.backward(grad)
        return float(loss_value), [g.copy() for g in self.grads]

    def apply_gradients(self, gradients: list[np.ndarray]) -> None:
        """Apply externally supplied gradients with the compiled optimizer."""
        if self.optimizer is None:
            raise RuntimeError("model must be compiled before applying gradients")
        params = self.params
        if len(gradients) != len(params):
            raise ValueError("gradient list length does not match parameter count")
        self.optimizer.step(params, gradients)

    def train_batch(self, X: np.ndarray, y: np.ndarray) -> float:
        """One optimization step on a mini-batch; returns the batch loss."""
        loss_value, grads = self.compute_gradients(X, y, training=True)
        self.apply_gradients(grads)
        return loss_value

    # -- high level API -------------------------------------------------------------

    def fit(
        self,
        train: Dataset,
        epochs: int = 20,
        batch_size: int = 32,
        validation: Dataset | None = None,
        shuffle: bool = True,
        rng: np.random.Generator | int | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``train``.

        Returns a :class:`TrainingHistory` with loss/accuracy per epoch (and
        validation metrics when a validation set is supplied).
        """
        import time

        if epochs <= 0:
            raise ValueError("epochs must be positive")
        rng = default_rng(rng)
        history = TrainingHistory()
        for epoch in range(epochs):
            start = time.perf_counter()
            data = train.shuffled(rng) if shuffle else train
            losses = []
            for X_batch, y_batch in data.batches(batch_size):
                losses.append(self.train_batch(X_batch, y_batch))
            history.loss.append(float(np.mean(losses)) if losses else 0.0)
            history.accuracy.append(self.evaluate(train)[1])
            if validation is not None:
                val_loss, val_acc = self.evaluate(validation)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
            history.epoch_seconds.append(time.perf_counter() - start)
            if verbose:  # pragma: no cover - logging only
                msg = f"epoch {epoch + 1}/{epochs} loss={history.loss[-1]:.4f} acc={history.accuracy[-1]:.4f}"
                if validation is not None:
                    msg += f" val_acc={history.val_accuracy[-1]:.4f}"
                print(msg)
        return history

    def predict_proba(self, X: np.ndarray, batch_size: int = 1024) -> np.ndarray:
        """Class probabilities, evaluated in inference mode (dropout off)."""
        X = np.asarray(X, dtype=float)
        outputs = []
        for start in range(0, X.shape[0], batch_size):
            outputs.append(self.forward(X[start:start + batch_size], training=False))
        return np.concatenate(outputs, axis=0) if outputs else np.empty((0, self.n_classes))

    def predict(self, X: np.ndarray, batch_size: int = 1024) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.predict_proba(X, batch_size=batch_size), axis=1)

    def predict_batched(
        self, arrays: "list[np.ndarray]", batch_size: int = 1024
    ) -> list[np.ndarray]:
        """Class probabilities for several input arrays in one pooled pass.

        The arrays (e.g. one feature tensor per beam or per granule) are
        concatenated along the batch axis, pushed through the network
        together — so the LSTM runs one matmul per timestep over *all*
        sequences instead of one small forward pass per array — and the
        probabilities are split back to match the inputs.

        Returns one ``(n_i, n_classes)`` probability array per input array,
        in order.  Empty inputs yield empty outputs.
        """
        arrays = [np.asarray(a, dtype=float) for a in arrays]
        if not arrays:
            return []
        sizes = [a.shape[0] for a in arrays]
        nonempty = [a for a in arrays if a.shape[0] > 0]
        if not nonempty:
            return [np.empty((0, self.n_classes)) for _ in arrays]
        probs = self.predict_proba(np.concatenate(nonempty, axis=0), batch_size=batch_size)
        out: list[np.ndarray] = []
        offset = 0
        for size in sizes:
            out.append(probs[offset:offset + size])
            offset += size
        return out

    def evaluate(self, data: Dataset, batch_size: int = 1024) -> tuple[float, float]:
        """Return (loss, accuracy) over a dataset in inference mode."""
        if self.loss is None:
            raise RuntimeError("model must be compiled before evaluation")
        probs = self.predict_proba(data.X, batch_size=batch_size)
        targets = one_hot(data.y.astype(int), self.n_classes)
        loss_value = self.loss(probs, targets)
        acc = accuracy_score(data.y.astype(int), np.argmax(probs, axis=1))
        return float(loss_value), float(acc)

    def summary(self) -> str:
        """Human-readable layer/parameter summary."""
        lines = [f"Sequential model: {len(self.layers)} layers, {self.n_parameters} parameters"]
        for i, layer in enumerate(self.layers):
            lines.append(f"  [{i}] {type(layer).__name__}: {layer.n_parameters} params")
        return "\n".join(lines)
