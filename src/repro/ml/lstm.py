"""LSTM layer with full backpropagation through time.

The forward pass follows the standard Hochreiter & Schmidhuber formulation
with forget, input and output gates and a tanh cell candidate:

.. math::

    f_t &= \\sigma(x_t W_f + h_{t-1} U_f + b_f) \\\\
    i_t &= \\sigma(x_t W_i + h_{t-1} U_i + b_i) \\\\
    g_t &= \\tanh(x_t W_g + h_{t-1} U_g + b_g) \\\\
    o_t &= \\sigma(x_t W_o + h_{t-1} U_o + b_o) \\\\
    c_t &= f_t \\odot c_{t-1} + i_t \\odot g_t \\\\
    h_t &= o_t \\odot \\phi(c_t)

where :math:`\\phi` is the output activation — the paper configures the LSTM
with an ELU activation, so :math:`\\phi` defaults to ELU here (tanh is also
supported).  The layer returns the final hidden state
(``return_sequences=False``), which is what feeds the dense head in the
paper's architecture.

The weights are stored fused across gates (one ``(n_in, 4*n_units)`` input
kernel and one ``(n_units, 4*n_units)`` recurrent kernel, gate order
f, i, g, o) so the heavy matrix products are single GEMMs per time step.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import lstm as _kernels
from repro.ml.layers import Layer
from repro.utils.random import default_rng


class LSTM(Layer):
    """Single LSTM layer over inputs of shape ``(batch, time, features)``."""

    def __init__(
        self,
        n_inputs: int,
        n_units: int,
        activation: str = "elu",
        return_sequences: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if n_inputs <= 0 or n_units <= 0:
            raise ValueError("n_inputs and n_units must be positive")
        if activation not in ("elu", "tanh"):
            raise ValueError("activation must be 'elu' or 'tanh'")
        self.n_inputs = n_inputs
        self.n_units = n_units
        self.activation = activation
        self.return_sequences = return_sequences

        rng = default_rng(rng)
        limit_in = np.sqrt(6.0 / (n_inputs + 4 * n_units))
        limit_rec = np.sqrt(6.0 / (n_units + 4 * n_units))
        self.W = rng.uniform(-limit_in, limit_in, size=(n_inputs, 4 * n_units))
        self.U = rng.uniform(-limit_rec, limit_rec, size=(n_units, 4 * n_units))
        self.b = np.zeros(4 * n_units)
        # Forget-gate bias initialised to 1 (standard practice; helps gradient flow).
        self.b[:n_units] = 1.0

        self.params = [self.W, self.U, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.U), np.zeros_like(self.b)]
        self._cache: dict[str, np.ndarray] | None = None

    # -- forward / backward ----------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[2] != self.n_inputs:
            raise ValueError(
                f"LSTM expected input of shape (batch, time, {self.n_inputs}), got {x.shape}"
            )
        # The time recurrence runs in the kernel layer: the vectorized
        # backend batches the input projection (and, in backward, the weight
        # gradients) into whole-sequence GEMMs; the reference backend is the
        # original per-step loop (see repro.kernels.lstm).
        hs, cs, gates = _kernels.lstm_forward(x, self.W, self.U, self.b, self.activation)

        self._cache = {"x": x, "hs": hs, "cs": cs, "gates": gates}
        if self.return_sequences:
            return hs[:, 1:, :]
        return hs[:, -1, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        hs = self._cache["hs"]
        cs = self._cache["cs"]
        gates = self._cache["gates"]
        batch, T, _ = x.shape
        H = self.n_units

        grad_output = np.asarray(grad_output, dtype=float)
        if self.return_sequences:
            if grad_output.shape != (batch, T, H):
                raise ValueError("gradient shape mismatch for return_sequences=True")
            dh_seq = grad_output
        else:
            if grad_output.shape != (batch, H):
                raise ValueError("gradient shape mismatch")
            dh_seq = np.zeros((batch, T, H))
            dh_seq[:, -1, :] = grad_output

        dx, dW, dU, db = _kernels.lstm_backward(
            dh_seq, x, hs, cs, gates, self.W, self.U, self.activation
        )

        self.grads[0][...] = dW
        self.grads[1][...] = dU
        self.grads[2][...] = db
        return dx
