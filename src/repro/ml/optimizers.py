"""Gradient-descent optimizers: SGD (with momentum) and Adam.

The paper uses Adam with a learning rate of 0.003 for both classifiers.  The
optimizers operate in place on the model's parameter arrays so that the
distributed trainer can all-reduce gradients *before* the update without any
extra copies.
"""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer interface."""

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any accumulated state (momentum, moment estimates)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have the same length")
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.learning_rate * g
            return
        if self._velocity is None or len(self._velocity) != len(params):
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.003,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must have the same length")
        if self._m is None or len(self._m) != len(params):
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
            self._t = 0
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0
