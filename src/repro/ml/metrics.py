"""Classification metrics: accuracy, precision, recall, F1 and confusion matrix.

The paper evaluates its classifiers with overall accuracy plus macro-averaged
precision/recall/F1 (Table III) and a row-normalised confusion matrix giving
per-class accuracy (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_NAMES


def _validate_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    if y_true.size == 0:
        raise ValueError("labels must not be empty")
    return y_true, y_pred


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None) -> np.ndarray:
    """Confusion matrix with true classes on rows, predictions on columns."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    if np.any(y_true < 0) or np.any(y_pred < 0):
        raise ValueError("labels must be non-negative for a confusion matrix")
    idx = y_true.astype(np.int64) * n_classes + y_pred.astype(np.int64)
    counts = np.bincount(idx, minlength=n_classes * n_classes)
    return counts.reshape(n_classes, n_classes)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""
    y_true, y_pred = _validate_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def _per_class_prf(cm: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    tp = np.diag(cm).astype(float)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    precision = np.divide(tp, tp + fp, out=np.zeros_like(tp), where=(tp + fp) > 0)
    recall = np.divide(tp, tp + fn, out=np.zeros_like(tp), where=(tp + fn) > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0)
    return precision, recall, f1


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Precision, macro- or micro-averaged, or weighted by class support."""
    cm = confusion_matrix(y_true, y_pred)
    precision, _, _ = _per_class_prf(cm)
    return _average(precision, cm, average)


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """Recall, macro- or micro-averaged, or weighted by class support."""
    cm = confusion_matrix(y_true, y_pred)
    _, recall, _ = _per_class_prf(cm)
    return _average(recall, cm, average)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro") -> float:
    """F1 score, macro- or micro-averaged, or weighted by class support."""
    cm = confusion_matrix(y_true, y_pred)
    _, _, f1 = _per_class_prf(cm)
    return _average(f1, cm, average)


def _average(values: np.ndarray, cm: np.ndarray, average: str) -> float:
    support = cm.sum(axis=1).astype(float)
    if average == "macro":
        present = support > 0
        return float(values[present].mean()) if present.any() else 0.0
    if average == "weighted":
        total = support.sum()
        return float(np.sum(values * support) / total) if total > 0 else 0.0
    if average == "micro":
        tp = np.diag(cm).sum()
        total = cm.sum()
        return float(tp / total) if total > 0 else 0.0
    raise ValueError(f"unknown average {average!r}")


@dataclass(frozen=True)
class ClassificationReport:
    """Aggregate evaluation of a classifier, formatted like the paper's Table III."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    confusion: np.ndarray
    per_class_accuracy: tuple[float, ...]
    class_names: tuple[str, ...] = CLASS_NAMES

    def as_row(self, model_name: str) -> dict[str, float | str]:
        """One printable row of Table III (values in percent)."""
        return {
            "Model": model_name,
            "Accuracy": round(100.0 * self.accuracy, 2),
            "Precision": round(100.0 * self.precision, 2),
            "Recall": round(100.0 * self.recall, 2),
            "F1 score": round(100.0 * self.f1, 2),
        }

    def normalized_confusion(self) -> np.ndarray:
        """Row-normalised confusion matrix (per-class accuracy on the diagonal)."""
        cm = self.confusion.astype(float)
        row_sums = cm.sum(axis=1, keepdims=True)
        return np.divide(cm, row_sums, out=np.zeros_like(cm), where=row_sums > 0)


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None, average: str = "weighted"
) -> ClassificationReport:
    """Compute the full evaluation bundle used by the benchmarks."""
    cm = confusion_matrix(y_true, y_pred, n_classes=n_classes)
    precision, recall, f1 = _per_class_prf(cm)
    support = cm.sum(axis=1).astype(float)
    row_acc = np.divide(np.diag(cm), support, out=np.zeros(cm.shape[0]), where=support > 0)
    return ClassificationReport(
        accuracy=accuracy_score(y_true, y_pred),
        precision=_average(precision, cm, average),
        recall=_average(recall, cm, average),
        f1=_average(f1, cm, average),
        confusion=cm,
        per_class_accuracy=tuple(float(v) for v in row_acc),
    )
