"""Neural-network stack implemented from scratch on NumPy.

The paper trains its classifiers with TensorFlow/Keras; offline that is
replaced by this self-contained stack with the same building blocks:

* :mod:`repro.ml.layers` — Dense, Dropout, activation layers (ELU, ReLU,
  softmax) with forward and backward passes;
* :mod:`repro.ml.lstm` — an LSTM layer with full backpropagation through
  time;
* :mod:`repro.ml.losses` — categorical cross-entropy and the focal loss used
  by the paper for class imbalance;
* :mod:`repro.ml.optimizers` — SGD and Adam;
* :mod:`repro.ml.model` — a Keras-like ``Sequential`` container with
  ``fit`` / ``predict`` / ``evaluate``;
* :mod:`repro.ml.metrics` — accuracy, precision, recall, F1 and the
  confusion matrix;
* :mod:`repro.ml.dataset` — splitting, batching and sequence construction;
* :mod:`repro.ml.models` — the exact LSTM and MLP architectures of the
  paper.

Gradient correctness of every layer is verified against numerical
differentiation in the test suite, and the distributed trainer in
:mod:`repro.distributed.ddp` reuses these models unchanged.
"""

from repro.ml.layers import Dense, Dropout, ELU, Flatten, ReLU, Softmax
from repro.ml.lstm import LSTM
from repro.ml.losses import CategoricalCrossEntropy, FocalLoss
from repro.ml.optimizers import SGD, Adam
from repro.ml.model import Sequential
from repro.ml.metrics import (
    ClassificationReport,
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.dataset import Dataset, one_hot, train_test_split
from repro.ml.models import build_lstm_classifier, build_mlp_classifier

__all__ = [
    "Dense",
    "Dropout",
    "ELU",
    "ReLU",
    "Softmax",
    "Flatten",
    "LSTM",
    "CategoricalCrossEntropy",
    "FocalLoss",
    "SGD",
    "Adam",
    "Sequential",
    "ClassificationReport",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision_score",
    "recall_score",
    "Dataset",
    "one_hot",
    "train_test_split",
    "build_lstm_classifier",
    "build_mlp_classifier",
]
