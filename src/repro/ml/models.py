"""The paper's classifier architectures.

* :func:`build_lstm_classifier` — an LSTM layer with 16 units and ELU
  activation over sequences of five 2 m segments with six features each,
  dropout 0.2, followed by seven dense layers of 32, 96, 32, 16, 112, 48 and
  64 units (ELU) and a three-way softmax head (paper Section III.B.1).
* :func:`build_mlp_classifier` — a dense layer of 32 units with ReLU
  activation and a softmax head over the same six features
  (paper Section III.B.2).

Both are compiled with Adam (lr = 0.003) and the focal loss, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.config import LSTMConfig, MLPConfig, TrainingConfig, DEFAULT_LSTM, DEFAULT_MLP, DEFAULT_TRAINING
from repro.ml.layers import Dense, Dropout, ELU, ReLU, Softmax
from repro.ml.losses import FocalLoss
from repro.ml.lstm import LSTM
from repro.ml.model import Sequential
from repro.ml.optimizers import Adam
from repro.utils.random import default_rng, derive_rng


def build_lstm_classifier(
    config: LSTMConfig = DEFAULT_LSTM,
    training: TrainingConfig = DEFAULT_TRAINING,
    class_weights: np.ndarray | None = None,
    rng: np.random.Generator | int | None = None,
) -> Sequential:
    """Build and compile the paper's LSTM sea-ice classifier.

    The model expects inputs of shape
    ``(batch, config.sequence_length, config.n_features)``.
    """
    rng = default_rng(rng)
    layers = [
        LSTM(config.n_features, config.lstm_units, activation="elu", rng=derive_rng(rng, 0)),
        Dropout(config.dropout, rng=derive_rng(rng, 1)),
    ]
    n_in = config.lstm_units
    for i, units in enumerate(config.dense_units):
        layers.append(Dense(n_in, units, rng=derive_rng(rng, 10 + i)))
        layers.append(ELU())
        n_in = units
    layers.append(Dense(n_in, config.n_classes, rng=derive_rng(rng, 99)))
    layers.append(Softmax())

    model = Sequential(layers, n_classes=config.n_classes)
    model.compile(
        optimizer=Adam(learning_rate=training.learning_rate),
        loss=FocalLoss(gamma=training.focal_gamma, alpha=class_weights),
    )
    return model


def build_mlp_classifier(
    config: MLPConfig = DEFAULT_MLP,
    training: TrainingConfig = DEFAULT_TRAINING,
    class_weights: np.ndarray | None = None,
    rng: np.random.Generator | int | None = None,
) -> Sequential:
    """Build and compile the paper's MLP sea-ice classifier.

    The model expects inputs of shape ``(batch, config.n_features)``.
    """
    rng = default_rng(rng)
    layers: list = []
    n_in = config.n_features
    for i, units in enumerate(config.hidden_units):
        layers.append(Dense(n_in, units, rng=derive_rng(rng, i)))
        layers.append(ReLU())
        if config.dropout > 0:
            layers.append(Dropout(config.dropout, rng=derive_rng(rng, 50 + i)))
        n_in = units
    layers.append(Dense(n_in, config.n_classes, rng=derive_rng(rng, 99)))
    layers.append(Softmax())

    model = Sequential(layers, n_classes=config.n_classes)
    model.compile(
        optimizer=Adam(learning_rate=training.learning_rate),
        loss=FocalLoss(gamma=training.focal_gamma, alpha=class_weights),
    )
    return model
