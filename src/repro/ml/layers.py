"""Feed-forward layers with explicit forward/backward passes.

Every layer implements:

* ``forward(x, training)`` — returns the layer output and caches whatever is
  needed for the backward pass;
* ``backward(grad_output)`` — returns the gradient with respect to the layer
  input and stores parameter gradients in ``grads`` (aligned with
  ``params``);
* ``params`` / ``grads`` — lists of parameter arrays and their gradients,
  consumed by the optimizers and by the distributed trainer's all-reduce.

Shapes follow the Keras convention: ``(batch, features)`` for dense layers
and ``(batch, time, features)`` for recurrent inputs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import default_rng


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def n_parameters(self) -> int:
        return int(sum(p.size for p in self.params))

    def zero_grads(self) -> None:
        for g in self.grads:
            g[...] = 0.0

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.params]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        if len(weights) != len(self.params):
            raise ValueError(
                f"{type(self).__name__} expects {len(self.params)} weight arrays, got {len(weights)}"
            )
        for p, w in zip(self.params, weights):
            w = np.asarray(w, dtype=float)
            if p.shape != w.shape:
                raise ValueError(f"weight shape mismatch: expected {p.shape}, got {w.shape}")
            p[...] = w


class Dense(Layer):
    """Fully connected layer ``y = x W + b``.

    Weights use Glorot-uniform initialisation, the Keras default, so layer
    scales match the paper's setup.
    """

    def __init__(
        self,
        n_inputs: int,
        n_units: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if n_inputs <= 0 or n_units <= 0:
            raise ValueError("n_inputs and n_units must be positive")
        rng = default_rng(rng)
        limit = np.sqrt(6.0 / (n_inputs + n_units))
        self.W = rng.uniform(-limit, limit, size=(n_inputs, n_units))
        self.b = np.zeros(n_units)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.W.shape[0]:
            raise ValueError(
                f"Dense expected input of shape (batch, {self.W.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=float)
        self.grads[0][...] = self._x.T @ grad_output
        self.grads[1][...] = grad_output.sum(axis=0)
        return grad_output @ self.W.T


class ELU(Layer):
    """Exponential Linear Unit activation (the paper's hidden activation)."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._x = x
        return np.where(x > 0, x, self.alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        deriv = np.where(x > 0, 1.0, self.alpha * np.exp(np.minimum(x, 0.0)))
        return grad_output * deriv


class ReLU(Layer):
    """Rectified Linear Unit activation (used by the MLP baseline)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Softmax(Layer):
    """Softmax over the last axis.

    Usually combined with a loss whose gradient already folds in the softmax
    Jacobian (both losses in :mod:`repro.ml.losses` do), in which case the
    backward pass just forwards the incoming gradient; the full Jacobian
    product is available for stand-alone use.
    """

    def __init__(self, fused_with_loss: bool = True) -> None:
        super().__init__()
        self.fused_with_loss = fused_with_loss
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._out = exp / exp.sum(axis=-1, keepdims=True)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        if self.fused_with_loss:
            return grad_output
        s = self._out
        dot = np.sum(grad_output * s, axis=-1, keepdims=True)
        return s * (grad_output - dot)


class Dropout(Layer):
    """Inverted dropout: active during training, identity at inference."""

    def __init__(self, rate: float, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = default_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Flatten(Layer):
    """Flatten all non-batch dimensions (e.g. (batch, T, F) -> (batch, T*F))."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=float).reshape(self._shape)
