"""Regeneration of the paper's tables and figures, plus report formatting."""

from repro.evaluation.report import format_table, format_markdown_table
from repro.evaluation.tables import (
    l3_coverage_table,
    regenerate_table1,
    regenerate_table2,
    regenerate_table3,
    regenerate_table4,
    regenerate_table5,
    router_latency_table,
    router_scaling_table,
    serve_latency_table,
    serve_scaling_table,
)
from repro.evaluation.figures import (
    figure4_confusion_matrix,
    figure5_training_scaling,
    figure6_7_classification_comparison,
    figure8_9_sea_surface_comparison,
    figure10_11_freeboard_comparison,
    figure_l3_grid_map,
    figure_tile_map,
)

__all__ = [
    "format_table",
    "format_markdown_table",
    "l3_coverage_table",
    "router_latency_table",
    "router_scaling_table",
    "serve_latency_table",
    "serve_scaling_table",
    "regenerate_table1",
    "regenerate_table2",
    "regenerate_table3",
    "regenerate_table4",
    "regenerate_table5",
    "figure4_confusion_matrix",
    "figure5_training_scaling",
    "figure6_7_classification_comparison",
    "figure8_9_sea_surface_comparison",
    "figure10_11_freeboard_comparison",
    "figure_l3_grid_map",
    "figure_tile_map",
]
