"""Regeneration of the paper's tables (I, II, III, IV, V).

Each function returns the table as a list of dict rows (printable with
:func:`repro.evaluation.report.format_table`), computed from the library's
own pipeline on simulated data.  For the timing tables (II, IV, V) the rows
are produced by the calibrated cost models, anchored either to the paper's
single-slot baselines (default — regenerates the paper's numbers) or to
locally measured baselines.
"""

from __future__ import annotations

from repro.classification.pipeline import TrainedClassifier, train_classifier
from repro.config import DEFAULT_CLUSTER, DEFAULT_GPU_CLUSTER
from repro.distributed.cluster import ClusterCostModel, ClusterSimulation
from repro.distributed.ddp import DDPTimingModel, DistributedTrainer
from repro.evaluation.report import format_table
from repro.labeling.pairs import table_i_rows
from repro.ml.models import build_lstm_classifier
from repro.workflow.end_to_end import ExperimentConfig, ExperimentData, prepare_experiment_data


#: Single-slot (1 executor x 1 core) baselines reported by the paper.
PAPER_TABLE2_BASELINE = (108.0, 390.0)   # (load s, reduce s) for auto-labeling
PAPER_TABLE5_BASELINE = (111.0, 392.0)   # (load s, reduce s) for freeboard
#: Single-GPU total training time reported by the paper (Table IV).
PAPER_TABLE4_SINGLE_GPU_S = 280.72
PAPER_TABLE4_N_SAMPLES = 3222  # 585.88 samples/s * 5.5 s per epoch


def regenerate_table1() -> list[dict[str, object]]:
    """Table I: the IS2/S2 coincident pairs with drift shifts."""
    return table_i_rows()


def regenerate_table2(
    cost_model: ClusterCostModel | None = None,
    baseline: tuple[float, float] = PAPER_TABLE2_BASELINE,
) -> list[dict[str, object]]:
    """Table II: PySpark-style auto-labeling scalability over the cluster grid."""
    sim = ClusterSimulation(cost_model=cost_model, cluster=DEFAULT_CLUSTER)
    rows = sim.scaling_table(baseline[0], baseline[1])
    return [row.as_dict() for row in rows]


def regenerate_table3(
    data: ExperimentData | None = None,
    config: ExperimentConfig | None = None,
    epochs: int = 5,
    seed: int = 0,
) -> tuple[list[dict[str, object]], dict[str, TrainedClassifier]]:
    """Table III: LSTM vs MLP accuracy / precision / recall / F1.

    Trains both models on the auto-labelled simulated data and reports the
    held-out metrics.  Returns the table rows plus the trained classifiers
    (reused by the Fig. 4 confusion matrix).
    """
    if data is None:
        data = prepare_experiment_data(config if config is not None else ExperimentConfig(seed=seed))
    segments, labels = data.combined_segments_and_labels()

    classifiers: dict[str, TrainedClassifier] = {}
    rows: list[dict[str, object]] = []
    for kind, display in (("mlp", "MLP"), ("lstm", "LSTM")):
        clf = train_classifier(segments, labels, kind=kind, epochs=epochs, rng=seed)
        classifiers[kind] = clf
        rows.append(clf.report.as_row(display))
    return rows, classifiers


def regenerate_table4(
    timing_model: DDPTimingModel | None = None,
    single_gpu_total_s: float = PAPER_TABLE4_SINGLE_GPU_S,
    n_samples: int = PAPER_TABLE4_N_SAMPLES,
    epochs: int = 20,
    batch_size: int = 32,
    gpu_counts: tuple[int, ...] | None = None,
) -> list[dict[str, object]]:
    """Table IV: Horovod-style distributed training scalability (1-8 GPUs)."""
    trainer = DistributedTrainer(
        model_builder=lambda rng=None: build_lstm_classifier(rng=rng),
        n_gpus=1,
        timing_model=timing_model,
    )
    rows = trainer.scaling_table(
        single_gpu_total_s=single_gpu_total_s,
        n_samples=n_samples,
        epochs=epochs,
        batch_size=batch_size,
        gpu_counts=gpu_counts if gpu_counts is not None else DEFAULT_GPU_CLUSTER.gpu_counts,
    )
    return [row.as_dict() for row in rows]


def regenerate_table5(
    cost_model: ClusterCostModel | None = None,
    baseline: tuple[float, float] = PAPER_TABLE5_BASELINE,
) -> list[dict[str, object]]:
    """Table V: PySpark-style freeboard-computation scalability."""
    sim = ClusterSimulation(cost_model=cost_model, cluster=DEFAULT_CLUSTER)
    rows = sim.scaling_table(baseline[0], baseline[1])
    return [row.as_dict() for row in rows]


def print_all_tables(epochs: int = 3, seed: int = 0) -> str:  # pragma: no cover - convenience CLI
    """Render every table to a single string (used by ``examples/``)."""
    parts = [
        format_table(regenerate_table1(), "Table I: IS2/S2 coincident pairs"),
        format_table(regenerate_table2(), "Table II: auto-labeling scalability"),
        format_table(regenerate_table3(epochs=epochs, seed=seed)[0], "Table III: model accuracy"),
        format_table(regenerate_table4(), "Table IV: distributed training"),
        format_table(regenerate_table5(), "Table V: freeboard scalability"),
    ]
    return "\n\n".join(parts)


def l3_coverage_table(products) -> list[dict[str, object]]:
    """Level-3 coverage table: one row per gridded product (granule or mosaic).

    Each row reports the grid size, how many cells the product covers, the
    total segment count and the finite-cell mean freeboard/thickness —
    the at-a-glance answer to "how much of the grid did this fleet see".
    """
    return [product.summary_row() for product in products]


def serve_latency_table(result) -> list[dict[str, object]]:
    """Single-row serving summary of one measured traffic run.

    ``result`` is a :class:`~repro.serve.traffic.TrafficResult`; the row
    reports request volume, measured throughput, mean/P95 latency and the
    tile-cache behaviour (hit rate, product decodes).
    """
    return [result.summary_row()]


def serve_scaling_table(
    result,
    cost_model: ClusterCostModel | None = None,
    executor_counts: tuple[int, ...] = (1, 2, 4),
) -> list[dict[str, object]]:
    """Throughput/latency scaling of a traffic run across executor counts.

    The measured single-executor serving time of ``result`` (a
    :class:`~repro.serve.traffic.TrafficResult`) is routed through the
    calibrated :class:`~repro.distributed.cluster.ClusterCostModel`, the
    same convention as the Table II/V regenerations.
    """
    from repro.serve.traffic import scaling_rows

    return scaling_rows(result, cost_model=cost_model, executor_counts=executor_counts)


def router_latency_table(result) -> list[dict[str, object]]:
    """Single-row summary of one open-loop run through the service tier.

    ``result`` is an :class:`~repro.serve.traffic.OpenLoopResult`; the row
    reports offered load, completed throughput, the shed rate and
    coalescing ratio of the admission/single-flight layer, and the
    p50/p95/p99 latency of completed requests.
    """
    return [result.summary_row()]


def router_scaling_table(
    result,
    cost_model: ClusterCostModel | None = None,
    shard_counts: tuple[int, ...] = (1, 2, 4),
) -> list[dict[str, object]]:
    """Saturation throughput of an open-loop run across shard counts.

    The measured service work of ``result`` (an
    :class:`~repro.serve.traffic.OpenLoopResult`) is routed through the
    calibrated :class:`~repro.distributed.cluster.ClusterCostModel` with
    the shard count in the executor column's role — the Table II/V
    convention applied to the serving tier.
    """
    from repro.serve.traffic import router_scaling_rows

    return router_scaling_rows(result, cost_model=cost_model, shard_counts=shard_counts)
