"""Plain-text and Markdown table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Mapping, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_stringify(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)]

    def fmt_row(values: Sequence[str]) -> str:
        return " | ".join(v.rjust(w) for v, w in zip(values, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(columns))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of dict rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return (f"**{title}**\n\n" if title else "") + "_(no rows)_"
    columns = list(rows[0].keys())
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col, "")) for col in columns) + " |")
    return "\n".join(lines)
