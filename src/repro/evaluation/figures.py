"""Regeneration of the paper's figures as data series.

Plots are not drawn (no plotting dependency offline); each function returns
the numeric series behind the corresponding figure so the benchmark harness
can print them and tests can assert their shape (who wins, by what factor,
where the distributions peak).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classification.pipeline import TrainedClassifier
from repro.config import CLASS_NAMES
from repro.distributed.ddp import DDPTimingModel
from repro.evaluation.tables import (
    PAPER_TABLE4_N_SAMPLES,
    PAPER_TABLE4_SINGLE_GPU_S,
    regenerate_table4,
)
from repro.freeboard.comparison import FreeboardComparison, compare_freeboards, point_density
from repro.freeboard.freeboard import FreeboardResult
from repro.freeboard.interpolation import interpolate_missing_windows, sea_surface_at
from repro.freeboard.sea_surface import SEA_SURFACE_METHODS, estimate_sea_surface
from repro.products.atl07 import ATL07Product
from repro.products.atl10 import ATL10Product
from repro.workflow.end_to_end import PipelineOutputs


# ---------------------------------------------------------------------------
# Figure 4: confusion matrix
# ---------------------------------------------------------------------------


def figure4_confusion_matrix(classifier: TrainedClassifier) -> dict[str, object]:
    """Row-normalised confusion matrix with per-class accuracies (percent)."""
    report = classifier.report
    normalized = report.normalized_confusion()
    return {
        "class_names": list(CLASS_NAMES),
        "confusion_counts": report.confusion.tolist(),
        "confusion_normalized": normalized.tolist(),
        "per_class_accuracy_percent": [round(100.0 * v, 2) for v in report.per_class_accuracy],
        "overall_accuracy_percent": round(100.0 * report.accuracy, 2),
    }


# ---------------------------------------------------------------------------
# Figure 5: distributed training scaling curves
# ---------------------------------------------------------------------------


def figure5_training_scaling(
    timing_model: DDPTimingModel | None = None,
    single_gpu_total_s: float = PAPER_TABLE4_SINGLE_GPU_S,
    n_samples: int = PAPER_TABLE4_N_SAMPLES,
) -> dict[str, list[float]]:
    """The four panels of Fig. 5: speedup, total time, throughput, time/epoch."""
    rows = regenerate_table4(
        timing_model=timing_model,
        single_gpu_total_s=single_gpu_total_s,
        n_samples=n_samples,
    )
    return {
        "n_gpus": [row["No. of GPUs"] for row in rows],
        "speedup": [row["Speedup"] for row in rows],
        "total_time_s": [row["Time (s)"] for row in rows],
        "samples_per_second": [row["Data/s"] for row in rows],
        "time_per_epoch_s": [row["Time (s)/Epoch"] for row in rows],
        "ideal_speedup": [float(row["No. of GPUs"]) for row in rows],
    }


# ---------------------------------------------------------------------------
# Figures 6 & 7: classification density comparison ATL03 vs ATL07
# ---------------------------------------------------------------------------


@dataclass
class ClassificationComparison:
    """Series behind Figs. 6/7 for one track."""

    track_name: str
    atl03_along_m: np.ndarray
    atl03_labels: np.ndarray
    atl07_along_m: np.ndarray
    atl07_labels: np.ndarray
    atl03_points_per_km: float
    atl07_points_per_km: float

    @property
    def density_ratio(self) -> float:
        if self.atl07_points_per_km == 0:
            return np.inf
        return self.atl03_points_per_km / self.atl07_points_per_km

    def class_fractions(self) -> dict[str, dict[int, float]]:
        out: dict[str, dict[int, float]] = {}
        for name, labels in (("atl03", self.atl03_labels), ("atl07", self.atl07_labels)):
            values, counts = np.unique(labels, return_counts=True)
            out[name] = {int(v): float(c) / labels.size for v, c in zip(values, counts)}
        return out


def figure6_7_classification_comparison(
    outputs: PipelineOutputs, beam_name: str | None = None
) -> ClassificationComparison:
    """Compare the 2 m classification against the emulated ATL07 classes."""
    if beam_name is None:
        beam_name = sorted(outputs.classified)[0]
    track = outputs.classified[beam_name]
    atl07 = outputs.atl07[beam_name]
    return ClassificationComparison(
        track_name=beam_name,
        atl03_along_m=track.segments.center_along_track_m,
        atl03_labels=track.labels,
        atl07_along_m=atl07.along_track_m,
        atl07_labels=atl07.surface_class,
        atl03_points_per_km=point_density(track.segments.center_along_track_m),
        atl07_points_per_km=atl07.points_per_km(),
    )


# ---------------------------------------------------------------------------
# Figures 8 & 9: local sea surface comparison
# ---------------------------------------------------------------------------


def figure8_9_sea_surface_comparison(
    outputs: PipelineOutputs, beam_name: str | None = None
) -> dict[str, object]:
    """Sea-surface heights from the four ATL03 methods plus the ATL07 baseline.

    Returns, per method, the window centres and heights, and the mean
    absolute difference between the (NASA-method) ATL03 sea surface and the
    ATL07 sea surface evaluated at the ATL07 segments — the quantity the
    paper reports as "a little over 0.1 m".
    """
    if beam_name is None:
        beam_name = sorted(outputs.classified)[0]
    track = outputs.classified[beam_name]
    atl07 = outputs.atl07[beam_name]
    seg = track.segments

    methods: dict[str, dict[str, list[float]]] = {}
    smoothness: dict[str, float] = {}
    nasa_estimate = None
    for method in SEA_SURFACE_METHODS:
        estimate = estimate_sea_surface(
            seg.center_along_track_m,
            seg.height_mean_m,
            seg.height_error_m(),
            track.labels,
            method=method,
        )
        estimate = interpolate_missing_windows(estimate)
        if method == "nasa":
            nasa_estimate = estimate
        methods[method] = {
            "centers_m": estimate.centers_m.tolist(),
            "heights_m": estimate.heights_m.tolist(),
        }
        smoothness[method] = estimate.smoothness()

    assert nasa_estimate is not None
    atl03_at_atl07 = sea_surface_at(nasa_estimate, atl07.along_track_m)
    diff = float(np.mean(np.abs(atl03_at_atl07 - atl07.sea_surface_m)))

    return {
        "beam": beam_name,
        "methods": methods,
        "smoothness_m": smoothness,
        "atl07_centers_m": atl07.along_track_m.tolist(),
        "atl07_sea_surface_m": atl07.sea_surface_m.tolist(),
        "mean_abs_difference_vs_atl07_m": diff,
    }


# ---------------------------------------------------------------------------
# Figures 10 & 11: freeboard comparison
# ---------------------------------------------------------------------------


def figure10_11_freeboard_comparison(
    outputs: PipelineOutputs, beam_name: str | None = None
) -> dict[str, object]:
    """Freeboard series, distributions and point densities (ATL03 vs ATL10)."""
    if beam_name is None:
        beam_name = sorted(outputs.freeboard)[0]
    fb: FreeboardResult = outputs.freeboard[beam_name]
    atl07: ATL07Product = outputs.atl07[beam_name]
    atl10: ATL10Product = outputs.atl10[beam_name]

    comparison: FreeboardComparison = compare_freeboards(
        fb,
        atl10.along_track_m,
        atl10.freeboard_m,
        baseline_sea_surface_m=atl10.sea_surface_m,
    )
    atl03_centres, atl03_density = fb.distribution()
    atl10_centres, atl10_density = atl10.distribution()

    return {
        "beam": beam_name,
        "atl03_along_m": fb.along_track_m.tolist(),
        "atl03_freeboard_m": fb.freeboard_m.tolist(),
        "atl10_along_m": atl10.along_track_m.tolist(),
        "atl10_freeboard_m": atl10.freeboard_m.tolist(),
        "distribution_bins_m": atl03_centres.tolist(),
        "atl03_distribution": atl03_density.tolist(),
        "atl10_distribution": atl10_density.tolist(),
        "comparison": comparison.as_dict(),
        "atl07_mean_segment_length_m": atl07.mean_segment_length_m(),
    }


# ---------------------------------------------------------------------------
# Level-3 grid map (the gridded-composite panel)
# ---------------------------------------------------------------------------


def figure_l3_grid_map(product) -> dict[str, object]:
    """Numeric series behind a Level-3 grid map (per-granule grid or mosaic).

    Returns the cell-centre coordinates (projected metres and geodetic
    lat/lon from the grid's polar stereographic projection) plus the key
    composite layers, ready for a ``pcolormesh``-style plot.  Mosaic-only
    layers (``n_granules``, ``coverage_fraction``) are included when present.
    """
    x_centers, y_centers = product.grid.cell_centers()
    lat, lon = product.grid.cell_center_latlon()
    series: dict[str, object] = {
        "kind": product.kind,
        "shape": list(product.grid.shape),
        "cell_size_m": product.grid.cell_size_m,
        "x_centers_m": x_centers,
        "y_centers_m": y_centers,
        "lat_deg": lat,
        "lon_deg": lon,
        "freeboard_mean_m": product.variable("freeboard_mean"),
        "n_segments": product.variable("n_segments"),
        "coverage_percent": round(100.0 * product.coverage_fraction(), 2),
    }
    for optional in ("n_granules", "coverage_fraction", "thickness_mean"):
        if optional in product.variables:
            series[optional] = product.variable(optional)
    return series


# ---------------------------------------------------------------------------
# Tile map (the serving-layer panel)
# ---------------------------------------------------------------------------


def figure_tile_map(pyramid, variable: str = "freeboard_mean", zoom: int = 0,
                    row: int = 0, col: int = 0) -> dict[str, object]:
    """Numeric series behind one served tile of a Level-3 tile pyramid.

    ``pyramid`` is a :class:`~repro.serve.pyramid.TilePyramid`; the series
    carries the NaN-padded tile, its projected-metre bbox, the level's cell
    size and the coverage layer windowed to the same tile — everything a
    map panel needs to draw one tile exactly as the query engine serves it.
    """
    zoom = pyramid.clamp_zoom(zoom)
    level = pyramid.level(zoom)
    tile = pyramid.tile(variable, zoom, row, col)
    ts = pyramid.tile_size
    window = level.coverage[row * ts : (row + 1) * ts, col * ts : (col + 1) * ts]
    # Pad like the tile itself, so elementwise tile/coverage masking works on
    # edge tiles too (cells past the grid are uncovered, not missing).
    coverage = np.zeros((ts, ts))
    coverage[: window.shape[0], : window.shape[1]] = window
    finite = tile[~np.isnan(tile)]
    return {
        "variable": variable,
        "zoom": zoom,
        "tile": tile,
        "tile_row": row,
        "tile_col": col,
        "tile_size": ts,
        "bbox_m": pyramid.tile_bbox(zoom, row, col),
        "cell_size_m": level.grid.cell_size_m,
        "coverage": coverage,
        "finite_fraction": round(float((~np.isnan(tile)).mean()), 4),
        "value_range": (
            (float(finite.min()), float(finite.max())) if finite.size else (None, None)
        ),
    }
