"""End-to-end workflow orchestration (paper Fig. 1 and Fig. 3)."""

from repro.workflow.end_to_end import (
    ExperimentConfig,
    ExperimentData,
    PipelineOutputs,
    prepare_experiment_data,
    run_end_to_end,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentData",
    "PipelineOutputs",
    "prepare_experiment_data",
    "run_end_to_end",
]
