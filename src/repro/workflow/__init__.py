"""End-to-end workflow orchestration (paper Fig. 1 and Fig. 3)."""

from repro.workflow.end_to_end import (
    ExperimentConfig,
    ExperimentData,
    InferenceProducts,
    PipelineOutputs,
    prepare_experiment_data,
    run_end_to_end,
    run_inference_stage,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentData",
    "InferenceProducts",
    "PipelineOutputs",
    "prepare_experiment_data",
    "run_end_to_end",
    "run_inference_stage",
]
