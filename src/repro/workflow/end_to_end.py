"""The complete ATL03 sea-ice classification and freeboard workflow.

This module wires the substrates together exactly as the paper's Fig. 1:

1. **Data curation** — generate a Ross Sea scene, simulate an ATL03 granule
   over it, render a coincident (drifted, cloudy) Sentinel-2 acquisition,
   segment the S2 image, estimate and correct the drift, resample the beams
   to 2 m segments, auto-label them and correct transition/cloudy labels.
2. **Model training** — train the LSTM (or MLP) classifier on the labelled
   segments (80/20 split, focal loss, Adam lr=0.003).
3. **Inference** — classify every 2 m segment of every beam.
4. **Sea surface + freeboard** — estimate the local sea surface from the
   classified open water, compute freeboard, and build the ATL07/ATL10
   emulated baselines for comparison.

Every step is also exposed individually (the examples and benchmarks call
into specific stages); :func:`run_end_to_end` is the convenience that runs
them all with one seed and returns every intermediate product.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atl03.granule import Granule
from repro.atl03.simulator import ATL03SimulatorConfig, simulate_granule
from repro.classification.pipeline import (
    ClassifiedTrack,
    InferencePipeline,
    TrainedClassifier,
    train_classifier,
)
from repro.config import (
    DEFAULT_SEA_SURFACE,
    DEFAULT_TRAINING,
    LSTMConfig,
    MLPConfig,
    SeaSurfaceConfig,
    TrainingConfig,
    DEFAULT_LSTM,
    DEFAULT_MLP,
    RESAMPLE_WINDOW_M,
)
from repro.freeboard.freeboard import FreeboardResult, compute_freeboard
from repro.labeling.alignment import DriftEstimate, apply_shift, estimate_drift
from repro.labeling.autolabel import AutoLabelResult, auto_label_segments
from repro.labeling.manual import CorrectionReport, correct_labels
from repro.products.atl07 import ATL07Product, generate_atl07
from repro.products.atl10 import ATL10Product, generate_atl10
from repro.resampling.window import SegmentArray, concatenate_segments, resample_fixed_window
from repro.sentinel2.scene import S2Image, S2SceneConfig, render_scene
from repro.sentinel2.segmentation import SegmentationConfig, SegmentationResult, segment_image
from repro.surface.scene import IceScene, SceneConfig, generate_scene
from repro.utils.random import default_rng, derive_rng


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizing and seeding of a full end-to-end experiment.

    The defaults produce a small but representative experiment that runs in
    tens of seconds on one CPU; the benchmarks scale the scene and track up.
    """

    scene: SceneConfig = field(default_factory=lambda: SceneConfig(width_m=30_000.0, height_m=30_000.0))
    s2: S2SceneConfig = field(default_factory=S2SceneConfig)
    atl03: ATL03SimulatorConfig = field(default_factory=ATL03SimulatorConfig)
    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    sea_surface: SeaSurfaceConfig = DEFAULT_SEA_SURFACE
    training: TrainingConfig = DEFAULT_TRAINING
    lstm: LSTMConfig = DEFAULT_LSTM
    mlp: MLPConfig = DEFAULT_MLP
    window_length_m: float = RESAMPLE_WINDOW_M
    n_beams: int = 1
    drift_m: tuple[float, float] = (150.0, 250.0)
    epochs: int = 5
    model_kind: str = "lstm"
    estimate_drift: bool = True
    seed: int = 42


@dataclass
class ExperimentData:
    """All curated data of stage 1 (before model training)."""

    scene: IceScene
    granule: Granule
    image: S2Image
    segmentation: SegmentationResult
    drift: DriftEstimate | None
    segments: dict[str, SegmentArray]
    auto_labels: dict[str, AutoLabelResult]
    labels: dict[str, np.ndarray]
    correction_reports: dict[str, CorrectionReport]

    def combined_segments_and_labels(self) -> tuple[SegmentArray, np.ndarray]:
        """Concatenate all beams' segments and labels for training.

        Beams are concatenated in sorted name order; along-track positions are
        kept per-beam (training only uses features, not positions).  All beams
        must have been resampled with the same ``window_length_m`` — a
        mismatch raises ``ValueError`` instead of silently mixing resolutions.
        """
        if set(self.labels) != set(self.segments):
            raise ValueError(
                "segments and labels must cover the same beams, got "
                f"segments={sorted(self.segments)} labels={sorted(self.labels)}"
            )
        names = sorted(self.segments)
        if len(names) == 1:
            return self.segments[names[0]], self.labels[names[0]]
        combined = concatenate_segments([self.segments[n] for n in names])
        labels = np.concatenate([self.labels[n] for n in names])
        return combined, labels

    def combined_training_arrays(self) -> tuple[SegmentArray, np.ndarray, np.ndarray]:
        """Combined segments and labels plus per-beam group ids.

        The group ids mark each beam as an independent contiguous track so
        training can keep along-track change features and LSTM sequences from
        crossing beam boundaries (see ``groups`` in
        :func:`repro.classification.train_classifier`).
        """
        segments, labels = self.combined_segments_and_labels()
        names = sorted(self.segments)
        groups = np.repeat(
            np.arange(len(names)), [self.segments[n].n_segments for n in names]
        )
        return segments, labels, groups


@dataclass
class PipelineOutputs:
    """Everything produced by a full end-to-end run."""

    data: ExperimentData
    classifier: TrainedClassifier
    classified: dict[str, ClassifiedTrack]
    freeboard: dict[str, FreeboardResult]
    atl07: dict[str, ATL07Product]
    atl10: dict[str, ATL10Product]


def prepare_experiment_data(config: ExperimentConfig | None = None) -> ExperimentData:
    """Stage 1 of the workflow: curation, resampling and auto-labeling."""
    cfg = config if config is not None else ExperimentConfig()
    rng = default_rng(cfg.seed)

    scene = generate_scene(cfg.scene, seed=cfg.seed)
    granule = simulate_granule(
        scene,
        n_beams=cfg.n_beams,
        config=cfg.atl03,
        rng=derive_rng(rng, 1),
    )
    image = render_scene(
        scene,
        config=cfg.s2,
        drift_offset_m=cfg.drift_m,
        rng=derive_rng(rng, 2),
    )
    segmentation = segment_image(image, cfg.segmentation)

    segments: dict[str, SegmentArray] = {}
    auto_labels: dict[str, AutoLabelResult] = {}
    labels: dict[str, np.ndarray] = {}
    reports: dict[str, CorrectionReport] = {}

    drift: DriftEstimate | None = None
    aligned_image = image
    for name, beam in granule.beams.items():
        seg = resample_fixed_window(beam, window_length_m=cfg.window_length_m)
        segments[name] = seg
        if cfg.estimate_drift and drift is None:
            drift = estimate_drift(
                image,
                segmentation.class_map,
                seg.x_m,
                seg.y_m,
                seg.height_mean_m,
            )
            aligned_image = apply_shift(image, drift)
        auto = auto_label_segments(seg, aligned_image, segmentation)
        corrected, report = correct_labels(seg, auto)
        auto_labels[name] = auto
        labels[name] = corrected
        reports[name] = report

    return ExperimentData(
        scene=scene,
        granule=granule,
        image=aligned_image,
        segmentation=segmentation,
        drift=drift,
        segments=segments,
        auto_labels=auto_labels,
        labels=labels,
        correction_reports=reports,
    )


@dataclass
class InferenceProducts:
    """Stage 3+4 products of one granule: classification, freeboard, baselines."""

    classified: dict[str, ClassifiedTrack]
    freeboard: dict[str, FreeboardResult]
    atl07: dict[str, ATL07Product]
    atl10: dict[str, ATL10Product]


def run_inference_stage(
    data: ExperimentData,
    classifier: TrainedClassifier,
    config: ExperimentConfig,
    classified: dict[str, ClassifiedTrack] | None = None,
) -> InferenceProducts:
    """Classify a curated granule and retrieve freeboard + ATL07/ATL10 baselines.

    This is the fan-out half of the workflow: given stage-1 curated data and a
    trained classifier (possibly shared across many granules — see
    :mod:`repro.campaign`), it runs inference, sea-surface detection,
    freeboard and the emulated operational baselines for every beam.

    ``classified`` lets a caller that already classified the granule's beams
    (e.g. the campaign runner, which pools many granules into one
    ``predict_batched`` pass) skip the per-granule classification.
    """
    if classified is None:
        pipeline = InferencePipeline(classifier, window_length_m=config.window_length_m)
        # The stage-1 segments were resampled with the same window/confidence
        # parameters, so classify them directly instead of re-resampling
        # photons.  All beams go through one pooled predict_batched pass so
        # the LSTM steps every sequence of the granule together.
        classified = pipeline.classify_segments_batched(data.segments)

    freeboard: dict[str, FreeboardResult] = {}
    atl07: dict[str, ATL07Product] = {}
    atl10: dict[str, ATL10Product] = {}
    for name, track in classified.items():
        freeboard[name] = compute_freeboard(
            track.segments,
            track.labels,
            method=config.sea_surface.method,
            config=config.sea_surface,
        )
        atl07[name] = generate_atl07(data.granule.beam(name), sea_surface_config=config.sea_surface)
        atl10[name] = generate_atl10(atl07[name])
    return InferenceProducts(
        classified=classified, freeboard=freeboard, atl07=atl07, atl10=atl10
    )


def run_end_to_end(config: ExperimentConfig | None = None) -> PipelineOutputs:
    """Run the full Fig. 1 workflow and return every intermediate product."""
    cfg = config if config is not None else ExperimentConfig()
    data = prepare_experiment_data(cfg)

    segments, labels, groups = data.combined_training_arrays()
    classifier = train_classifier(
        segments,
        labels,
        kind=cfg.model_kind,
        lstm_config=cfg.lstm,
        mlp_config=cfg.mlp,
        training=cfg.training,
        epochs=cfg.epochs,
        rng=cfg.seed,
        groups=groups,
    )

    products = run_inference_stage(data, classifier, cfg)
    return PipelineOutputs(
        data=data,
        classifier=classifier,
        classified=products.classified,
        freeboard=products.freeboard,
        atl07=products.atl07,
        atl10=products.atl10,
    )
