"""The complete ATL03 sea-ice classification and freeboard workflow.

This module is the convenience facade over the stage-graph engine
(:mod:`repro.pipeline`), which wires the substrates together exactly as the
paper's Fig. 1:

1. **Data curation** — generate a Ross Sea scene, simulate an ATL03 granule
   over it, render a coincident (drifted, cloudy) Sentinel-2 acquisition,
   segment the S2 image, estimate and correct the drift, resample the beams
   to 2 m segments, auto-label them and correct transition/cloudy labels.
2. **Model training** — train the LSTM (or MLP) classifier on the labelled
   segments (80/20 split, focal loss, Adam lr=0.003).
3. **Inference** — classify every 2 m segment of every beam.
4. **Sea surface + freeboard** — estimate the local sea surface from the
   classified open water, compute freeboard, and build the ATL07/ATL10
   emulated baselines for comparison.

Every step is a registered :class:`~repro.pipeline.stage.Stage`;
:func:`run_end_to_end` is a one-granule graph run that materialises every
intermediate product, and :func:`prepare_experiment_data` targets just the
curated stage-1 artifacts.  Callers that want stage-granular caching,
partial recomputation or parallel per-beam fan-out use
:class:`~repro.pipeline.runner.GraphRunner` directly with the same graph.
"""

from __future__ import annotations

from repro.classification.pipeline import ClassifiedTrack, TrainedClassifier
from repro.workflow.experiment import (
    ExperimentConfig,
    ExperimentData,
    InferenceProducts,
    PipelineOutputs,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentData",
    "InferenceProducts",
    "PipelineOutputs",
    "prepare_experiment_data",
    "run_end_to_end",
    "run_inference_stage",
]


def _graph_runner():
    """A default-graph runner; imported lazily to break the import cycle.

    ``repro.pipeline.stages`` imports :mod:`repro.workflow.experiment` (and
    with it this package's ``__init__``) at module load, so this facade must
    not import :mod:`repro.pipeline` until call time.
    """
    from repro.pipeline.runner import GraphRunner
    from repro.pipeline.stages import default_graph

    return GraphRunner(default_graph())


def prepare_experiment_data(config: ExperimentConfig | None = None) -> ExperimentData:
    """Stage 1 of the workflow: curation, resampling and auto-labeling.

    Executes the curation subgraph (scene -> atl03/s2 -> segmentation ->
    resample -> drift -> autolabel) and assembles the products.
    """
    cfg = config if config is not None else ExperimentConfig()
    result = _graph_runner().run(cfg, targets=("experiment_data",))
    return result.value("experiment_data")


def run_inference_stage(
    data: ExperimentData,
    classifier: TrainedClassifier,
    config: ExperimentConfig,
    classified: dict[str, ClassifiedTrack] | None = None,
) -> InferenceProducts:
    """Classify a curated granule and retrieve freeboard + ATL07/ATL10 baselines.

    This is the fan-out half of the workflow: given stage-1 curated data and a
    trained classifier (possibly shared across many granules — see
    :mod:`repro.campaign`), it runs the retrieval subgraph (inference,
    sea-surface detection, freeboard and the emulated operational baselines)
    with the curated data injected as precomputed artifacts.

    ``classified`` lets a caller that already classified the granule's beams
    (e.g. the campaign runner, which pools many granules into one
    ``predict_batched`` pass) skip the per-granule classification.
    """
    from repro.pipeline.artifact import external_artifact

    precomputed = {
        "granule": external_artifact("granule", data.granule),
        "segments": external_artifact("segments", data.segments),
        "classifier": external_artifact("classifier", classifier),
    }
    if classified is not None:
        precomputed["classified"] = external_artifact("classified", classified)
    result = _graph_runner().run(
        config,
        targets=("classified", "freeboard", "atl07", "atl10"),
        precomputed=precomputed,
    )
    return InferenceProducts(
        classified=result.value("classified"),
        freeboard=result.value("freeboard"),
        atl07=result.value("atl07"),
        atl10=result.value("atl10"),
    )


def run_end_to_end(config: ExperimentConfig | None = None) -> PipelineOutputs:
    """Run the full Fig. 1 workflow and return every intermediate product.

    One single-granule graph execution: curation, training, inference and
    retrieval stages run in topological order.
    """
    cfg = config if config is not None else ExperimentConfig()
    result = _graph_runner().run(
        cfg,
        targets=(
            "experiment_data",
            "classifier",
            "classified",
            "freeboard",
            "atl07",
            "atl10",
        ),
    )
    return PipelineOutputs(
        data=result.value("experiment_data"),
        classifier=result.value("classifier"),
        classified=result.value("classified"),
        freeboard=result.value("freeboard"),
        atl07=result.value("atl07"),
        atl10=result.value("atl10"),
    )
