"""Experiment configuration and product containers of the Fig. 1 workflow.

These dataclasses are the *nouns* of the workflow: the sizing/seeding of one
end-to-end experiment (:class:`ExperimentConfig`), the curated stage-1 data
(:class:`ExperimentData`), the retrieval products (:class:`InferenceProducts`)
and the full bundle (:class:`PipelineOutputs`).  They live apart from the
orchestration in :mod:`repro.workflow.end_to_end` so the stage-graph engine
(:mod:`repro.pipeline`) can depend on them without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atl03.granule import Granule
from repro.atl03.simulator import ATL03SimulatorConfig
from repro.classification.pipeline import ClassifiedTrack, TrainedClassifier
from repro.config import (
    DEFAULT_L3_GRID,
    DEFAULT_LSTM,
    DEFAULT_MLP,
    DEFAULT_SEA_SURFACE,
    DEFAULT_SERVE,
    DEFAULT_TRAINING,
    L3GridConfig,
    LSTMConfig,
    MLPConfig,
    RESAMPLE_WINDOW_M,
    SeaSurfaceConfig,
    ServeConfig,
    TrainingConfig,
)
from repro.freeboard.freeboard import FreeboardResult
from repro.labeling.alignment import DriftEstimate
from repro.labeling.autolabel import AutoLabelResult
from repro.labeling.manual import CorrectionReport
from repro.products.atl07 import ATL07Product
from repro.products.atl10 import ATL10Product
from repro.resampling.window import SegmentArray, concatenate_segments
from repro.sentinel2.scene import S2Image, S2SceneConfig
from repro.sentinel2.segmentation import SegmentationConfig, SegmentationResult
from repro.surface.scene import IceScene, SceneConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizing and seeding of a full end-to-end experiment.

    The defaults produce a small but representative experiment that runs in
    tens of seconds on one CPU; the benchmarks scale the scene and track up.
    """

    scene: SceneConfig = field(default_factory=lambda: SceneConfig(width_m=30_000.0, height_m=30_000.0))
    s2: S2SceneConfig = field(default_factory=S2SceneConfig)
    atl03: ATL03SimulatorConfig = field(default_factory=ATL03SimulatorConfig)
    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    sea_surface: SeaSurfaceConfig = DEFAULT_SEA_SURFACE
    l3: L3GridConfig = DEFAULT_L3_GRID
    serve: ServeConfig = DEFAULT_SERVE
    training: TrainingConfig = DEFAULT_TRAINING
    lstm: LSTMConfig = DEFAULT_LSTM
    mlp: MLPConfig = DEFAULT_MLP
    window_length_m: float = RESAMPLE_WINDOW_M
    n_beams: int = 1
    drift_m: tuple[float, float] = (150.0, 250.0)
    epochs: int = 5
    model_kind: str = "lstm"
    estimate_drift: bool = True
    seed: int = 42


@dataclass
class ExperimentData:
    """All curated data of stage 1 (before model training)."""

    scene: IceScene
    granule: Granule
    image: S2Image
    segmentation: SegmentationResult
    drift: DriftEstimate | None
    segments: dict[str, SegmentArray]
    auto_labels: dict[str, AutoLabelResult]
    labels: dict[str, np.ndarray]
    correction_reports: dict[str, CorrectionReport]

    def combined_segments_and_labels(self) -> tuple[SegmentArray, np.ndarray]:
        """Concatenate all beams' segments and labels for training.

        Beams are concatenated in sorted name order; along-track positions are
        kept per-beam (training only uses features, not positions).  All beams
        must have been resampled with the same ``window_length_m`` — a
        mismatch raises ``ValueError`` instead of silently mixing resolutions.
        """
        if set(self.labels) != set(self.segments):
            raise ValueError(
                "segments and labels must cover the same beams, got "
                f"segments={sorted(self.segments)} labels={sorted(self.labels)}"
            )
        names = sorted(self.segments)
        if len(names) == 1:
            return self.segments[names[0]], self.labels[names[0]]
        combined = concatenate_segments([self.segments[n] for n in names])
        labels = np.concatenate([self.labels[n] for n in names])
        return combined, labels

    def combined_training_arrays(self) -> tuple[SegmentArray, np.ndarray, np.ndarray]:
        """Combined segments and labels plus per-beam group ids.

        The group ids mark each beam as an independent contiguous track so
        training can keep along-track change features and LSTM sequences from
        crossing beam boundaries (see ``groups`` in
        :func:`repro.classification.train_classifier`).
        """
        segments, labels = self.combined_segments_and_labels()
        names = sorted(self.segments)
        groups = np.repeat(
            np.arange(len(names)), [self.segments[n].n_segments for n in names]
        )
        return segments, labels, groups


@dataclass
class InferenceProducts:
    """Stage 3+4 products of one granule: classification, freeboard, baselines."""

    classified: dict[str, ClassifiedTrack]
    freeboard: dict[str, FreeboardResult]
    atl07: dict[str, ATL07Product]
    atl10: dict[str, ATL10Product]


@dataclass
class PipelineOutputs:
    """Everything produced by a full end-to-end run."""

    data: ExperimentData
    classifier: TrainedClassifier
    classified: dict[str, ClassifiedTrack]
    freeboard: dict[str, FreeboardResult]
    atl07: dict[str, ATL07Product]
    atl10: dict[str, ATL10Product]
