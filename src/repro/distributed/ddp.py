"""Synchronous data-parallel distributed training (the Horovod replacement).

:class:`DistributedTrainer` reproduces Horovod's execution model with
in-process "ranks" standing in for GPUs:

1. rank 0's initial weights are broadcast to every replica
   (``hvd.callbacks.BroadcastGlobalVariablesCallback(0)``);
2. the training set is sharded across ranks (one disjoint shard per rank);
3. every step, each rank computes gradients on its own mini-batch;
4. the per-rank gradients are averaged with the real ring all-reduce from
   :mod:`repro.distributed.allreduce` (``hvd.DistributedOptimizer``);
5. every rank applies the identical averaged update, so replicas stay
   bit-for-bit synchronised — an invariant the test suite checks.

Because all ranks share one physical CPU here, multi-GPU *wall-clock* is not
measurable; :class:`DDPTimingModel` supplies it.  The model has three terms
per epoch — compute (scales as 1/N), ring all-reduce communication
(``2 (N-1)/N × bytes / bandwidth`` plus per-step latency) and a fixed input
pipeline / batch-preparation overhead that does not parallelise (the paper
explicitly attributes its sub-linear scaling to this "GPU starvation").  The
defaults are calibrated to the paper's Table IV: 280.72 s on one GPU falling
to 38.72 s on eight (7.25x).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.distributed.allreduce import ring_allreduce_average
from repro.ml.dataset import Dataset
from repro.ml.model import Sequential, TrainingHistory
from repro.utils.random import default_rng, spawn_rngs


@dataclass(frozen=True)
class DDPTimingModel:
    """Calibrated wall-clock model for multi-GPU data-parallel training.

    Parameters
    ----------
    input_pipeline_fraction:
        Fraction of the single-GPU epoch time spent in the non-parallelised
        input pipeline (data preprocessing and batch preparation).
    allreduce_bandwidth_gb_s:
        Effective ring bandwidth between GPUs (NVLink-class for a DGX A100).
    allreduce_latency_s:
        Per-all-reduce latency (launch + synchronisation) per step.
    """

    input_pipeline_fraction: float = 0.0167
    allreduce_bandwidth_gb_s: float = 150.0
    allreduce_latency_s: float = 1.5e-4
    bytes_per_parameter: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.input_pipeline_fraction < 1.0:
            raise ValueError("input_pipeline_fraction must be in [0, 1)")
        if self.allreduce_bandwidth_gb_s <= 0:
            raise ValueError("allreduce_bandwidth_gb_s must be positive")
        if self.allreduce_latency_s < 0:
            raise ValueError("allreduce_latency_s must be non-negative")

    def allreduce_seconds_per_step(self, n_gpus: int, n_parameters: int) -> float:
        """Ring all-reduce time for one gradient exchange."""
        if n_gpus <= 1:
            return 0.0
        payload_bytes = n_parameters * self.bytes_per_parameter
        ring_factor = 2.0 * (n_gpus - 1) / n_gpus
        transfer = ring_factor * payload_bytes / (self.allreduce_bandwidth_gb_s * 1e9)
        return transfer + self.allreduce_latency_s * (n_gpus - 1)

    def epoch_seconds(
        self,
        single_gpu_epoch_s: float,
        n_gpus: int,
        n_parameters: int,
        steps_per_epoch: int,
    ) -> float:
        """Predicted wall-clock of one epoch on ``n_gpus`` GPUs."""
        if single_gpu_epoch_s <= 0:
            raise ValueError("single_gpu_epoch_s must be positive")
        if n_gpus <= 0 or steps_per_epoch <= 0:
            raise ValueError("n_gpus and steps_per_epoch must be positive")
        pipeline = self.input_pipeline_fraction * single_gpu_epoch_s
        compute = (1.0 - self.input_pipeline_fraction) * single_gpu_epoch_s / n_gpus
        comm = self.allreduce_seconds_per_step(n_gpus, n_parameters) * steps_per_epoch
        return pipeline + compute + comm


@dataclass(frozen=True)
class GpuScalingRow:
    """One row of the paper's Table IV."""

    n_gpus: int
    total_time_s: float
    time_per_epoch_s: float
    samples_per_second: float
    speedup: float

    def as_dict(self) -> dict[str, float | int]:
        return {
            "No. of GPUs": self.n_gpus,
            "Time (s)": round(self.total_time_s, 2),
            "Time (s)/Epoch": round(self.time_per_epoch_s, 3),
            "Data/s": round(self.samples_per_second, 2),
            "Speedup": round(self.speedup, 2),
        }


@dataclass
class DistributedRunResult:
    """Outcome of a (simulated) distributed training run."""

    history: TrainingHistory
    n_gpus: int
    measured_wall_seconds: float
    scaling: list[GpuScalingRow] = field(default_factory=list)


class DistributedTrainer:
    """Horovod-style synchronous data-parallel trainer over in-process ranks."""

    def __init__(
        self,
        model_builder,
        n_gpus: int = 1,
        timing_model: DDPTimingModel | None = None,
        seed: int = 0,
    ) -> None:
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        self.model_builder = model_builder
        self.n_gpus = n_gpus
        self.timing_model = timing_model if timing_model is not None else DDPTimingModel()
        self.seed = seed
        self.replicas: list[Sequential] = []

    # -- setup ----------------------------------------------------------------

    def _initialise_replicas(self) -> None:
        """Build one model per rank and broadcast rank 0's weights to all."""
        rngs = spawn_rngs(self.seed, self.n_gpus)
        self.replicas = [self.model_builder(rng=rngs[r]) for r in range(self.n_gpus)]
        # hvd.BroadcastGlobalVariablesCallback(0): everyone starts from rank 0.
        root_weights = self.replicas[0].get_weights()
        for replica in self.replicas[1:]:
            replica.set_weights(root_weights)

    # -- training --------------------------------------------------------------

    def train(
        self,
        train: Dataset,
        epochs: int = 20,
        batch_size: int = 32,
        validation: Dataset | None = None,
        shuffle: bool = True,
    ) -> DistributedRunResult:
        """Run synchronous data-parallel training.

        ``batch_size`` is the *per-rank* batch size (Horovod convention), so
        the effective global batch is ``batch_size * n_gpus``.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self._initialise_replicas()
        shards = [train.shard(r, self.n_gpus) for r in range(self.n_gpus)]
        rng = default_rng(self.seed + 1)

        history = TrainingHistory()
        start_wall = time.perf_counter()
        steps_per_epoch = max(min(len(s) for s in shards) // batch_size, 1)

        for _epoch in range(epochs):
            epoch_start = time.perf_counter()
            epoch_shards = [s.shuffled(default_rng(int(rng.integers(0, 2**31)))) for s in shards] if shuffle else shards
            batch_iters = [s.batches(batch_size) for s in epoch_shards]
            losses: list[float] = []
            for _step in range(steps_per_epoch):
                rank_grads: list[list[np.ndarray]] = []
                step_losses: list[float] = []
                for rank in range(self.n_gpus):
                    try:
                        X_batch, y_batch = next(batch_iters[rank])
                    except StopIteration:
                        break
                    loss, grads = self.replicas[rank].compute_gradients(X_batch, y_batch)
                    rank_grads.append(grads)
                    step_losses.append(loss)
                if len(rank_grads) < self.n_gpus:
                    break
                averaged = ring_allreduce_average(rank_grads)
                for rank in range(self.n_gpus):
                    self.replicas[rank].apply_gradients(averaged[rank])
                losses.append(float(np.mean(step_losses)))

            history.loss.append(float(np.mean(losses)) if losses else 0.0)
            _, train_acc = self.replicas[0].evaluate(train)
            history.accuracy.append(train_acc)
            if validation is not None:
                val_loss, val_acc = self.replicas[0].evaluate(validation)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
            history.epoch_seconds.append(time.perf_counter() - epoch_start)

        wall = time.perf_counter() - start_wall
        return DistributedRunResult(history=history, n_gpus=self.n_gpus, measured_wall_seconds=wall)

    @property
    def model(self) -> Sequential:
        """Rank 0's replica (all replicas are identical after training)."""
        if not self.replicas:
            raise RuntimeError("train() has not been called yet")
        return self.replicas[0]

    # -- Table IV regeneration ---------------------------------------------------

    def scaling_table(
        self,
        single_gpu_total_s: float,
        n_samples: int,
        epochs: int = 20,
        batch_size: int = 32,
        n_parameters: int | None = None,
        gpu_counts: tuple[int, ...] = (1, 2, 4, 6, 8),
    ) -> list[GpuScalingRow]:
        """Predict the multi-GPU scaling table from a single-GPU baseline.

        ``single_gpu_total_s`` is the total training wall-clock on one GPU —
        either measured locally (and optionally rescaled) or the paper's
        280.72 s when regenerating Table IV exactly.
        """
        if single_gpu_total_s <= 0 or n_samples <= 0:
            raise ValueError("single_gpu_total_s and n_samples must be positive")
        if n_parameters is None:
            probe = self.model_builder(rng=default_rng(self.seed))
            n_parameters = probe.n_parameters
        single_epoch_s = single_gpu_total_s / epochs
        steps_per_epoch = max(n_samples // batch_size, 1)

        rows: list[GpuScalingRow] = []
        base_total: float | None = None
        for n in gpu_counts:
            epoch_s = self.timing_model.epoch_seconds(
                single_epoch_s, n, n_parameters, max(steps_per_epoch // n, 1)
            )
            total = epoch_s * epochs
            if base_total is None:
                base_total = total
            rows.append(
                GpuScalingRow(
                    n_gpus=n,
                    total_time_s=total,
                    time_per_epoch_s=epoch_s,
                    samples_per_second=n_samples / epoch_s,
                    speedup=base_total / total,
                )
            )
        return rows
