"""Parallel and distributed substrates.

Replaces the paper's two scaling technologies with purpose-built equivalents:

* :mod:`repro.distributed.mapreduce` — a mini map-reduce engine (the PySpark
  replacement): deterministic partitioning, serial/threaded/process
  executors, and per-stage load/map/reduce timing.
* :mod:`repro.distributed.shm` — shared-memory array transport for the
  process executor: publish-once :class:`SharedArrayStore` segments,
  lightweight descriptors, and read-only worker-side views.
* :mod:`repro.distributed.cluster` — a simulated Google-Cloud-Dataproc-style
  cluster with a calibrated cost model that regenerates the shape of the
  paper's Tables II and V on a single machine.
* :mod:`repro.distributed.allreduce` — the ring all-reduce algorithm Horovod
  uses for gradient averaging, implemented over in-process "ranks".
* :mod:`repro.distributed.ddp` — synchronous data-parallel training
  (the Horovod replacement) with per-rank shards, gradient all-reduce,
  rank-0 weight broadcast, and a DGX-A100-calibrated timing model for the
  multi-GPU speedup experiments (Table IV / Fig. 5).
* :mod:`repro.distributed.speedup` — speedup/efficiency bookkeeping and
  Amdahl/Gustafson reference curves used by the benchmarks.
"""

from repro.distributed.mapreduce import MapReduceEngine, MapReduceResult, partition_indices
from repro.distributed.shm import ArrayDescriptor, SharedArrayStore, attach_view, dumps_shared
from repro.distributed.cluster import ClusterCostModel, ClusterSimulation, ScalingRow
from repro.distributed.allreduce import ring_allreduce, ring_allreduce_average, tree_allreduce
from repro.distributed.ddp import DistributedTrainer, DDPTimingModel, GpuScalingRow
from repro.distributed.speedup import SpeedupTable, amdahl_speedup, gustafson_speedup, parallel_efficiency

__all__ = [
    "MapReduceEngine",
    "MapReduceResult",
    "partition_indices",
    "ArrayDescriptor",
    "SharedArrayStore",
    "attach_view",
    "dumps_shared",
    "ClusterCostModel",
    "ClusterSimulation",
    "ScalingRow",
    "ring_allreduce",
    "ring_allreduce_average",
    "tree_allreduce",
    "DistributedTrainer",
    "DDPTimingModel",
    "GpuScalingRow",
    "SpeedupTable",
    "amdahl_speedup",
    "gustafson_speedup",
    "parallel_efficiency",
]
