"""A miniature map-reduce engine (the PySpark replacement).

The paper parallelises two stages with PySpark: auto-labeling and freeboard
computation.  Both are embarrassingly data-parallel: partition the segment
arrays, apply a map function per partition, and reduce (concatenate /
aggregate) the partition outputs.  This engine reproduces that execution
model in-process:

* deterministic partitioning (:func:`partition_indices`) so results are
  independent of executor count,
* three executors: ``serial`` (reference), ``thread`` (shares memory — fine
  for NumPy-bound maps that release the GIL) and ``process``
  (``multiprocessing`` pool, requires picklable map functions),
* separate *load*, *map* and *reduce* timing, matching the columns of the
  paper's Tables II and V.

Results from every executor are checked against the serial reference in the
test suite — parallel execution never changes the answer, only the time.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.utils.timing import Stopwatch, TimingRecord

T = TypeVar("T")
R = TypeVar("R")

#: Executor kinds supported by the engine (shared with the campaign layer).
EXECUTORS = ("serial", "thread", "process")


def partition_indices(n_items: int, n_partitions: int) -> list[np.ndarray]:
    """Split ``range(n_items)`` into ``n_partitions`` contiguous, balanced slices.

    Partition sizes differ by at most one; empty partitions are possible when
    ``n_partitions > n_items`` (they simply yield empty outputs).
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    return [np.array(part, dtype=np.intp) for part in np.array_split(np.arange(n_items), n_partitions)]


@dataclass
class MapReduceResult:
    """Output of one map-reduce job."""

    value: object
    n_partitions: int
    executor: str
    timing: TimingRecord = field(default_factory=TimingRecord)

    @property
    def load_seconds(self) -> float:
        return self.timing.get("load")

    @property
    def map_seconds(self) -> float:
        return self.timing.get("map")

    @property
    def reduce_seconds(self) -> float:
        return self.timing.get("reduce")

    @property
    def total_seconds(self) -> float:
        return self.timing.total()


class MapReduceEngine:
    """Run load → partition → map → reduce jobs with a pluggable executor.

    Parameters
    ----------
    n_partitions:
        Number of partitions the input is split into (the Spark analogue of
        ``executors * cores`` task slots).
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Worker count for the thread/process executors (defaults to
        ``n_partitions``).
    """

    def __init__(
        self,
        n_partitions: int = 4,
        executor: str = "serial",
        max_workers: int | None = None,
    ) -> None:
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.n_partitions = n_partitions
        self.executor = executor
        self.max_workers = max_workers if max_workers is not None else n_partitions

    # -- execution -------------------------------------------------------------

    def _run_tasks(self, tasks: list[Callable[[], R]]) -> list[R]:
        if self.executor == "serial":
            return [task() for task in tasks]
        if self.executor == "thread":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(lambda f: f(), tasks))
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [f.result() for f in futures]

    def run(
        self,
        load: Callable[[], Sequence[T]],
        map_fn: Callable[[Sequence[T]], R],
        reduce_fn: Callable[[list[R]], object],
    ) -> MapReduceResult:
        """Execute one job: ``reduce_fn(map_fn(partition) for each partition)``.

        ``load`` produces the full input collection (e.g. reads granules from
        disk); it is timed as the *load* stage.  ``map_fn`` receives a list of
        items belonging to one partition; ``reduce_fn`` receives the list of
        per-partition map outputs in partition order.
        """
        timing = TimingRecord()

        sw = Stopwatch().start()
        items = list(load())
        timing.add("load", sw.stop())

        parts = partition_indices(len(items), self.n_partitions)
        partitions = [[items[i] for i in part] for part in parts]

        if self.executor == "process":
            tasks = [_PartitionTask(map_fn, partition) for partition in partitions]
        else:
            tasks = [(lambda p=partition: map_fn(p)) for partition in partitions]
        sw = Stopwatch().start()
        mapped = self._run_tasks(tasks)
        timing.add("map", sw.stop())

        sw = Stopwatch().start()
        value = reduce_fn(list(mapped))
        timing.add("reduce", sw.stop())

        return MapReduceResult(
            value=value,
            n_partitions=self.n_partitions,
            executor=self.executor,
            timing=timing,
        )

    def map_arrays(
        self,
        arrays: dict[str, np.ndarray],
        map_fn: Callable[[dict[str, np.ndarray]], R],
        reduce_fn: Callable[[list[R]], object],
    ) -> MapReduceResult:
        """Map-reduce over a struct-of-arrays input.

        The arrays (all the same length) are partitioned along axis 0; each
        partition is passed to ``map_fn`` as a dictionary of array slices
        (views, no copies in the serial and thread executors).
        """
        lengths = {name: a.shape[0] for name, a in arrays.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"arrays must share their first dimension, got {lengths}")
        n_items = next(iter(lengths.values())) if lengths else 0

        timing = TimingRecord()
        sw = Stopwatch().start()
        parts = partition_indices(n_items, self.n_partitions)
        slices = []
        for part in parts:
            if part.size and np.all(np.diff(part) == 1):
                sl = slice(int(part[0]), int(part[-1]) + 1)
                slices.append({name: a[sl] for name, a in arrays.items()})
            else:
                slices.append({name: a[part] for name, a in arrays.items()})
        timing.add("load", sw.stop())

        if self.executor == "process":
            tasks = [_PartitionTask(map_fn, chunk) for chunk in slices]
        else:
            tasks = [(lambda c=chunk: map_fn(c)) for chunk in slices]
        sw = Stopwatch().start()
        mapped = self._run_tasks(tasks)
        timing.add("map", sw.stop())

        sw = Stopwatch().start()
        value = reduce_fn(list(mapped))
        timing.add("reduce", sw.stop())

        return MapReduceResult(
            value=value,
            n_partitions=self.n_partitions,
            executor=self.executor,
            timing=timing,
        )


class _PartitionTask:
    """Picklable callable binding a map function to one partition.

    Needed by the process executor: lambdas cannot cross process boundaries.
    """

    def __init__(self, map_fn: Callable, partition) -> None:
        self.map_fn = map_fn
        self.partition = partition

    def __call__(self):
        return self.map_fn(self.partition)
