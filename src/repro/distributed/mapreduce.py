"""A miniature map-reduce engine (the PySpark replacement).

The paper parallelises two stages with PySpark: auto-labeling and freeboard
computation.  Both are embarrassingly data-parallel: partition the segment
arrays, apply a map function per partition, and reduce (concatenate /
aggregate) the partition outputs.  This engine reproduces that execution
model in-process:

* deterministic partitioning (:func:`partition_indices`) so results are
  independent of executor count,
* three executors: ``serial`` (reference), ``thread`` (shares memory — fine
  for NumPy-bound maps that release the GIL) and ``process``
  (``multiprocessing`` pool, requires picklable map functions),
* separate *load*, *map* and *reduce* timing, matching the columns of the
  paper's Tables II and V.

Two zero-copy properties of the process executor:

* **Persistent pools.**  The engine keeps one lazily created worker pool
  and reuses it across jobs — a campaign fleet or query batch no longer
  pays pool spawn per fan-out.  ``close()`` (or the context manager, or a
  GC finalizer) shuts it down; a closed engine transparently respawns on
  next use.
* **Shared-memory task payloads.**  With ``use_shm`` (the default), task
  inputs for the process executor travel through
  :mod:`repro.distributed.shm`: large arrays are copied once into
  shared-memory segments and workers reattach them as read-only views,
  instead of pickling every partition's arrays through a pipe.
  ``map_arrays`` publishes each input array exactly once and workers
  slice their partitions out of the shared views.  Results still return
  by value.  All segments are unlinked when the job finishes, even when
  a worker raises.

Results from every executor are checked against the serial reference in the
test suite — parallel execution never changes the answer, only the time.
"""

from __future__ import annotations

import contextvars
import pickle
import threading
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.distributed.shm import ArrayDescriptor, SharedArrayStore, attach_view, dumps_shared
from repro.obs.core import Obs, default_obs
from repro.obs.propagate import TracedTask, WorkerTelemetry, current_context, merge_worker_telemetry
from repro.utils.timing import Stopwatch, TimingRecord

T = TypeVar("T")
R = TypeVar("R")

#: Executor kinds supported by the engine (shared with the campaign layer).
EXECUTORS = ("serial", "thread", "process")


def partition_indices(n_items: int, n_partitions: int) -> list[np.ndarray]:
    """Split ``range(n_items)`` into ``n_partitions`` contiguous, balanced slices.

    Partition sizes differ by at most one; empty partitions are possible when
    ``n_partitions > n_items`` (they simply yield empty outputs).
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    return [np.array(part, dtype=np.intp) for part in np.array_split(np.arange(n_items), n_partitions)]


@dataclass
class MapReduceResult:
    """Output of one map-reduce job."""

    value: object
    n_partitions: int
    executor: str
    timing: TimingRecord = field(default_factory=TimingRecord)

    @property
    def load_seconds(self) -> float:
        return self.timing.get("load")

    @property
    def map_seconds(self) -> float:
        return self.timing.get("map")

    @property
    def reduce_seconds(self) -> float:
        return self.timing.get("reduce")

    @property
    def total_seconds(self) -> float:
        return self.timing.total()


def _shutdown_pool(pool_box: list) -> None:
    """Finalizer target: shut down whatever pool the engine left behind."""
    while pool_box:
        pool = pool_box.pop()
        pool.shutdown(wait=True, cancel_futures=True)


class MapReduceEngine:
    """Run load → partition → map → reduce jobs with a pluggable executor.

    Parameters
    ----------
    n_partitions:
        Number of partitions the input is split into (the Spark analogue of
        ``executors * cores`` task slots).
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Worker count for the thread/process executors (defaults to
        ``n_partitions``).
    use_shm:
        Route process-executor task payloads through shared memory
        (:mod:`repro.distributed.shm`) instead of pickling array contents.
        Ignored by the serial and thread executors, which already share
        the driver's memory.
    shm_min_bytes:
        Arrays smaller than this are pickled by value even with ``use_shm``
        (descriptor overhead beats copying only past a threshold).
    obs:
        Telemetry handle; ``None`` resolves the process default.  Jobs emit
        ``mapreduce.load``/``map``/``reduce`` spans plus one
        ``mapreduce.task`` span per partition — thread tasks open real
        child spans inside a copied driver context, process tasks run a
        worker-side tracer whose finished subtree (and metric deltas) ship
        back with the result and graft under ``mapreduce.map`` — and feed
        the ``mapreduce_*`` counters: jobs, pool spawns, shm publish/attach
        bytes.

    The engine keeps its worker pool alive between jobs; call :meth:`close`
    (or use the engine as a context manager) to release the workers.  A
    closed engine may be reused — the pool respawns on the next job.
    """

    def __init__(
        self,
        n_partitions: int = 4,
        executor: str = "serial",
        max_workers: int | None = None,
        use_shm: bool = True,
        shm_min_bytes: int | None = None,
        obs: Obs | None = None,
    ) -> None:
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.n_partitions = n_partitions
        self.executor = executor
        self.max_workers = max_workers if max_workers is not None else n_partitions
        self.use_shm = bool(use_shm)
        self.shm_min_bytes = shm_min_bytes
        self.obs = obs if obs is not None else default_obs()
        self._pool_box: list[Executor] = []
        self._pool_workers = 0
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool_box)

    # -- pool lifecycle --------------------------------------------------------

    def _pool(self, n_workers: int) -> Executor:
        """The persistent worker pool, (re)created lazily.

        A pool sized below the current job's worker demand is replaced —
        callers cap ``n_workers`` by task count, so demand only grows up to
        ``max_workers`` and the pool settles after the first full-width job.
        """
        if self._pool_box and self._pool_workers >= n_workers:
            return self._pool_box[0]
        self._shutdown()
        if self.executor == "thread":
            pool: Executor = ThreadPoolExecutor(max_workers=n_workers)
        else:
            pool = ProcessPoolExecutor(max_workers=n_workers)
        self._pool_box.append(pool)
        self._pool_workers = n_workers
        # Every creation counts: the first spawn, a widening respawn, and a
        # respawn after close()/BrokenProcessPool all show up in the series.
        self.obs.counter(
            "mapreduce_pool_spawns_total", executor=self.executor
        ).inc()
        return pool

    def _shutdown(self) -> None:
        while self._pool_box:
            pool = self._pool_box.pop()
            pool.shutdown(wait=True, cancel_futures=True)
        self._pool_workers = 0

    def close(self) -> None:
        """Shut down the worker pool (idempotent; engine reusable afterwards)."""
        self._shutdown()

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------------

    def _traced_tasks(self, tasks: list[Callable[[], R]]) -> list[TracedTask]:
        """Wrap tasks for the process pool with the driver's trace context."""
        context = current_context(self.obs.tracer)
        return [
            TracedTask(
                task,
                context=context,
                attributes={"index": index, "executor": self.executor},
            )
            for index, task in enumerate(tasks)
        ]

    def _merge_worker_results(
        self, results: list[tuple[R, WorkerTelemetry]]
    ) -> list[R]:
        """Unwrap ``(value, telemetry)`` pairs, grafting each worker's spans
        and metric deltas into the driver's tracer and registry."""
        out: list[R] = []
        for value, telemetry in results:
            merge_worker_telemetry(self.obs, telemetry)
            out.append(value)
        return out

    def _run_tasks(self, tasks: list[Callable[[], R]]) -> list[R]:
        """Run ready-made thunks on the configured executor.

        Single-task jobs run inline whatever the executor: spinning up (or
        even dispatching to) a pool for one task only adds latency, and the
        campaign/serve layers rely on this to keep single-item fan-outs
        serial.

        Inline tasks get real nested spans (they share the driver's trace
        context).  Thread-pool tasks run inside a *copy* of the driver's
        context (:class:`_ContextTask`), so their spans are true children
        of the driver's open ``mapreduce.map`` span on the shared tracer.
        Process-pool tasks run under a worker-local tracer rooted at the
        shipped :class:`~repro.obs.propagate.TraceContext` and come back as
        ``(value, WorkerTelemetry)`` pairs the driver grafts into its own
        tree (real subtrees, not retroactive duration blobs).
        """
        obs = self.obs
        if self.executor == "serial" or len(tasks) <= 1:
            if not obs.tracer.enabled:
                return [task() for task in tasks]
            out = []
            for index, task in enumerate(tasks):
                with obs.span("mapreduce.task", index=index, executor="inline"):
                    out.append(task())
            return out
        n_workers = min(self.max_workers, len(tasks))
        timed = obs.tracer.enabled
        if self.executor == "thread":
            jobs: list[Callable] = (
                [_ContextTask(t, obs, i) for i, t in enumerate(tasks)]
                if timed
                else list(tasks)
            )
            pool = self._pool(n_workers)
            return list(pool.map(lambda f: f(), jobs))
        jobs = self._traced_tasks(tasks) if timed else list(tasks)
        pool = self._pool(n_workers)
        store = SharedArrayStore() if self.use_shm else None
        try:
            if store is None:
                payloads = [pickle.dumps(t, protocol=pickle.HIGHEST_PROTOCOL) for t in jobs]
            else:
                kwargs = {} if self.shm_min_bytes is None else {"min_bytes": self.shm_min_bytes}
                payloads = [dumps_shared(t, store, **kwargs) for t in jobs]
                self._count_shm(store, len(jobs))
            futures = [pool.submit(_call_pickled, payload) for payload in payloads]
            results = [f.result() for f in futures]
            return self._merge_worker_results(results) if timed else results
        except BrokenProcessPool:
            # A worker died (OOM, signal): the pool is unusable.  Drop it so
            # the next job gets a fresh one, and let the caller see the error.
            self._shutdown()
            raise
        finally:
            # Segments outlive every worker attach (results are in, or the
            # exception already fired) — unlink them now, crash or not.
            if store is not None:
                store.close()

    def _count_shm(self, store: SharedArrayStore, n_attachers: int) -> None:
        """Account one job's shared-memory traffic: published once, attached
        (as views — no copies; the driver-side estimate assumes every task
        touches every segment) by each worker task."""
        published = store.nbytes
        if not published:
            return
        self.obs.counter("mapreduce_shm_published_bytes_total").inc(published)
        self.obs.counter("mapreduce_shm_attach_bytes_total").inc(
            published * n_attachers
        )

    def _map_stage(self, tasks: list[Callable[[], R]], timing: TimingRecord) -> list[R]:
        sw = Stopwatch().start()
        try:
            mapped = self._run_tasks(tasks)
        finally:
            timing.add("map", sw.stop())
        return mapped

    def run(
        self,
        load: Callable[[], Sequence[T]],
        map_fn: Callable[[Sequence[T]], R],
        reduce_fn: Callable[[list[R]], object],
        n_partitions: int | None = None,
    ) -> MapReduceResult:
        """Execute one job: ``reduce_fn(map_fn(partition) for each partition)``.

        ``load`` produces the full input collection (e.g. reads granules from
        disk); it is timed as the *load* stage.  ``map_fn`` receives a list of
        items belonging to one partition; ``reduce_fn`` receives the list of
        per-partition map outputs in partition order.  ``n_partitions``
        overrides the engine default for this job only, so one persistent
        engine can serve fan-outs of different widths.
        """
        width = self.n_partitions if n_partitions is None else n_partitions
        timing = TimingRecord()
        obs = self.obs
        obs.counter("mapreduce_jobs_total", executor=self.executor).inc()

        with obs.span("mapreduce.load"):
            sw = Stopwatch().start()
            items = list(load())
            timing.add("load", sw.stop())

        parts = partition_indices(len(items), width)
        partitions = [[items[i] for i in part] for part in parts]

        if self.executor == "process":
            tasks = [_PartitionTask(map_fn, partition) for partition in partitions]
        else:
            tasks = [(lambda p=partition: map_fn(p)) for partition in partitions]
        with obs.span("mapreduce.map", n_partitions=width, executor=self.executor):
            mapped = self._map_stage(tasks, timing)

        with obs.span("mapreduce.reduce"):
            sw = Stopwatch().start()
            value = reduce_fn(list(mapped))
            timing.add("reduce", sw.stop())

        return MapReduceResult(
            value=value,
            n_partitions=width,
            executor=self.executor,
            timing=timing,
        )

    def map_arrays(
        self,
        arrays: dict[str, np.ndarray],
        map_fn: Callable[[dict[str, np.ndarray]], R],
        reduce_fn: Callable[[list[R]], object],
        n_partitions: int | None = None,
    ) -> MapReduceResult:
        """Map-reduce over a struct-of-arrays input.

        The arrays (all the same length) are partitioned along axis 0; each
        partition is passed to ``map_fn`` as a dictionary of array slices.
        The serial and thread executors pass views of the caller's arrays.
        The process executor with ``use_shm`` publishes every array **once**
        into shared memory and ships workers ``(lo, hi)`` row ranges — each
        worker slices its partition out of the attached views, so the input
        crosses the process boundary zero times per partition.
        """
        lengths = {name: a.shape[0] for name, a in arrays.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"arrays must share their first dimension, got {lengths}")
        n_items = next(iter(lengths.values())) if lengths else 0
        width = self.n_partitions if n_partitions is None else n_partitions

        obs = self.obs
        obs.counter("mapreduce_jobs_total", executor=self.executor).inc()
        timing = TimingRecord()
        sw = Stopwatch().start()
        parts = partition_indices(n_items, width)
        timing.add("load", sw.stop())

        shared = (
            self.executor == "process"
            and self.use_shm
            and len(parts) > 1
            and arrays
            and any(np.asarray(a).nbytes for a in arrays.values())
        )
        if shared:
            with obs.span(
                "mapreduce.map", n_partitions=width, executor=self.executor, shm=True
            ):
                mapped = self._map_arrays_shared(arrays, map_fn, parts, timing)
        else:
            slices = []
            for part in parts:
                if part.size and np.all(np.diff(part) == 1):
                    sl = slice(int(part[0]), int(part[-1]) + 1)
                    slices.append({name: a[sl] for name, a in arrays.items()})
                else:
                    slices.append({name: a[part] for name, a in arrays.items()})
            if self.executor == "process":
                tasks = [_PartitionTask(map_fn, chunk) for chunk in slices]
            else:
                tasks = [(lambda c=chunk: map_fn(c)) for chunk in slices]
            with obs.span(
                "mapreduce.map", n_partitions=width, executor=self.executor
            ):
                mapped = self._map_stage(tasks, timing)

        with obs.span("mapreduce.reduce"):
            sw = Stopwatch().start()
            value = reduce_fn(list(mapped))
            timing.add("reduce", sw.stop())

        return MapReduceResult(
            value=value,
            n_partitions=width,
            executor=self.executor,
            timing=timing,
        )

    def _map_arrays_shared(
        self,
        arrays: dict[str, np.ndarray],
        map_fn: Callable[[dict[str, np.ndarray]], R],
        parts: list[np.ndarray],
        timing: TimingRecord,
    ) -> list[R]:
        """Publish-once shared-memory path for :meth:`map_arrays`."""
        contiguous = {name: np.ascontiguousarray(a) for name, a in arrays.items()}
        timed = self.obs.tracer.enabled
        sw = Stopwatch().start()
        try:
            with SharedArrayStore() as store:
                descriptors = store.publish(contiguous)
                tasks: list[Callable] = []
                for part in parts:
                    lo = int(part[0]) if part.size else 0
                    hi = int(part[-1]) + 1 if part.size else 0
                    tasks.append(_ShmSliceTask(map_fn, descriptors, lo, hi))
                if timed:
                    tasks = list(self._traced_tasks(tasks))
                self._count_shm(store, len(tasks))
                pool = self._pool(min(self.max_workers, len(tasks)))
                try:
                    futures = [
                        pool.submit(_call_pickled, pickle.dumps(t, protocol=pickle.HIGHEST_PROTOCOL))
                        for t in tasks
                    ]
                    results = [f.result() for f in futures]
                    return self._merge_worker_results(results) if timed else results
                except BrokenProcessPool:
                    self._shutdown()
                    raise
        finally:
            timing.add("map", sw.stop())


def _call_pickled(payload: bytes):
    """Worker entry point: decode a pickled thunk and run it.

    Decoding in the worker (rather than letting the pool's own pickler do
    it) is what lets the driver pre-encode tasks with the shared-memory
    pickler — array leaves arrive as descriptors and materialise as
    read-only views here.
    """
    return pickle.loads(payload)()


class _ContextTask:
    """Thread-pool wrapper running a task inside the driver's trace context.

    Threads do not inherit ``contextvars``, so each task captures a *copy*
    of the driver's context at submission (while ``mapreduce.map`` is the
    current span) and runs inside it — its ``mapreduce.task`` span is a
    true child on the shared, thread-safe tracer, measured on the driver's
    clock.  One copy per task: a ``Context`` object cannot be entered
    concurrently.
    """

    def __init__(self, task: Callable, obs: Obs, index: int) -> None:
        self.task = task
        self.obs = obs
        self.index = index
        self._context = contextvars.copy_context()

    def __call__(self):
        return self._context.run(self._run)

    def _run(self):
        with self.obs.span(
            "mapreduce.task",
            index=self.index,
            executor="thread",
            worker=threading.current_thread().name,
        ):
            return self.task()


class _PartitionTask:
    """Picklable callable binding a map function to one partition.

    Needed by the process executor: lambdas cannot cross process boundaries.
    """

    def __init__(self, map_fn: Callable, partition) -> None:
        self.map_fn = map_fn
        self.partition = partition

    def __call__(self):
        return self.map_fn(self.partition)


class _ShmSliceTask:
    """Picklable task slicing one row range out of published shared arrays.

    Pickles as descriptors + two ints regardless of input size; the worker
    attaches the shared views and hands ``map_fn`` read-only slices of the
    exact rows the driver would have copied.
    """

    def __init__(
        self,
        map_fn: Callable,
        descriptors: dict[str, ArrayDescriptor],
        lo: int,
        hi: int,
    ) -> None:
        self.map_fn = map_fn
        self.descriptors = descriptors
        self.lo = lo
        self.hi = hi

    def __call__(self):
        chunk = {}
        for name, desc in self.descriptors.items():
            if desc.nbytes == 0:
                arr = np.empty(desc.shape, dtype=np.dtype(desc.dtype))
                arr.flags.writeable = False
                chunk[name] = arr[self.lo : self.hi]
            else:
                chunk[name] = attach_view(desc)[self.lo : self.hi]
        return self.map_fn(chunk)
