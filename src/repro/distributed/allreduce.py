"""Ring all-reduce (the collective at the heart of Horovod).

Horovod averages gradients across GPUs with the bandwidth-optimal ring
all-reduce of Patarasuk & Yuan (2009): each of ``N`` ranks splits its buffer
into ``N`` chunks, then performs ``N-1`` *reduce-scatter* steps (each rank
sends one chunk to its successor and accumulates the chunk it receives)
followed by ``N-1`` *all-gather* steps that circulate the fully reduced
chunks.  Every rank ends with the identical elementwise sum while each link
carries only ``2 (N-1)/N`` of the buffer.

The implementation below runs the actual algorithm over in-process ranks
(lists of NumPy buffers), faithfully following the chunked send/receive
schedule, and is verified against a direct ``sum`` in the test suite.  The
distributed trainer uses :func:`ring_allreduce_average` to average per-rank
gradient lists; its communication *cost* on real hardware is modelled
separately in :class:`repro.distributed.ddp.DDPTimingModel`.
"""

from __future__ import annotations

import numpy as np


def _validate_rank_buffers(rank_buffers: list[np.ndarray]) -> list[np.ndarray]:
    if not rank_buffers:
        raise ValueError("need at least one rank")
    shapes = {b.shape for b in rank_buffers}
    if len(shapes) != 1:
        raise ValueError(f"all ranks must hold buffers of the same shape, got {shapes}")
    return [np.array(b, dtype=float, copy=True) for b in rank_buffers]


def ring_allreduce(rank_buffers: list[np.ndarray]) -> list[np.ndarray]:
    """Elementwise sum across ranks using the ring algorithm.

    Parameters
    ----------
    rank_buffers:
        One array per rank, all the same shape.

    Returns
    -------
    list of numpy.ndarray
        One array per rank; every entry equals the elementwise sum of the
        inputs (each rank gets its own copy, as on real hardware).
    """
    buffers = _validate_rank_buffers(rank_buffers)
    n = len(buffers)
    if n == 1:
        return buffers

    original_shape = buffers[0].shape
    flat = [b.reshape(-1) for b in buffers]
    length = flat[0].shape[0]
    # Chunk boundaries: n chunks, sizes differing by at most one element.
    edges = np.linspace(0, length, n + 1).astype(np.intp)

    def chunk(rank: int, idx: int) -> np.ndarray:
        return flat[rank][edges[idx]:edges[idx + 1]]

    # Phase 1: reduce-scatter.  After step s, rank r holds the partial sum of
    # chunk (r - s) accumulated from s+1 ranks.
    for step in range(n - 1):
        # All sends in a step are logically simultaneous; stage the outgoing
        # chunks first so a rank never forwards data it received this step.
        staged = []
        for rank in range(n):
            send_idx = (rank - step) % n
            staged.append((rank, send_idx, chunk(rank, send_idx).copy()))
        for rank, send_idx, payload in staged:
            dest = (rank + 1) % n
            chunk(dest, send_idx)[...] += payload

    # Phase 2: all-gather.  The fully reduced chunk j lives on rank (j + n - 1) % n.
    for step in range(n - 1):
        staged = []
        for rank in range(n):
            send_idx = (rank + 1 - step) % n
            staged.append((rank, send_idx, chunk(rank, send_idx).copy()))
        for rank, send_idx, payload in staged:
            dest = (rank + 1) % n
            chunk(dest, send_idx)[...] = payload

    return [f.reshape(original_shape) for f in flat]


def ring_allreduce_average(rank_gradients: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
    """Average lists of gradient arrays across ranks with the ring algorithm.

    ``rank_gradients[r][k]`` is rank ``r``'s gradient for parameter ``k``.
    Each parameter's arrays are all-reduced independently and divided by the
    rank count — exactly what ``hvd.DistributedOptimizer`` does per tensor.
    """
    if not rank_gradients:
        raise ValueError("need at least one rank")
    n_ranks = len(rank_gradients)
    n_params = len(rank_gradients[0])
    for r, grads in enumerate(rank_gradients):
        if len(grads) != n_params:
            raise ValueError(f"rank {r} has {len(grads)} gradients, expected {n_params}")

    averaged: list[list[np.ndarray]] = [[None] * n_params for _ in range(n_ranks)]  # type: ignore[list-item]
    for k in range(n_params):
        summed = ring_allreduce([rank_gradients[r][k] for r in range(n_ranks)])
        for r in range(n_ranks):
            averaged[r][k] = summed[r] / n_ranks
    return averaged


def tree_allreduce(rank_buffers: list[np.ndarray]) -> list[np.ndarray]:
    """Binary-tree all-reduce (reference alternative to the ring).

    Used by the ablation benchmark comparing collective algorithms: a tree
    reduce-then-broadcast moves the whole buffer ``log2(N)`` times per rank
    instead of the ring's ``2 (N-1)/N`` fraction, so it is latency-better but
    bandwidth-worse.  Results are identical.
    """
    buffers = _validate_rank_buffers(rank_buffers)
    n = len(buffers)
    if n == 1:
        return buffers

    # Reduce up the tree: at distance d, rank r receives from rank r + d.
    distance = 1
    while distance < n:
        for rank in range(0, n, 2 * distance):
            partner = rank + distance
            if partner < n:
                buffers[rank] = buffers[rank] + buffers[partner]
        distance *= 2
    # Broadcast the root's total back to every rank.
    total = buffers[0]
    return [total.copy() for _ in range(n)]
