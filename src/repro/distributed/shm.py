"""Shared-memory array transport for the process executor.

The process executor used to pay a full pickle of every partition's
photon/segment arrays per task: the driver serialises the arrays into a
pipe, the worker deserialises a private copy.  This module replaces that
payload with POSIX shared memory (``multiprocessing.shared_memory``):

* :class:`SharedArrayStore` (driver side) copies arrays **once** into
  named shared-memory segments and hands out :class:`ArrayDescriptor`
  records — ``(segment, dtype, shape, offset)``, a few dozen bytes each;
* :func:`attach_view` (worker side) reattaches a descriptor as a
  **read-only** NumPy view onto the same physical pages — no copy, no
  deserialisation, amortised over a small per-process attachment cache;
* :func:`dumps_shared` pickles an arbitrary task payload while routing
  every large ``np.ndarray`` it contains through the store, so nested
  dataclasses (curated granules, classifiers) get the zero-copy path
  without the engine knowing their shape.

Lifetime contract: the driver owns every segment it creates.  The store
unlinks all of them on :meth:`~SharedArrayStore.close` (idempotent, also
a context manager) and a ``weakref.finalize`` backstop unlinks on garbage
collection — so no ``/dev/shm`` segment outlives the job even when a
worker crashes mid-task.  Workers never unlink: they attach with
resource-tracker registration suppressed, because a tracked attachment
would double-unlink segments the driver already owns.
"""

from __future__ import annotations

import io
import pickle
import uuid
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Mapping

import numpy as np

__all__ = [
    "ArrayDescriptor",
    "SHM_PREFIX",
    "SharedArrayStore",
    "attach_view",
    "dumps_shared",
]

#: Name prefix of every segment this module creates — the leak tests (and a
#: worried operator) can enumerate ``/dev/shm/repro_shm_*``.
SHM_PREFIX = "repro_shm_"

#: Arrays below this size are pickled by value: a descriptor round trip plus
#: a segment per tiny array costs more than copying the bytes.
DEFAULT_MIN_SHARED_BYTES = 1 << 16

#: Per-variable alignment inside a multi-array segment (cache-line friendly).
_ALIGN = 64

#: Worker-side attachment cache capacity, in segments.  Small on purpose: an
#: attachment pins the segment's pages mapped in the worker, and fan-out jobs
#: reuse at most a handful of segments at a time.
_ATTACH_CAPACITY = 8


@dataclass(frozen=True)
class ArrayDescriptor:
    """A picklable address of one array inside a shared-memory segment."""

    segment: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _shareable(array: np.ndarray) -> bool:
    """Only plain fixed-size numeric/flexible dtypes cross the segment."""
    return (
        type(array) is np.ndarray
        and array.dtype.names is None
        and not array.dtype.hasobject
        and array.nbytes > 0
    )


def _release_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Close + unlink every owned segment (idempotent, crash-safe backstop)."""
    while segments:
        segment = segments.pop()
        try:
            segment.close()
        except BufferError:  # a live driver-side view; unlink still works
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


class SharedArrayStore:
    """Driver-side owner of shared-memory segments for one fan-out job.

    Use as a context manager around the job: publish/put while submitting,
    and the segments are guaranteed unlinked when the block exits — even
    when a worker raised and the exception is propagating.  ``close`` is
    idempotent; a forgotten store is cleaned up by its finalizer.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._finalizer = weakref.finalize(self, _release_segments, self._segments)

    # -- publishing --------------------------------------------------------

    def _allocate(self, nbytes: int) -> shared_memory.SharedMemory:
        name = f"{SHM_PREFIX}{uuid.uuid4().hex}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        self._segments.append(segment)
        return segment

    def put(self, array: np.ndarray) -> ArrayDescriptor:
        """Copy one array into its own segment; return its descriptor."""
        arr = np.ascontiguousarray(array)
        if not _shareable(np.asarray(arr)):
            raise ValueError(
                "only non-empty plain numeric arrays can be shared; got "
                f"dtype={arr.dtype!r} nbytes={arr.nbytes}"
            )
        segment = self._allocate(arr.nbytes)
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)[...] = arr
        return ArrayDescriptor(
            segment=segment.name, dtype=arr.dtype.str, shape=arr.shape, offset=0
        )

    def publish(self, arrays: Mapping[str, np.ndarray]) -> dict[str, ArrayDescriptor]:
        """Copy a struct-of-arrays payload into **one** segment.

        Every array is copied exactly once, whatever the partition count:
        workers slice their partitions out of the attached views.  Arrays
        are laid out back to back at :data:`_ALIGN`-byte offsets; empty
        arrays get descriptors at offset 0 (they address no bytes).
        """
        items = [(name, np.ascontiguousarray(a)) for name, a in arrays.items()]
        offsets: dict[str, int] = {}
        cursor = 0
        for name, arr in items:
            if arr.nbytes == 0:
                offsets[name] = 0
                continue
            if not _shareable(np.asarray(arr)):
                raise ValueError(
                    f"array {name!r} cannot be shared (dtype {arr.dtype!r})"
                )
            cursor = -(-cursor // _ALIGN) * _ALIGN
            offsets[name] = cursor
            cursor += arr.nbytes
        if cursor == 0:
            raise ValueError("cannot publish an all-empty payload to shared memory")
        segment = self._allocate(cursor)
        descriptors: dict[str, ArrayDescriptor] = {}
        for name, arr in items:
            offset = offsets[name]
            if arr.nbytes:
                np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=offset
                )[...] = arr
            descriptors[name] = ArrayDescriptor(
                segment=segment.name, dtype=arr.dtype.str, shape=arr.shape, offset=offset
            )
        return descriptors

    # -- lifetime ----------------------------------------------------------

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(segment.name for segment in self._segments)

    @property
    def nbytes(self) -> int:
        """Total bytes held across this store's live segments."""
        return sum(segment.size for segment in self._segments)

    def close(self) -> None:
        """Unlink every segment (idempotent; also runs via the finalizer)."""
        self._finalizer()  # weakref.finalize is call-once: close + detach

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker side: reattach descriptors as views
# ---------------------------------------------------------------------------

#: Per-process attachment cache: segment name -> (open SharedMemory, weakrefs
#: of the views handed out on it).  Bounded LRU, but an entry is only evicted
#: once every view on it is dead: closing a mapping under a live view does
#: *not* reliably raise (NumPy releases the memoryview's buffer export after
#: capturing the pointer), it silently dangles — and the next mmap can reuse
#: the address, corrupting reads.  Liveness is the only safe eviction signal;
#: slices and derived views keep their base chain (and hence the weakref
#: target) alive, so "all weakrefs dead" implies no live reader.
_ATTACHED: "OrderedDict[str, tuple[shared_memory.SharedMemory, list[weakref.ref]]]" = OrderedDict()


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    The driver owns (and deterministically unlinks) every segment; a tracked
    worker-side attachment would let the resource tracker unlink it a second
    time at worker exit and log spurious leak warnings.  Python 3.13 grew
    ``track=False`` for exactly this; earlier versions need the unregister
    workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        # Suppress registration instead of unregistering afterwards: under
        # fork the workers share the driver's tracker process, and a
        # register/unregister pair from a worker would strip the *driver's*
        # registration from the tracker's set, breaking its own unlink.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _attach_segment(name: str) -> tuple[shared_memory.SharedMemory, list]:
    entry = _ATTACHED.get(name)
    if entry is not None:
        _ATTACHED.move_to_end(name)
        return entry
    if len(_ATTACHED) >= _ATTACH_CAPACITY:
        # Evict LRU-first, but only entries none of whose views survive.
        for old_name in list(_ATTACHED):
            old_segment, refs = _ATTACHED[old_name]
            if any(ref() is not None for ref in refs):
                continue
            del _ATTACHED[old_name]
            try:
                old_segment.close()
            except BufferError:
                pass
            if len(_ATTACHED) < _ATTACH_CAPACITY:
                break
    entry = (_open_untracked(name), [])
    _ATTACHED[name] = entry
    return entry


def attach_view(descriptor: ArrayDescriptor) -> np.ndarray:
    """Reattach one descriptor as a read-only NumPy view (zero-copy).

    The view aliases the driver's pages: mutating it would corrupt every
    other worker's input, so it comes back non-writable — map functions
    needing scratch space copy explicitly, which is the honest cost.
    """
    segment, refs = _attach_segment(descriptor.segment)
    view = np.ndarray(
        tuple(descriptor.shape),
        dtype=np.dtype(descriptor.dtype),
        buffer=segment.buf,
        offset=descriptor.offset,
    )
    view.flags.writeable = False
    refs[:] = [ref for ref in refs if ref() is not None]
    refs.append(weakref.ref(view))
    return view


# ---------------------------------------------------------------------------
# Transparent payload rewriting
# ---------------------------------------------------------------------------


class _SharedArrayPickler(pickle.Pickler):
    """A pickler that reroutes large plain ndarrays through shared memory.

    ``reducer_override`` is consulted for every non-atomic object in the
    graph, so arrays nested arbitrarily deep (inside dataclasses, dicts,
    tuples) are intercepted without the caller declaring them.  Each is
    copied once into ``store`` and pickled as ``attach_view(descriptor)``;
    everything else pickles normally.
    """

    def __init__(self, file: io.BytesIO, store: SharedArrayStore, min_bytes: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store
        self._min_bytes = min_bytes

    def reducer_override(self, obj: Any):
        if (
            isinstance(obj, np.ndarray)
            and _shareable(obj)
            and obj.nbytes >= self._min_bytes
        ):
            return (attach_view, (self._store.put(obj),))
        return NotImplemented


def dumps_shared(
    obj: Any,
    store: SharedArrayStore,
    min_bytes: int = DEFAULT_MIN_SHARED_BYTES,
) -> bytes:
    """Pickle ``obj`` with its large arrays published into ``store``.

    The returned bytes are loadable with plain ``pickle.loads`` in any
    process that can open the store's segments — loading materialises the
    published arrays as read-only shared views via :func:`attach_view`.
    """
    buffer = io.BytesIO()
    _SharedArrayPickler(buffer, store, max(int(min_bytes), 1)).dump(obj)
    return buffer.getvalue()
