"""Simulated Dataproc-style cluster with a calibrated scaling cost model.

The paper measures its PySpark stages on a four-node Google Cloud Dataproc
cluster, sweeping 1-4 executors with 1-4 cores each (Tables II and V).  This
container has a single CPU, so those wall-clock numbers cannot be measured
directly; instead the cluster is *simulated*:

1. the real map-reduce job is executed once with the serial executor of
   :class:`~repro.distributed.mapreduce.MapReduceEngine` — this yields a
   correct result and measured single-slot load/map/reduce baselines;
2. a :class:`ClusterCostModel` extrapolates each ``(executors, cores)``
   configuration from those baselines.

The cost model is the standard shared-nothing map-reduce model:

* *load* is dominated by reading and deserialising partitions in parallel
  but keeps a small serial fraction (driver-side listing/scheduling), so it
  follows Amdahl's law with ``load_serial_fraction``;
* *map* is a tiny constant scheduling overhead (the paper's map column is
  0.2-0.4 s regardless of configuration);
* *reduce* (where the per-record work lives in the paper's jobs) is almost
  perfectly parallel across ``executors * cores`` slots, with a small
  additional per-executor benefit (separate nodes bring their own memory
  bandwidth) captured by ``executor_bandwidth_benefit``.

The defaults are calibrated to the paper's Table II: they reproduce the 9.0x
load and 16.25x reduce speedups at 4 executors x 4 cores, and the
corresponding 8.54x / 15.68x of Table V when the Table V baselines are used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import ClusterConfig, DEFAULT_CLUSTER
from repro.distributed.mapreduce import MapReduceEngine, MapReduceResult


@dataclass(frozen=True)
class ClusterCostModel:
    """Analytic cost model for one map-reduce stage on the simulated cluster."""

    load_serial_fraction: float = 0.052
    reduce_serial_fraction: float = 0.0
    executor_bandwidth_benefit: float = 0.02
    map_overhead_s: float = 0.3
    min_time_s: float = 1e-3

    def __post_init__(self) -> None:
        for name in ("load_serial_fraction", "reduce_serial_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.executor_bandwidth_benefit < 0:
            raise ValueError("executor_bandwidth_benefit must be non-negative")
        if self.map_overhead_s < 0:
            raise ValueError("map_overhead_s must be non-negative")

    def load_time(self, baseline_s: float, executors: int, cores: int) -> float:
        """Predicted load time for a configuration, given the 1x1 baseline."""
        self._check(executors, cores)
        slots = executors * cores
        serial = self.load_serial_fraction * baseline_s
        parallel = (1.0 - self.load_serial_fraction) * baseline_s / slots
        return max(serial + parallel, self.min_time_s)

    def map_time(self, executors: int, cores: int) -> float:
        """Predicted map (scheduling) time — effectively constant."""
        self._check(executors, cores)
        return self.map_overhead_s

    def reduce_time(self, baseline_s: float, executors: int, cores: int) -> float:
        """Predicted reduce time for a configuration, given the 1x1 baseline."""
        self._check(executors, cores)
        slots = executors * cores
        bandwidth = 1.0 + self.executor_bandwidth_benefit * (executors - 1)
        serial = self.reduce_serial_fraction * baseline_s
        parallel = (1.0 - self.reduce_serial_fraction) * baseline_s / (slots * bandwidth)
        return max(serial + parallel, self.min_time_s)

    @staticmethod
    def _check(executors: int, cores: int) -> None:
        if executors <= 0 or cores <= 0:
            raise ValueError("executors and cores must be positive")


@dataclass(frozen=True)
class ScalingRow:
    """One row of a Table II / Table V style scalability table."""

    executors: int
    cores: int
    load_time_s: float
    map_time_s: float
    reduce_time_s: float
    speedup_load: float
    speedup_reduce: float

    def as_dict(self) -> dict[str, float | int]:
        return {
            "Executors": self.executors,
            "Cores": self.cores,
            "Load Time (s)": round(self.load_time_s, 1),
            "Map Time (s)": round(self.map_time_s, 1),
            "Reduce Time (s)": round(self.reduce_time_s, 1),
            "Speedup Load": round(self.speedup_load, 2),
            "Speedup Reduce": round(self.speedup_reduce, 2),
        }


class ClusterSimulation:
    """Run a job once for correctness, then predict the scaling table."""

    def __init__(
        self,
        cost_model: ClusterCostModel | None = None,
        cluster: ClusterConfig = DEFAULT_CLUSTER,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.cluster = cluster

    def run_baseline(
        self,
        load: Callable[[], Sequence],
        map_fn: Callable,
        reduce_fn: Callable,
    ) -> MapReduceResult:
        """Execute the job serially (single slot) and return the real result."""
        engine = MapReduceEngine(n_partitions=1, executor="serial")
        return engine.run(load, map_fn, reduce_fn)

    def scaling_table(
        self,
        baseline_load_s: float,
        baseline_reduce_s: float,
        executor_grid: Sequence[int] | None = None,
        cores_grid: Sequence[int] | None = None,
    ) -> list[ScalingRow]:
        """Predicted scaling table over the executor/core grid.

        ``baseline_load_s`` and ``baseline_reduce_s`` are the single-slot
        times — either measured by :meth:`run_baseline` on the synthetic
        workload, or the paper's own 1x1 values when regenerating the exact
        tables.
        """
        if baseline_load_s <= 0 or baseline_reduce_s <= 0:
            raise ValueError("baseline times must be positive")
        executors = tuple(executor_grid) if executor_grid is not None else self.cluster.executor_grid
        cores = tuple(cores_grid) if cores_grid is not None else self.cluster.cores_grid

        ref_load = self.cost_model.load_time(baseline_load_s, executors[0], cores[0])
        ref_reduce = self.cost_model.reduce_time(baseline_reduce_s, executors[0], cores[0])

        rows: list[ScalingRow] = []
        for e in executors:
            for c in cores:
                load_t = self.cost_model.load_time(baseline_load_s, e, c)
                map_t = self.cost_model.map_time(e, c)
                reduce_t = self.cost_model.reduce_time(baseline_reduce_s, e, c)
                rows.append(
                    ScalingRow(
                        executors=e,
                        cores=c,
                        load_time_s=load_t,
                        map_time_s=map_t,
                        reduce_time_s=reduce_t,
                        speedup_load=ref_load / load_t,
                        speedup_reduce=ref_reduce / reduce_t,
                    )
                )
        return rows

    def run_and_scale(
        self,
        load: Callable[[], Sequence],
        map_fn: Callable,
        reduce_fn: Callable,
        paper_baseline: tuple[float, float] | None = None,
    ) -> tuple[MapReduceResult, list[ScalingRow]]:
        """Convenience: run the job serially, then build the scaling table.

        When ``paper_baseline`` (load_s, reduce_s) is given, the table is
        scaled to the paper's single-slot baselines instead of the measured
        ones, so the regenerated table is directly comparable to Table II/V.
        """
        result = self.run_baseline(load, map_fn, reduce_fn)
        if paper_baseline is not None:
            baseline_load, baseline_reduce = paper_baseline
        else:
            baseline_load = max(result.load_seconds, self.cost_model.min_time_s)
            baseline_reduce = max(
                result.map_seconds + result.reduce_seconds, self.cost_model.min_time_s
            )
        rows = self.scaling_table(baseline_load, baseline_reduce)
        return result, rows
