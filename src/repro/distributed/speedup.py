"""Speedup bookkeeping and analytic scaling laws.

Small utilities shared by the scaling benchmarks: tabulating measured or
modelled speedups, and the Amdahl / Gustafson reference curves used to sanity
check the cluster and GPU cost models (a modelled speedup should never exceed
the Amdahl bound implied by its own serial fraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def amdahl_speedup(n_workers: int | np.ndarray, serial_fraction: float) -> np.ndarray:
    """Amdahl's law: ``S(n) = 1 / (s + (1 - s) / n)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    n = np.asarray(n_workers, dtype=float)
    if np.any(n < 1):
        raise ValueError("worker counts must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n)


def gustafson_speedup(n_workers: int | np.ndarray, serial_fraction: float) -> np.ndarray:
    """Gustafson's law: ``S(n) = n - s (n - 1)`` (scaled-problem speedup)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    n = np.asarray(n_workers, dtype=float)
    if np.any(n < 1):
        raise ValueError("worker counts must be >= 1")
    return n - serial_fraction * (n - 1.0)


def parallel_efficiency(speedup: float | np.ndarray, n_workers: int | np.ndarray) -> np.ndarray:
    """Parallel efficiency ``E = S / n``."""
    s = np.asarray(speedup, dtype=float)
    n = np.asarray(n_workers, dtype=float)
    if np.any(n < 1):
        raise ValueError("worker counts must be >= 1")
    return s / n


@dataclass
class SpeedupTable:
    """Accumulates (configuration, time) measurements and derives speedups."""

    label: str
    configurations: list[str] = field(default_factory=list)
    workers: list[int] = field(default_factory=list)
    times_s: list[float] = field(default_factory=list)

    def add(self, configuration: str, n_workers: int, time_s: float) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if time_s <= 0:
            raise ValueError("time_s must be positive")
        self.configurations.append(configuration)
        self.workers.append(n_workers)
        self.times_s.append(time_s)

    @property
    def baseline_s(self) -> float:
        if not self.times_s:
            raise ValueError("no measurements recorded")
        return self.times_s[0]

    def speedups(self) -> np.ndarray:
        """Speedup of each configuration relative to the first one recorded."""
        return self.baseline_s / np.asarray(self.times_s)

    def efficiencies(self) -> np.ndarray:
        return parallel_efficiency(self.speedups(), np.asarray(self.workers))

    def rows(self) -> list[dict[str, float | str | int]]:
        """Printable rows: configuration, workers, time, speedup, efficiency."""
        speedups = self.speedups()
        effs = self.efficiencies()
        return [
            {
                "configuration": cfg,
                "workers": w,
                "time_s": round(t, 3),
                "speedup": round(float(s), 2),
                "efficiency": round(float(e), 3),
            }
            for cfg, w, t, s, e in zip(self.configurations, self.workers, self.times_s, speedups, effs)
        ]
