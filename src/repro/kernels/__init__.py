"""Vectorized hot-path kernels with a reference/vectorized dispatch switch.

The hottest inner loops of the pipeline each have two interchangeable
implementations in this package:

* :mod:`repro.kernels.sea_surface` — windowed sea-surface estimation
  (searchsorted-bounded window membership, segmented medians/MAD outlier
  rejection and the NASA inverse-error weighting across all windows at once);
* :mod:`repro.kernels.confidence` — ATL03 per-bin modal surface finding
  (one ``np.bincount`` over composite ``(bin, height-cell)`` keys);
* :mod:`repro.kernels.lstm` — LSTM forward/backward over a whole minibatch
  (the input projection and the weight-gradient reductions are single GEMMs
  over all timesteps instead of one small GEMM per step);
* :mod:`repro.kernels.gridding` — Level-3 polar-grid binning (per-cell
  count/mean/median/std/MAD and class counts over millions of segments via
  composite-key ``np.bincount`` and segmented ``np.lexsort`` medians);
* :mod:`repro.kernels.pyramid` — tile-pyramid overview reductions
  (NaN-aware count-weighted means and coverage fractions over 2x2 child
  blocks, computed from four strided child planes at once).

The *reference* implementations are the original per-window / per-bin /
per-step loops, kept as the ground truth the vectorized kernels are
equivalence-tested against (``tests/test_kernels_equivalence.py`` asserts
agreement to 1e-10) and benchmarked against (``benchmarks/bench_kernels.py``).

Backend selection
-----------------

The active backend is process-global and defaults to ``"vectorized"``; the
``REPRO_KERNEL_BACKEND`` environment variable overrides the initial value::

    from repro import kernels

    kernels.set_backend("reference")          # sticky switch
    with kernels.use_backend("vectorized"):   # scoped switch
        ...

Every kernel entry point also accepts an explicit ``backend=...`` argument
that bypasses the global switch for that one call.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Names of the available kernel backends.
KERNEL_BACKENDS = ("vectorized", "reference")

_active_backend = os.environ.get("REPRO_KERNEL_BACKEND", "vectorized")
if _active_backend not in KERNEL_BACKENDS:
    raise ValueError(
        f"REPRO_KERNEL_BACKEND={_active_backend!r} is not one of {KERNEL_BACKENDS}"
    )


def get_backend() -> str:
    """Name of the currently active kernel backend."""
    return _active_backend


def set_backend(name: str) -> None:
    """Select the process-global kernel backend (``vectorized`` or ``reference``)."""
    global _active_backend
    if name not in KERNEL_BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}; choose from {KERNEL_BACKENDS}")
    _active_backend = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager that temporarily switches the kernel backend."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit ``backend=`` argument, defaulting to the global switch."""
    if backend is None:
        return _active_backend
    if backend not in KERNEL_BACKENDS:
        raise ValueError(f"unknown kernel backend {backend!r}; choose from {KERNEL_BACKENDS}")
    return backend


from repro.kernels import confidence, gridding, lstm, pyramid, sea_surface  # noqa: E402

__all__ = [
    "KERNEL_BACKENDS",
    "confidence",
    "get_backend",
    "gridding",
    "lstm",
    "pyramid",
    "resolve_backend",
    "sea_surface",
    "set_backend",
    "use_backend",
]
