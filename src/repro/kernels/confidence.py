"""ATL03 per-bin modal surface-height kernels (reference loop + vectorized).

Both backends share the same per-bin semantics (the satellite-fix contract of
:func:`repro.atl03.confidence._modal_height_per_bin`):

* photons with non-finite heights never enter surface finding;
* a bin with no (finite) photons gets NaN;
* a bin with a single photon returns that photon's height directly — it can
  never reach ``np.histogram`` with a degenerate zero-width range;
* a bin whose height span is narrower than ``height_resolution_m`` returns
  the median height (histogramming below the resolution is meaningless);
* otherwise the bin is histogrammed at ``height_resolution_m`` and the centre
  of the most populated height cell (first cell on ties) is returned.

The reference backend histograms one bin at a time with ``np.histogram``.
The vectorized backend assigns every photon a composite ``(bin, height-cell)``
key and builds *all* per-bin histograms with a single ``np.bincount``; the
cell assignment reproduces numpy's uniform-bin algorithm (truncated scaled
index plus the ±1 ULP edge corrections against ``linspace`` edges) so the two
backends agree bit-for-bit even for photons exactly on a cell edge.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import resolve_backend
from repro.kernels._segments import cumsum0 as _cumsum0


def _searchsorted_bins(along_track_m: np.ndarray, bin_edges: np.ndarray) -> np.ndarray:
    return np.searchsorted(bin_edges, along_track_m, side="right") - 1


def _fast_bins(along_track_m: np.ndarray, bin_edges: np.ndarray) -> np.ndarray:
    """Bin indices identical to ``searchsorted(edges, x, 'right') - 1``.

    For (near-)uniform strictly-increasing edges the index is computed
    arithmetically and corrected against the actual edge values, so it is
    bit-exact; photons the corrections cannot place (non-finite positions,
    pathologically non-uniform edges) fall back to ``searchsorted``.
    """
    n_bins = bin_edges.size - 1
    span = bin_edges[-1] - bin_edges[0]
    if n_bins < 1 or not np.isfinite(span) or span <= 0:
        return _searchsorted_bins(along_track_m, bin_edges)
    guess = ((along_track_m - bin_edges[0]) / span) * n_bins
    finite = np.isfinite(guess)
    k = np.clip(np.where(finite, guess, 0.0), 0, n_bins - 1).astype(np.int64)
    k -= (along_track_m < bin_edges[k]) & (k > 0)
    k += (along_track_m >= bin_edges[k + 1]) & (k < n_bins - 1)
    below = along_track_m < bin_edges[0]
    above = along_track_m >= bin_edges[-1]
    inside = (along_track_m >= bin_edges[k]) & (along_track_m < bin_edges[k + 1])
    k[below] = -1
    k[above] = n_bins
    bad = np.flatnonzero(~(inside | below | above))
    if bad.size:
        k[bad] = _searchsorted_bins(along_track_m[bad], bin_edges)
    return k


def _valid_photons(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    bin_edges: np.ndarray,
    n_bins: int,
    fast_bins: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin index and height of the photons that participate in surface finding."""
    if fast_bins and np.all(np.diff(bin_edges) > 0):
        bin_idx = _fast_bins(along_track_m, bin_edges)
    else:
        bin_idx = _searchsorted_bins(along_track_m, bin_edges)
    valid = (bin_idx >= 0) & (bin_idx < n_bins) & np.isfinite(height_m)
    if valid.all():
        return bin_idx, height_m
    idx = np.flatnonzero(valid)
    return bin_idx[idx], height_m[idx]


def modal_height_per_bin_reference(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    bin_edges: np.ndarray,
    height_resolution_m: float,
) -> np.ndarray:
    """Modal photon height per along-track bin, one ``np.histogram`` per bin."""
    n_bins = bin_edges.shape[0] - 1
    modal = np.full(n_bins, np.nan)
    bin_idx, heights = _valid_photons(along_track_m, height_m, bin_edges, n_bins)
    if bin_idx.size == 0:
        return modal
    order = np.argsort(bin_idx, kind="stable")
    bin_idx = bin_idx[order]
    heights = heights[order]
    boundaries = np.searchsorted(bin_idx, np.arange(n_bins + 1))
    for b in range(n_bins):
        lo, hi = boundaries[b], boundaries[b + 1]
        if hi <= lo:
            continue
        h = heights[lo:hi]
        if h.size == 1:
            # A single photon *is* the surface estimate; returning early keeps
            # degenerate zero-width ranges away from np.histogram.
            modal[b] = float(h[0])
            continue
        h_min, h_max = h.min(), h.max()
        if h_max - h_min < height_resolution_m:
            # The whole bin fits inside one height cell: the median is the
            # best available mode estimate.
            modal[b] = float(np.median(h))
            continue
        n_cells = max(int(np.ceil((h_max - h_min) / height_resolution_m)), 1)
        counts, edges = np.histogram(h, bins=n_cells)
        peak = int(np.argmax(counts))
        modal[b] = 0.5 * (edges[peak] + edges[peak + 1])
    return modal


def modal_height_per_bin_vectorized(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    bin_edges: np.ndarray,
    height_resolution_m: float,
) -> np.ndarray:
    """Modal photon height per bin via one ``np.bincount`` over composite keys."""
    n_bins = bin_edges.shape[0] - 1
    modal = np.full(n_bins, np.nan)
    bin_idx, heights = _valid_photons(
        along_track_m, height_m, bin_edges, n_bins, fast_bins=True
    )
    if bin_idx.size == 0:
        return modal

    # Group photons by bin.  ATL03 photon streams arrive in along-track
    # order, so the bin indices are usually already non-decreasing and the
    # sort becomes a no-op; the stable argsort fallback covers shuffled data.
    if np.all(bin_idx[1:] >= bin_idx[:-1]):
        b, h = bin_idx, heights
    else:
        order = np.argsort(bin_idx, kind="stable")
        b = bin_idx[order]
        h = heights[order]
    counts = np.bincount(b, minlength=n_bins)
    offsets = _cumsum0(counts)
    occupied = counts > 0
    seg_starts = offsets[:-1][occupied]
    h_min = np.full(n_bins, np.nan)
    h_max = np.full(n_bins, np.nan)
    h_min[occupied] = np.minimum.reduceat(h, seg_starts)
    h_max[occupied] = np.maximum.reduceat(h, seg_starts)

    # Narrow bins (including single-photon bins, whose span is zero) take the
    # median of their height-sorted photons; only those photons get sorted.
    span = h_max - h_min
    narrow = occupied & (span < height_resolution_m)
    if narrow.any():
        in_narrow = narrow[b]
        nb = b[in_narrow]
        nh = h[in_narrow]
        rank = np.empty(nh.size, dtype=np.int64)
        rank[np.argsort(nh)] = np.arange(nh.size)
        nh_sorted = nh[np.argsort(nb * nh.size + rank)]
        n_counts = counts[narrow]
        n_offsets = _cumsum0(n_counts)
        lo = n_offsets[:-1] + (n_counts - 1) // 2
        hi = n_offsets[:-1] + n_counts // 2
        modal[narrow] = (nh_sorted[lo] + nh_sorted[hi]) / 2.0

    hist = occupied & ~narrow
    if not hist.any():
        return modal

    # One composite-key bincount builds every per-bin histogram at once.
    n_cells = np.zeros(n_bins, dtype=np.int64)
    n_cells[hist] = np.maximum(
        np.ceil(span[hist] / height_resolution_m).astype(np.int64), 1
    )
    cell_offsets = _cumsum0(n_cells)
    total_cells = int(cell_offsets[-1])

    # Every photon's bin is occupied, so when no bin is narrow the histogram
    # set is the whole photon stream and the filter is a no-op.
    if narrow.any():
        in_hist = np.flatnonzero(hist[b])
        hb = b[in_hist]
        hh = h[in_hist]
    else:
        hb = b
        hh = h
    first = h_min[hb]
    delta = span[hb]
    cells_b = n_cells[hb]
    # linspace edge k of a bin is k * (delta / n) + first, with the final edge
    # forced to the maximum — exactly what np.histogram compares against.
    step = delta / cells_b

    # numpy's uniform-bin assignment: truncate the scaled index, then apply
    # the ±1 ULP corrections against the actual edges.  Edge k of a bin is
    # k * (span / n) + h_min, with the final edge forced to h_max — exactly
    # the linspace edges np.histogram compares against.
    idx = (((hh - first) / delta) * cells_b).astype(np.int64)
    idx[idx == cells_b] -= 1
    # idx is in [0, n); all photons sit at or above their bin's first edge,
    # so the decrement can never push below zero and edge(idx) never needs
    # the forced-endpoint branch.
    idx[hh < idx * step + first] -= 1
    edge_next = np.where(idx + 1 == cells_b, h_max[hb], (idx + 1) * step + first)
    idx += (hh >= edge_next) & (idx != cells_b - 1)

    keys = cell_offsets[hb] + idx
    cell_counts = np.bincount(keys, minlength=total_cells)

    # Most-populated cell per bin, first cell on ties: take the per-bin max,
    # then the first cell index attaining it (the equality set is sparse).
    hist_bins = np.flatnonzero(hist)
    seg_offsets = cell_offsets[hist_bins]
    peak_max = np.maximum.reduceat(cell_counts, seg_offsets)
    candidates = np.flatnonzero(cell_counts == np.repeat(peak_max, n_cells[hist_bins]))
    cand_rank = np.searchsorted(seg_offsets, candidates, side="right") - 1
    first_of_rank = np.flatnonzero(np.diff(cand_rank, prepend=-1) != 0)
    peak = candidates[first_of_rank] - seg_offsets

    bin_step = span[hist_bins] / n_cells[hist_bins]
    bin_first = h_min[hist_bins]
    edge_lo = peak * bin_step + bin_first
    edge_hi = np.where(
        peak + 1 == n_cells[hist_bins], h_max[hist_bins], (peak + 1) * bin_step + bin_first
    )
    modal[hist_bins] = 0.5 * (edge_lo + edge_hi)
    return modal


def modal_height_per_bin(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    bin_edges: np.ndarray,
    height_resolution_m: float,
    backend: str | None = None,
) -> np.ndarray:
    """Dispatch to the active (or explicitly requested) backend."""
    impl = (
        modal_height_per_bin_vectorized
        if resolve_backend(backend) == "vectorized"
        else modal_height_per_bin_reference
    )
    return impl(along_track_m, height_m, bin_edges, height_resolution_m)
