"""LSTM forward/backward kernels (reference per-step GEMMs + batched GEMMs).

Both backends implement the standard fused-gate LSTM (gate order f, i, g, o;
see :mod:`repro.ml.lstm` for the equations) over inputs of shape
``(batch, time, features)`` and return identical caches:

``forward``  -> ``(hs, cs, gates)`` with ``hs``/``cs`` of shape
``(batch, T + 1, units)`` (step 0 is the zero initial state) and ``gates`` of
shape ``(batch, T, 4 * units)``.

``backward`` -> ``(dx, dW, dU, db)`` for an upstream gradient ``dh_seq`` of
shape ``(batch, T, units)``.

The recurrence itself is inherently sequential, but only the *recurrent*
product ``h @ U`` has to live inside the time loop:

* the vectorized forward computes the input projection ``x @ W`` for all
  timesteps in one ``(batch * T, features)`` GEMM;
* the vectorized backward stores the per-step gate gradients and computes
  ``dW``, ``dU``, ``db`` and ``dx`` as single whole-sequence GEMMs /
  reductions after the loop, leaving just ``dz @ U.T`` per step.

That turns five small GEMMs per timestep into two, which is where most of
the Python-loop and BLAS-dispatch overhead of minibatch inference goes.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import resolve_backend

#: Supported cell output activations.
LSTM_ACTIVATIONS = ("elu", "tanh")


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid (boolean-indexed formulation)."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_fast(x: np.ndarray) -> np.ndarray:
    """Branch-free sigmoid, bit-identical to :func:`sigmoid`.

    ``exp(-|x|)`` equals ``exp(-x)`` on the positive branch and ``exp(x)`` on
    the negative branch, so both branches share one exponential; selecting
    the numerator (1 or ``exp``) before a single division yields exactly
    ``1 / (1 + e)`` or ``e / (1 + e)`` without boolean fancy indexing and
    with one division instead of two.
    """
    ez = np.exp(-np.abs(x))
    num = np.where(x >= 0, 1.0, ez)
    num /= 1.0 + ez
    return num


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(x > 0, x, alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))


def elu_grad(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(x > 0, 1.0, alpha * np.exp(np.minimum(x, 0.0)))


def cell_activation(c: np.ndarray, activation: str) -> np.ndarray:
    if activation == "elu":
        return elu(c)
    return np.tanh(c)


def cell_activation_grad(c: np.ndarray, activation: str) -> np.ndarray:
    if activation == "elu":
        return elu_grad(c)
    return 1.0 - np.tanh(c) ** 2


def _check_activation(activation: str) -> None:
    if activation not in LSTM_ACTIVATIONS:
        raise ValueError(f"activation must be one of {LSTM_ACTIVATIONS}")


# ---------------------------------------------------------------------------
# Reference backend: every projection inside the time loop
# ---------------------------------------------------------------------------


def lstm_forward_reference(
    x: np.ndarray, W: np.ndarray, U: np.ndarray, b: np.ndarray, activation: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Forward pass with one input GEMM and one recurrent GEMM per timestep."""
    _check_activation(activation)
    batch, T, _ = x.shape
    H = U.shape[0]
    h = np.zeros((batch, H))
    c = np.zeros((batch, H))
    hs = np.zeros((batch, T + 1, H))
    cs = np.zeros((batch, T + 1, H))
    gates = np.zeros((batch, T, 4 * H))
    for t in range(T):
        z = x[:, t, :] @ W + h @ U + b
        f = sigmoid(z[:, :H])
        i = sigmoid(z[:, H:2 * H])
        g = np.tanh(z[:, 2 * H:3 * H])
        o = sigmoid(z[:, 3 * H:])
        c = f * c + i * g
        h = o * cell_activation(c, activation)
        gates[:, t, :H] = f
        gates[:, t, H:2 * H] = i
        gates[:, t, 2 * H:3 * H] = g
        gates[:, t, 3 * H:] = o
        hs[:, t + 1, :] = h
        cs[:, t + 1, :] = c
    return hs, cs, gates


def lstm_backward_reference(
    dh_seq: np.ndarray,
    x: np.ndarray,
    hs: np.ndarray,
    cs: np.ndarray,
    gates: np.ndarray,
    W: np.ndarray,
    U: np.ndarray,
    activation: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass accumulating the weight gradients one timestep at a time."""
    _check_activation(activation)
    batch, T, _ = x.shape
    H = U.shape[0]
    dW = np.zeros_like(W)
    dU = np.zeros_like(U)
    db = np.zeros(4 * H)
    dx = np.zeros_like(x)
    dh_next = np.zeros((batch, H))
    dc_next = np.zeros((batch, H))
    for t in range(T - 1, -1, -1):
        f = gates[:, t, :H]
        i = gates[:, t, H:2 * H]
        g = gates[:, t, 2 * H:3 * H]
        o = gates[:, t, 3 * H:]
        c = cs[:, t + 1, :]
        c_prev = cs[:, t, :]
        h_prev = hs[:, t, :]

        dh = dh_seq[:, t, :] + dh_next
        phi_c = cell_activation(c, activation)
        dc = dh * o * cell_activation_grad(c, activation) + dc_next

        do = dh * phi_c
        df = dc * c_prev
        di = dc * g
        dg = dc * i

        dzf = df * f * (1.0 - f)
        dzi = di * i * (1.0 - i)
        dzg = dg * (1.0 - g**2)
        dzo = do * o * (1.0 - o)
        dz = np.concatenate([dzf, dzi, dzg, dzo], axis=1)

        dW += x[:, t, :].T @ dz
        dU += h_prev.T @ dz
        db += dz.sum(axis=0)
        dx[:, t, :] = dz @ W.T
        dh_next = dz @ U.T
        dc_next = dc * f
    return dx, dW, dU, db


# ---------------------------------------------------------------------------
# Vectorized backend: whole-sequence GEMMs outside the time loop
# ---------------------------------------------------------------------------


def lstm_forward_vectorized(
    x: np.ndarray, W: np.ndarray, U: np.ndarray, b: np.ndarray, activation: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Forward pass with the input projection batched over every timestep."""
    _check_activation(activation)
    batch, T, n_in = x.shape
    H = U.shape[0]
    hs = np.zeros((batch, T + 1, H))
    cs = np.zeros((batch, T + 1, H))
    gates = np.empty((batch, T, 4 * H))
    # One GEMM for x_t @ W across all timesteps, into a preallocated buffer
    # (the allocation, not the GEMM, dominates the per-step variant).
    zx = np.empty((batch * T, 4 * H))
    np.dot(x.reshape(batch * T, n_in), W, out=zx)
    zx = zx.reshape(batch, T, 4 * H)
    h = np.zeros((batch, H))
    c = np.zeros((batch, H))
    z = np.empty((batch, 4 * H))
    for t in range(T):
        # z = x_t @ W + h @ U + b, accumulated in place (addition order is
        # commutative bit-for-bit, so this matches the reference exactly).
        np.dot(h, U, out=z)
        z += zx[:, t, :]
        z += b
        gate_t = gates[:, t, :]
        # f and i are adjacent in the fused layout: one sigmoid for both.
        gate_t[:, : 2 * H] = sigmoid_fast(z[:, : 2 * H])
        np.tanh(z[:, 2 * H:3 * H], out=gate_t[:, 2 * H:3 * H])
        gate_t[:, 3 * H:] = sigmoid_fast(z[:, 3 * H:])
        c = c * gate_t[:, :H]
        c += gate_t[:, H:2 * H] * gate_t[:, 2 * H:3 * H]
        h = gate_t[:, 3 * H:] * cell_activation(c, activation)
        hs[:, t + 1, :] = h
        cs[:, t + 1, :] = c
    return hs, cs, gates


def lstm_backward_vectorized(
    dh_seq: np.ndarray,
    x: np.ndarray,
    hs: np.ndarray,
    cs: np.ndarray,
    gates: np.ndarray,
    W: np.ndarray,
    U: np.ndarray,
    activation: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass with per-step gate gradients stored and reduced in bulk."""
    _check_activation(activation)
    batch, T, n_in = x.shape
    H = U.shape[0]
    # Time-major gate-gradient storage: every per-step slice is contiguous,
    # and the whole buffer still feeds the fused GEMMs below as one view.
    dz_all = np.empty((T, batch, 4 * H))
    dh_next = np.zeros((batch, H))
    dc_next = np.zeros((batch, H))
    for t in range(T - 1, -1, -1):
        f = gates[:, t, :H]
        i = gates[:, t, H:2 * H]
        g = gates[:, t, 2 * H:3 * H]
        o = gates[:, t, 3 * H:]
        c = cs[:, t + 1, :]

        dh = dh_seq[:, t, :] + dh_next
        if activation == "elu":
            # Share exp(min(c, 0)) between the ELU value and its derivative.
            em = np.exp(np.minimum(c, 0.0))
            phi_c = np.where(c > 0, c, em - 1.0)
            grad_c = np.where(c > 0, 1.0, em)
        else:
            phi_c = np.tanh(c)
            grad_c = 1.0 - phi_c**2
        dc = dh * o
        dc *= grad_c
        dc += dc_next

        # Gate pre-activation gradients, written in place into the fused
        # buffer with the reference's association order preserved.
        dz = dz_all[t]
        dzf = dz[:, :H]
        np.multiply(dc, cs[:, t, :], out=dzf)
        dzf *= f
        dzf *= 1.0 - f
        dzi = dz[:, H:2 * H]
        np.multiply(dc, g, out=dzi)
        dzi *= i
        dzi *= 1.0 - i
        dzg = dz[:, 2 * H:3 * H]
        np.multiply(dc, i, out=dzg)
        dzg *= 1.0 - g**2
        dzo = dz[:, 3 * H:]
        np.multiply(dh, phi_c, out=dzo)
        dzo *= o
        dzo *= 1.0 - o

        np.dot(dz, U.T, out=dh_next)
        dc_next = dc * f
    # Whole-sequence reductions: one GEMM each for dW, dU and dx, over the
    # time-major views, into preallocated outputs.
    dz_flat = dz_all.reshape(T * batch, 4 * H)
    x_tm = np.ascontiguousarray(x.transpose(1, 0, 2)).reshape(T * batch, n_in)
    h_tm = np.ascontiguousarray(hs[:, :T, :].transpose(1, 0, 2)).reshape(T * batch, H)
    dW = np.empty_like(W)
    np.dot(x_tm.T, dz_flat, out=dW)
    dU = np.empty_like(U)
    np.dot(h_tm.T, dz_flat, out=dU)
    db = dz_flat.sum(axis=0)
    dx_flat = np.empty((T * batch, n_in))
    np.dot(dz_flat, W.T, out=dx_flat)
    dx = np.ascontiguousarray(dx_flat.reshape(T, batch, n_in).transpose(1, 0, 2))
    return dx, dW, dU, db


def lstm_forward(
    x: np.ndarray,
    W: np.ndarray,
    U: np.ndarray,
    b: np.ndarray,
    activation: str,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch the forward pass to the active (or requested) backend."""
    impl = (
        lstm_forward_vectorized
        if resolve_backend(backend) == "vectorized"
        else lstm_forward_reference
    )
    return impl(x, W, U, b, activation)


def lstm_backward(
    dh_seq: np.ndarray,
    x: np.ndarray,
    hs: np.ndarray,
    cs: np.ndarray,
    gates: np.ndarray,
    W: np.ndarray,
    U: np.ndarray,
    activation: str,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch the backward pass to the active (or requested) backend."""
    impl = (
        lstm_backward_vectorized
        if resolve_backend(backend) == "vectorized"
        else lstm_backward_reference
    )
    return impl(dh_seq, x, hs, cs, gates, W, U, activation)
