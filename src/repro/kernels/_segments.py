"""Shared segmented-array helpers for the kernel backends."""

from __future__ import annotations

import numpy as np


def cumsum0(counts: np.ndarray) -> np.ndarray:
    """``[0, c0, c0+c1, ...]`` — group offsets from group sizes."""
    out = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out
