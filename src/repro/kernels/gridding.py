"""Level-3 per-cell binning kernels (reference loop + vectorized).

Both backends implement the same contract: given the flat cell index of
every along-track segment on a :class:`~repro.geodesy.grid.GridDefinition`
(``row * nx + col``, already filtered to in-grid points) and a value per
segment, produce per-cell statistics over the whole grid:

* :func:`cell_statistics` — count / mean / median / std / MAD per cell;
* :func:`cell_class_counts` — per-(class, cell) segment counts, the basis
  of the Level-3 class-fraction layers.

Per-cell conventions (shared by both backends, asserted in
``tests/test_kernels_gridding.py``):

* **values must be finite** — NaN/inf segments must be filtered out before
  binning (``Level3Processor`` masks them with ``np.isfinite``); both
  backends reject non-finite values loudly rather than letting the sort-
  based and reduction-based paths silently disagree on NaN placement;
* an **empty cell** has count 0 and NaN mean/median/std/MAD;
* a **single-segment cell** has std 0.0 and MAD 0.0 (population statistics,
  ``ddof=0``) — never garbage from a degenerate reduction;
* ``std`` is the population standard deviation (``np.std`` semantics);
* ``median`` of an even-sized cell is the mean of the two middle values
  (``np.median`` semantics); MAD is the median absolute deviation from the
  cell median.

The reference backend groups segments by cell once and then runs the plain
per-cell recipe (``np.mean``/``np.median``/``np.std``) one cell at a time.
The vectorized backend computes every cell simultaneously: counts, sums and
squared deviations via ``np.bincount``, medians and MADs via one
``np.lexsort`` per statistic with per-cell run boundaries derived from the
counts, and class counts via a single composite-key ``(cell, class)``
bincount.  The median/MAD paths are bit-identical to the reference; the
mean/std paths agree to summation-order rounding (well inside the 1e-10
equivalence tolerance).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import resolve_backend


def _prepare(
    cell_index: np.ndarray, values: np.ndarray, n_cells: int
) -> tuple[np.ndarray, np.ndarray]:
    idx = np.asarray(cell_index)
    vals = np.asarray(values, dtype=float)
    if idx.ndim != 1 or vals.ndim != 1 or idx.shape != vals.shape:
        raise ValueError("cell_index and values must be 1-D arrays of equal length")
    if n_cells < 1:
        raise ValueError("n_cells must be positive")
    idx = idx.astype(np.int64, copy=False)
    if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= n_cells):
        raise ValueError(
            "cell_index out of range: filter points with GridDefinition.flat_index "
            "(drop the -1 entries) before binning"
        )
    if vals.size and not np.isfinite(vals).all():
        # NaN sorts differently than it reduces: the lexsort-median path and
        # np.median would silently disagree, so enforce the finite-values
        # contract identically on both backends.
        raise ValueError(
            "values must be finite: mask NaN/inf segments (np.isfinite) before binning"
        )
    return idx, vals


def _group_bounds(sorted_idx: np.ndarray) -> np.ndarray:
    """Start offsets of each run of equal indices, with a trailing stop."""
    if sorted_idx.size == 0:
        return np.array([0], dtype=np.int64)
    starts = np.flatnonzero(np.r_[True, np.diff(sorted_idx) > 0])
    return np.append(starts, sorted_idx.size)


# ---------------------------------------------------------------------------
# Reference backend: the per-cell recipe, one occupied cell at a time
# ---------------------------------------------------------------------------


def cell_statistics_reference(
    cell_index: np.ndarray, values: np.ndarray, n_cells: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell (count, mean, median, std, MAD), looping over occupied cells."""
    idx, vals = _prepare(cell_index, values, n_cells)
    count = np.zeros(n_cells, dtype=np.int64)
    mean = np.full(n_cells, np.nan)
    median = np.full(n_cells, np.nan)
    std = np.full(n_cells, np.nan)
    mad = np.full(n_cells, np.nan)

    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    sorted_vals = vals[order]
    bounds = _group_bounds(sorted_idx)
    for start, stop in zip(bounds[:-1], bounds[1:]):
        cell = int(sorted_idx[start])
        members = sorted_vals[start:stop]
        count[cell] = members.size
        mean[cell] = float(np.mean(members))
        med = float(np.median(members))
        median[cell] = med
        std[cell] = float(np.std(members))
        mad[cell] = float(np.median(np.abs(members - med)))
    return count, mean, median, std, mad


def cell_class_counts_reference(
    cell_index: np.ndarray, labels: np.ndarray, n_cells: int, n_classes: int
) -> np.ndarray:
    """Per-(class, cell) counts of shape (n_classes, n_cells), cell loop."""
    idx, _ = _prepare(cell_index, np.zeros_like(cell_index, dtype=float), n_cells)
    lab = _validated_labels(labels, idx, n_classes)
    counts = np.zeros((n_classes, n_cells), dtype=np.int64)

    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    sorted_lab = lab[order]
    bounds = _group_bounds(sorted_idx)
    for start, stop in zip(bounds[:-1], bounds[1:]):
        cell = int(sorted_idx[start])
        members = sorted_lab[start:stop]
        for k in range(n_classes):
            counts[k, cell] = int(np.count_nonzero(members == k))
    return counts


# ---------------------------------------------------------------------------
# Vectorized backend: all cells at once
# ---------------------------------------------------------------------------


def _segmented_median(
    idx: np.ndarray, vals: np.ndarray, count: np.ndarray
) -> np.ndarray:
    """Median per cell via one lexsort over (cell, value) composite keys.

    ``count`` is the per-cell occupancy (``bincount`` of ``idx``); cells are
    contiguous runs after the sort, so each cell's two middle elements are
    plain offsets from the run start.  ``0.5 * (lo + hi)`` reproduces
    ``np.median`` exactly: for odd runs ``lo == hi``, for even runs the mean
    of two doubles is the same correctly-rounded value either way.
    """
    median = np.full(count.size, np.nan)
    if idx.size == 0:
        return median
    order = np.lexsort((vals, idx))
    sorted_vals = vals[order]
    starts = np.zeros(count.size, dtype=np.int64)
    np.cumsum(count[:-1], out=starts[1:])
    occupied = count > 0
    lo = starts[occupied] + (count[occupied] - 1) // 2
    hi = starts[occupied] + count[occupied] // 2
    median[occupied] = 0.5 * (sorted_vals[lo] + sorted_vals[hi])
    return median


def cell_statistics_vectorized(
    cell_index: np.ndarray, values: np.ndarray, n_cells: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell (count, mean, median, std, MAD) with bincount/lexsort reductions."""
    idx, vals = _prepare(cell_index, values, n_cells)
    count = np.bincount(idx, minlength=n_cells)
    occupied = count > 0
    sums = np.bincount(idx, weights=vals, minlength=n_cells)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(occupied, sums / count, np.nan)
        deviation = vals - mean[idx]
        var = np.where(
            occupied,
            np.bincount(idx, weights=deviation * deviation, minlength=n_cells) / count,
            np.nan,
        )
    std = np.sqrt(var)
    median = _segmented_median(idx, vals, count)
    with np.errstate(invalid="ignore"):
        abs_deviation = np.abs(vals - median[idx])
    mad = _segmented_median(idx, abs_deviation, count)
    return count, mean, median, std, mad


def cell_class_counts_vectorized(
    cell_index: np.ndarray, labels: np.ndarray, n_cells: int, n_classes: int
) -> np.ndarray:
    """Per-(class, cell) counts with one composite-key bincount."""
    idx, _ = _prepare(cell_index, np.zeros_like(cell_index, dtype=float), n_cells)
    lab = _validated_labels(labels, idx, n_classes)
    composite = idx * np.int64(n_classes) + lab
    counts = np.bincount(composite, minlength=n_cells * n_classes)
    return np.ascontiguousarray(counts.reshape(n_cells, n_classes).T)


def _validated_labels(labels: np.ndarray, idx: np.ndarray, n_classes: int) -> np.ndarray:
    lab = np.asarray(labels)
    if lab.shape != idx.shape:
        raise ValueError("labels must align with cell_index")
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    lab = lab.astype(np.int64, copy=False)
    if lab.size and (int(lab.min()) < 0 or int(lab.max()) >= n_classes):
        raise ValueError(f"labels must lie in [0, {n_classes})")
    return lab


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def cell_statistics(
    cell_index: np.ndarray,
    values: np.ndarray,
    n_cells: int,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell (count, mean, median, std, MAD) via the active kernel backend."""
    if resolve_backend(backend) == "vectorized":
        return cell_statistics_vectorized(cell_index, values, n_cells)
    return cell_statistics_reference(cell_index, values, n_cells)


def cell_class_counts(
    cell_index: np.ndarray,
    labels: np.ndarray,
    n_cells: int,
    n_classes: int,
    backend: str | None = None,
) -> np.ndarray:
    """Per-(class, cell) counts via the active kernel backend."""
    if resolve_backend(backend) == "vectorized":
        return cell_class_counts_vectorized(cell_index, labels, n_cells, n_classes)
    return cell_class_counts_reference(cell_index, labels, n_cells, n_classes)
