"""Windowed sea-surface estimation kernels (reference loop + vectorized).

Both backends implement the same contract: given the open-water candidate
segments of a track (sorted by along-track position) and the window grid,
produce per-window sea-surface heights, errors and surviving segment counts
for one of the four estimation methods
(:data:`repro.freeboard.sea_surface.SEA_SURFACE_METHODS`).

The per-window recipe (shared by both backends, and by the operational ATBD):

1. select the window's segments with two ``searchsorted`` bounds;
2. reject outliers farther than ``max(3 * 1.4826 * MAD, 0.25 m)`` from the
   window's median water height;
3. if at least ``min_segments`` survive, estimate the window height/error
   with the requested method, otherwise emit NaN.

The reference backend runs that recipe one window at a time; the vectorized
backend expands the (window, segment) membership once — segments appear in
``ceil(window / step)`` windows at most, so the expansion is bounded — and
then computes every step for *all* windows simultaneously with segmented
sorts, ``np.bincount`` weighted reductions and ``reduceat``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import resolve_backend
from repro.kernels._segments import cumsum0 as _cumsum0

#: Along-track gap (m) above which open-water segments belong to separate leads.
LEAD_MAX_GAP_M = 100.0

#: Floor applied to candidate/lead errors before the NASA inverse weighting.
MIN_SIGMA = 1e-6


# ---------------------------------------------------------------------------
# Scalar building blocks (shared by the reference loop and the public API in
# repro.freeboard.sea_surface)
# ---------------------------------------------------------------------------


def nasa_lead_height_arrays(
    heights_m: np.ndarray, errors_m: np.ndarray
) -> tuple[float, float]:
    """Paper eq. (2): error-weighted lead height of one lead's candidates."""
    h = heights_m
    sigma = np.where(errors_m > MIN_SIGMA, errors_m, MIN_SIGMA)
    h_min = h.min()
    w = np.exp(-(((h - h_min) / sigma) ** 2))
    total = w.sum()
    if total <= 0:
        w = np.full(h.shape, 1.0 / h.size)
    else:
        w = w / total
    lead_height = float(np.sum(w * h))
    lead_error = float(np.sqrt(np.sum(w**2 * sigma**2)))
    return lead_height, lead_error


def nasa_reference_height_arrays(
    lead_heights_m: np.ndarray, lead_errors_m: np.ndarray
) -> tuple[float, float]:
    """Paper eq. (3): inverse-variance combination of a window's leads."""
    sigma = np.where(lead_errors_m > MIN_SIGMA, lead_errors_m, MIN_SIGMA)
    inv_var = 1.0 / sigma**2
    a = inv_var / inv_var.sum()
    ref_height = float(np.sum(a * lead_heights_m))
    ref_error = float(np.sqrt(np.sum(a**2 * sigma**2)))
    return ref_height, ref_error


def group_leads(along_m: np.ndarray, max_gap_m: float = LEAD_MAX_GAP_M) -> list[np.ndarray]:
    """Group open-water segment indices into leads by along-track proximity."""
    if along_m.size == 0:
        return []
    order = np.argsort(along_m)
    sorted_along = along_m[order]
    breaks = np.flatnonzero(np.diff(sorted_along) > max_gap_m) + 1
    return [np.asarray(g) for g in np.split(order, breaks)]


def window_estimate_scalar(
    method: str,
    along_m: np.ndarray,
    heights_m: np.ndarray,
    errors_m: np.ndarray,
    center_m: float,
) -> tuple[float, float]:
    """Sea-surface height and error of one window from its open-water segments."""
    if method == "minimum":
        idx = int(np.argmin(heights_m))
        return float(heights_m[idx]), float(errors_m[idx])
    if method == "average":
        return float(heights_m.mean()), float(heights_m.std() / np.sqrt(heights_m.size))
    if method == "nearest_minimum":
        threshold = np.quantile(heights_m, 0.25)
        candidates = np.flatnonzero(heights_m <= threshold)
        nearest = candidates[np.argmin(np.abs(along_m[candidates] - center_m))]
        return float(heights_m[nearest]), float(errors_m[nearest])
    if method == "nasa":
        leads = group_leads(along_m)
        lead_heights = np.empty(len(leads))
        lead_errors = np.empty(len(leads))
        for k, lead_idx in enumerate(leads):
            lead_heights[k], lead_errors[k] = nasa_lead_height_arrays(
                heights_m[lead_idx], errors_m[lead_idx]
            )
        return nasa_reference_height_arrays(lead_heights, lead_errors)
    raise ValueError(f"unknown sea-surface method {method!r}")


# ---------------------------------------------------------------------------
# Reference backend: one window at a time
# ---------------------------------------------------------------------------


def window_estimates_reference(
    along_m: np.ndarray,
    height_m: np.ndarray,
    error_m: np.ndarray,
    starts_m: np.ndarray,
    stops_m: np.ndarray,
    centers_m: np.ndarray,
    method: str,
    min_segments: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-window estimates via the original Python loop (ground truth)."""
    n_windows = starts_m.size
    out_h = np.full(n_windows, np.nan)
    out_e = np.full(n_windows, np.nan)
    counts = np.zeros(n_windows, dtype=np.int64)
    for i in range(n_windows):
        lo = int(np.searchsorted(along_m, starts_m[i], side="left"))
        hi = int(np.searchsorted(along_m, stops_m[i], side="right"))
        w_along = along_m[lo:hi]
        w_height = height_m[lo:hi]
        w_error = error_m[lo:hi]
        if w_height.size:
            median = np.median(w_height)
            mad = np.median(np.abs(w_height - median))
            tolerance = max(3.0 * 1.4826 * mad, 0.25)
            keep = np.abs(w_height - median) <= tolerance
            w_along, w_height, w_error = w_along[keep], w_height[keep], w_error[keep]
        counts[i] = w_height.size
        if counts[i] >= min_segments:
            out_h[i], out_e[i] = window_estimate_scalar(
                method, w_along, w_height, w_error, centers_m[i]
            )
    return out_h, out_e, counts


# ---------------------------------------------------------------------------
# Vectorized backend: all windows at once
# ---------------------------------------------------------------------------


def _group_median_sorted(
    values: np.ndarray, offsets: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Median per group over values already sorted within each group.

    Matches ``np.median`` exactly: the middle element for odd counts, the
    mean of the two middle elements for even counts.  Empty groups get NaN.
    """
    med = np.full(counts.size, np.nan)
    nz = counts > 0
    lo = offsets[:-1][nz] + (counts[nz] - 1) // 2
    hi = offsets[:-1][nz] + counts[nz] // 2
    med[nz] = (values[lo] + values[hi]) / 2.0
    return med


def _lerp(a: np.ndarray, b: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Linear interpolation identical to numpy's quantile ``_lerp``."""
    diff = b - a
    out = a + diff * t
    return np.where(t >= 0.5, b - diff * (1 - t), out)


def _group_kth_absdev(
    sorted_h: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    med: np.ndarray,
    k: np.ndarray,
) -> np.ndarray:
    """k-th smallest ``|h - med|`` per group, without sorting the deviations.

    ``sorted_h`` holds each group's heights in ascending order; ``starts``
    and ``counts`` describe non-empty groups.  The k + 1 elements nearest the
    group median form a contiguous run in that order, so the k-th order
    statistic of the deviations is ``min_i max(med - h[i], h[i + k] - med)``
    over run starts ``i`` — the left term is non-increasing and the right
    non-decreasing, so the crossing is found by vectorized binary search
    (one gather per iteration, all groups at once).
    """
    lo = np.zeros(counts.size, dtype=np.int64)
    hi = counts - 1 - k
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        left = med - sorted_h[starts + mid]
        right = sorted_h[starts + mid + k] - med
        cond = left <= right
        hi = np.where(active & cond, mid, hi)
        lo = np.where(active & ~cond, mid + 1, lo)

    def run_max(i: np.ndarray) -> np.ndarray:
        return np.maximum(med - sorted_h[starts + i], sorted_h[starts + i + k] - med)

    best = run_max(lo)
    has_prev = lo > 0
    prev = run_max(np.maximum(lo - 1, 0))
    return np.where(has_prev, np.minimum(best, prev), best)


def _group_min_first(
    values: np.ndarray, win: np.ndarray, offsets: np.ndarray, nonzero: np.ndarray
) -> np.ndarray:
    """Index of the first element attaining each group's minimum value.

    Groups are contiguous runs of ``win``; only groups flagged ``nonzero``
    (non-empty) get an entry.  Ties resolve to the earliest element, exactly
    like ``np.argmin`` over the group slice.
    """
    seg_starts = offsets[:-1][nonzero]
    group_min = np.minimum.reduceat(values, seg_starts)
    slot = np.cumsum(nonzero) - 1  # window -> reduceat slot
    is_min = values == group_min[slot[win]]
    candidates = np.where(is_min, np.arange(values.size), values.size)
    return np.minimum.reduceat(candidates, seg_starts)


def window_estimates_vectorized(
    along_m: np.ndarray,
    height_m: np.ndarray,
    error_m: np.ndarray,
    starts_m: np.ndarray,
    stops_m: np.ndarray,
    centers_m: np.ndarray,
    method: str,
    min_segments: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-window estimates with every step computed across all windows at once."""
    if method not in ("minimum", "average", "nearest_minimum", "nasa"):
        raise ValueError(f"unknown sea-surface method {method!r}")
    n_windows = starts_m.size
    out_h = np.full(n_windows, np.nan)
    out_e = np.full(n_windows, np.nan)

    # (window, segment) membership via searchsorted bounds.  Because windows
    # overlap, a segment may appear in several windows; the expansion factor
    # is bounded by ceil(window_length / step).
    lo = np.searchsorted(along_m, starts_m, side="left")
    hi = np.searchsorted(along_m, stops_m, side="right")
    sizes = (hi - lo).astype(np.int64)
    total = int(sizes.sum())
    if total == 0:
        return out_h, out_e, np.zeros(n_windows, dtype=np.int64)

    win = np.repeat(np.arange(n_windows), sizes)
    offsets = _cumsum0(sizes)
    member = np.arange(total) + np.repeat(lo - offsets[:-1], sizes)
    h = height_m[member]

    # Heights sorted within each window, via a single quicksort of unique
    # integer keys: rank every base segment's height once, then sort
    # window-major composite keys.  (Unstable sort is fine — the sorted view
    # only ever feeds order statistics, which are tie-independent.)
    n_base = along_m.size
    rank = np.empty(n_base, dtype=np.int64)
    rank[np.argsort(height_m)] = np.arange(n_base)
    key = win * n_base + rank[member]
    if n_windows * n_base < np.iinfo(np.int32).max:
        key = key.astype(np.int32)  # int32 quicksort is measurably faster
    perm = np.argsort(key)
    sorted_h = h[perm]

    # MAD outlier rejection, all windows at once.  The median comes from the
    # sorted view; the MAD is the median of |h - med|, computed as two
    # order statistics by binary search instead of a second segmented sort.
    nz = sizes > 0
    med = _group_median_sorted(sorted_h, offsets, sizes)
    mad = np.full(n_windows, np.nan)
    nz_starts = offsets[:-1][nz]
    nz_sizes = sizes[nz]
    nz_med = med[nz]
    d_lo = _group_kth_absdev(sorted_h, nz_starts, nz_sizes, nz_med, (nz_sizes - 1) // 2)
    d_hi = _group_kth_absdev(sorted_h, nz_starts, nz_sizes, nz_med, nz_sizes // 2)
    mad[nz] = (d_lo + d_hi) / 2.0
    absdev = np.abs(h - med[win])
    tolerance = np.maximum(3.0 * 1.4826 * mad, 0.25)
    keep = absdev <= tolerance[win]

    # The kept set is contiguous in height order (|h - med| <= tol selects a
    # run of sorted heights), so filtering both views keeps them consistent.
    # Errors and positions are only gathered for the surviving members.
    kept = np.flatnonzero(keep)
    win_k = win[kept]
    h_k = h[kept]
    counts = np.bincount(win_k, minlength=n_windows)
    valid = counts >= min_segments
    if not valid.any() or win_k.size == 0:
        return out_h, out_e, counts
    member_k = member[kept]
    e_k = error_m[member_k]
    a_k = along_m[member_k]
    offsets_k = _cumsum0(counts)
    nonzero = counts > 0

    if method == "minimum":
        first = _group_min_first(h_k, win_k, offsets_k, nonzero)
        sel = first[(np.cumsum(nonzero) - 1)[valid]]
        out_h[valid] = h_k[sel]
        out_e[valid] = e_k[sel]
        return out_h, out_e, counts

    if method == "average":
        sums = np.bincount(win_k, weights=h_k, minlength=n_windows)
        safe = np.where(nonzero, counts, 1)
        mean = sums / safe
        sq = np.bincount(win_k, weights=(h_k - mean[win_k]) ** 2, minlength=n_windows)
        std = np.sqrt(sq / safe)
        out_h[valid] = mean[valid]
        out_e[valid] = (std / np.sqrt(safe))[valid]
        return out_h, out_e, counts

    if method == "nearest_minimum":
        # Lowest-quartile threshold per window, reproducing np.quantile's
        # linear interpolation over the kept (still height-sorted) run; then
        # the first candidate nearest the window centre.
        sorted_h_k = sorted_h[keep[perm]]
        pos = np.where(valid, 0.25 * (counts - 1), 0.0)
        base = np.floor(pos).astype(np.int64)
        t = pos - base
        upper = np.minimum(base + 1, np.maximum(counts - 1, 0))
        a_q = sorted_h_k[np.minimum(offsets_k[:-1] + base, h_k.size - 1)]
        b_q = sorted_h_k[np.minimum(offsets_k[:-1] + upper, h_k.size - 1)]
        threshold = np.where(valid, _lerp(a_q, b_q, t), np.inf)
        distance = np.where(h_k <= threshold[win_k], np.abs(a_k - centers_m[win_k]), np.inf)
        first = _group_min_first(distance, win_k, offsets_k, nonzero)
        sel = first[(np.cumsum(nonzero) - 1)[valid]]
        out_h[valid] = h_k[sel]
        out_e[valid] = e_k[sel]
        return out_h, out_e, counts

    # NASA: segment the kept membership (window-major, along-track sorted
    # within each window) into leads, then two weighted-bincount reductions —
    # candidates -> leads (eq. 2) and leads -> windows (eq. 3).
    new_window = np.empty(win_k.size, dtype=bool)
    new_window[0] = True
    np.not_equal(win_k[1:], win_k[:-1], out=new_window[1:])
    gap = np.empty(win_k.size, dtype=bool)
    gap[0] = False
    np.greater(a_k[1:] - a_k[:-1], LEAD_MAX_GAP_M, out=gap[1:])
    new_lead = new_window | gap
    lead_id = np.cumsum(new_lead) - 1
    n_leads = int(lead_id[-1]) + 1
    lead_start = np.flatnonzero(new_lead)
    lead_counts = np.diff(np.append(lead_start, win_k.size))
    lead_win = win_k[lead_start]

    sigma = np.maximum(e_k, MIN_SIGMA)
    h_min = np.minimum.reduceat(h_k, lead_start)
    w = np.exp(-(((h_k - h_min[lead_id]) / sigma) ** 2))
    w_total = np.bincount(lead_id, weights=w, minlength=n_leads)
    uniform = w_total <= 0
    if uniform.any():
        # Fully underflowed leads fall back to uniform weights (eq. 2).
        safe_total = np.where(uniform, 1.0, w_total)
        w_norm = np.where(
            uniform[lead_id], 1.0 / lead_counts[lead_id], w / safe_total[lead_id]
        )
    else:
        w_norm = w / w_total[lead_id]
    lead_h = np.bincount(lead_id, weights=w_norm * h_k, minlength=n_leads)
    lead_e = np.sqrt(np.bincount(lead_id, weights=w_norm**2 * sigma**2, minlength=n_leads))

    lead_sigma = np.where(lead_e > MIN_SIGMA, lead_e, MIN_SIGMA)
    inv_var = 1.0 / lead_sigma**2
    inv_total = np.bincount(lead_win, weights=inv_var, minlength=n_windows)
    safe_inv = np.where(inv_total > 0, inv_total, 1.0)
    a_w = inv_var / safe_inv[lead_win]
    ref_h = np.bincount(lead_win, weights=a_w * lead_h, minlength=n_windows)
    ref_e = np.sqrt(np.bincount(lead_win, weights=a_w**2 * lead_sigma**2, minlength=n_windows))
    out_h[valid] = ref_h[valid]
    out_e[valid] = ref_e[valid]
    return out_h, out_e, counts


def window_estimates(
    along_m: np.ndarray,
    height_m: np.ndarray,
    error_m: np.ndarray,
    starts_m: np.ndarray,
    stops_m: np.ndarray,
    centers_m: np.ndarray,
    method: str,
    min_segments: int,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch to the active (or explicitly requested) backend.

    Parameters
    ----------
    along_m, height_m, error_m:
        Open-water candidate segments, sorted by ``along_m``.
    starts_m, stops_m, centers_m:
        The window grid.
    method:
        One of the four sea-surface methods.
    min_segments:
        Minimum surviving open-water segments for a window estimate.
    backend:
        ``"vectorized"``, ``"reference"`` or ``None`` (the global switch).

    Returns
    -------
    tuple
        ``(heights_m, errors_m, counts)`` arrays, one entry per window;
        windows below ``min_segments`` are NaN.
    """
    impl = (
        window_estimates_vectorized
        if resolve_backend(backend) == "vectorized"
        else window_estimates_reference
    )
    return impl(
        along_m, height_m, error_m, starts_m, stops_m, centers_m, method, min_segments
    )
