"""Tile-pyramid overview reductions (reference loop + vectorized).

Both backends implement the same contract: one power-of-two overview step
over a ``(ny, nx)`` Level-3 layer.  Each output cell composites its up-to
four children (the 2x2 block below it; odd-sized grids get phantom children
that never contribute):

* :func:`reduce_mean` — the **count-weighted mean** of the contributing
  children, plus the summed contributing weights.  A child contributes iff
  its weight is positive *and* its value is finite, so NaN cells (empty, or
  below the ``min_segments`` floor) never poison an overview — the pyramid
  is NaN-aware by construction.  An output cell with no contributors is NaN
  with weight 0, never garbage.
* :func:`reduce_coverage` — the plain **area mean** of the children's
  coverage fractions (phantom children count as uncovered), so level-``k``
  coverage is always the fraction of *base* cells covered under the output
  cell's footprint.

Both backends accumulate the four children in the same row-major order
(``(2i, 2j)``, ``(2i, 2j+1)``, ``(2i+1, 2j)``, ``(2i+1, 2j+1)``) with
non-contributing terms as exact ``0.0``, so the backends agree **bit for
bit** — adding ``0.0`` is exact in IEEE double — and are equivalence-tested
to 1e-10 in ``tests/test_kernels_pyramid.py`` (including all-NaN and
single-cell inputs).

The reference backend loops over output cells; the vectorized backend
strides the padded layer into its four child planes and reduces them with
whole-array arithmetic.  ``benchmarks/bench_pyramid.py`` holds the measured
speedup against the committed baseline with a >= 3x acceptance floor.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import resolve_backend


def _prepare(values: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    vals = np.asarray(values, dtype=float)
    wts = np.asarray(weights, dtype=float)
    if vals.ndim != 2 or wts.shape != vals.shape:
        raise ValueError(
            "values and weights must be 2-D arrays of the same shape, got "
            f"{vals.shape} vs {wts.shape}"
        )
    if wts.size and (not np.isfinite(wts).all() or (wts < 0).any()):
        raise ValueError("weights must be finite and non-negative")
    return vals, wts


def reduced_shape(shape: tuple[int, int]) -> tuple[int, int]:
    """Shape of one overview step: ceil-halved rows and columns."""
    ny, nx = shape
    if ny < 1 or nx < 1:
        raise ValueError(f"cannot reduce an empty layer of shape {shape}")
    return (ny + 1) // 2, (nx + 1) // 2


# ---------------------------------------------------------------------------
# Reference backend: the per-output-cell recipe
# ---------------------------------------------------------------------------


def reduce_mean_reference(
    values: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Count-weighted 2x2 reduction, looping over output cells."""
    vals, wts = _prepare(values, weights)
    ny, nx = vals.shape
    out_ny, out_nx = reduced_shape(vals.shape)
    out_values = np.full((out_ny, out_nx), np.nan)
    out_weights = np.zeros((out_ny, out_nx))
    for i in range(out_ny):
        for j in range(out_nx):
            num = 0.0
            den = 0.0
            for ci, cj in (
                (2 * i, 2 * j),
                (2 * i, 2 * j + 1),
                (2 * i + 1, 2 * j),
                (2 * i + 1, 2 * j + 1),
            ):
                if ci >= ny or cj >= nx:
                    continue
                weight = wts[ci, cj]
                value = vals[ci, cj]
                if weight > 0 and np.isfinite(value):
                    num += weight * value
                    den += weight
            if den > 0:
                out_values[i, j] = num / den
                out_weights[i, j] = den
    return out_values, out_weights


def reduce_coverage_reference(coverage: np.ndarray) -> np.ndarray:
    """Area-mean 2x2 reduction of coverage fractions, looping over cells."""
    cov = np.asarray(coverage, dtype=float)
    if cov.ndim != 2:
        raise ValueError(f"coverage must be a 2-D array, got shape {cov.shape}")
    if cov.size and (not np.isfinite(cov).all() or (cov < 0).any() or (cov > 1).any()):
        raise ValueError("coverage fractions must be finite and in [0, 1]")
    ny, nx = cov.shape
    out_ny, out_nx = reduced_shape(cov.shape)
    out = np.zeros((out_ny, out_nx))
    for i in range(out_ny):
        for j in range(out_nx):
            total = 0.0
            for ci, cj in (
                (2 * i, 2 * j),
                (2 * i, 2 * j + 1),
                (2 * i + 1, 2 * j),
                (2 * i + 1, 2 * j + 1),
            ):
                if ci < ny and cj < nx:
                    total += cov[ci, cj]
            out[i, j] = total / 4.0
    return out


# ---------------------------------------------------------------------------
# Vectorized backend: the four child planes at once
# ---------------------------------------------------------------------------


def _child_planes(layer: np.ndarray, fill: float) -> tuple[np.ndarray, ...]:
    """The four 2x2-block child planes of a layer, padded to even dims."""
    ny, nx = layer.shape
    padded = np.full((ny + ny % 2, nx + nx % 2), fill)
    padded[:ny, :nx] = layer
    return (
        padded[0::2, 0::2],
        padded[0::2, 1::2],
        padded[1::2, 0::2],
        padded[1::2, 1::2],
    )


def reduce_mean_vectorized(
    values: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Count-weighted 2x2 reduction over the four strided child planes.

    Non-contributing children (phantom padding, zero weight, non-finite
    value) enter the sums as exact ``0.0`` in the reference backend's
    accumulation order, so the result is bit-identical to the loop.
    """
    vals, wts = _prepare(values, weights)
    v00, v01, v10, v11 = _child_planes(vals, np.nan)
    w00, w01, w10, w11 = _child_planes(wts, 0.0)

    terms = []
    contribs = []
    for v, w in ((v00, w00), (v01, w01), (v10, w10), (v11, w11)):
        mask = (w > 0) & np.isfinite(v)
        contrib = np.where(mask, w, 0.0)
        contribs.append(contrib)
        terms.append(np.where(mask, w * v, 0.0))
    num = ((terms[0] + terms[1]) + terms[2]) + terms[3]
    den = ((contribs[0] + contribs[1]) + contribs[2]) + contribs[3]
    with np.errstate(invalid="ignore", divide="ignore"):
        out_values = np.where(den > 0, num / den, np.nan)
    return out_values, den


def reduce_coverage_vectorized(coverage: np.ndarray) -> np.ndarray:
    """Area-mean 2x2 reduction over the four strided child planes."""
    cov = np.asarray(coverage, dtype=float)
    if cov.ndim != 2:
        raise ValueError(f"coverage must be a 2-D array, got shape {cov.shape}")
    if cov.size and (not np.isfinite(cov).all() or (cov < 0).any() or (cov > 1).any()):
        raise ValueError("coverage fractions must be finite and in [0, 1]")
    c00, c01, c10, c11 = _child_planes(cov, 0.0)
    return (((c00 + c01) + c10) + c11) / 4.0


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def reduce_mean(
    values: np.ndarray, weights: np.ndarray, backend: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """One count-weighted overview step via the active kernel backend."""
    if resolve_backend(backend) == "vectorized":
        return reduce_mean_vectorized(values, weights)
    return reduce_mean_reference(values, weights)


def reduce_coverage(coverage: np.ndarray, backend: str | None = None) -> np.ndarray:
    """One coverage-fraction overview step via the active kernel backend."""
    if resolve_backend(backend) == "vectorized":
        return reduce_coverage_vectorized(coverage)
    return reduce_coverage_reference(coverage)
