"""Filling sea-surface windows that contain no open water.

The paper: "if there is no open water for a particular window, we do a linear
interpolation with respect to the nearest local sea surface to derive the
local sea surface for that area."  This module provides that interpolation
over the window sequence, plus evaluation of the resulting piecewise-linear
sea surface at arbitrary along-track positions (needed to subtract it from
every 2 m segment).
"""

from __future__ import annotations

import numpy as np

from repro.freeboard.sea_surface import SeaSurfaceEstimate, WindowSeaSurface


def interpolate_missing_windows(estimate: SeaSurfaceEstimate) -> SeaSurfaceEstimate:
    """Fill NaN windows by linear interpolation between valid neighbours.

    Windows before the first (after the last) valid window are filled with
    the first (last) valid height — constant extrapolation, since there is no
    second anchor to define a slope.  Errors of interpolated windows are the
    mean of the neighbouring valid errors inflated by 50 % to reflect the
    extra uncertainty.  Raises ``ValueError`` when no window is valid.
    """
    centers = estimate.centers_m
    heights = estimate.heights_m
    errors = estimate.errors_m
    valid = np.isfinite(heights)
    if not valid.any():
        raise ValueError(
            "no window contains enough open water to anchor the sea surface; "
            "the track has no leads"
        )
    if valid.all():
        return estimate

    filled_heights = heights.copy()
    filled_errors = errors.copy()
    filled_heights[~valid] = np.interp(centers[~valid], centers[valid], heights[valid])
    mean_valid_error = float(np.nanmean(errors[valid])) if np.isfinite(errors[valid]).any() else 0.05
    filled_errors[~valid] = 1.5 * mean_valid_error

    windows = [
        WindowSeaSurface(
            center_m=w.center_m,
            start_m=w.start_m,
            stop_m=w.stop_m,
            height_m=float(filled_heights[i]),
            error_m=float(filled_errors[i]),
            n_open_water=w.n_open_water,
            interpolated=not bool(valid[i]),
        )
        for i, w in enumerate(estimate.windows)
    ]
    return SeaSurfaceEstimate(method=estimate.method, windows=windows)


def sea_surface_at(
    estimate: SeaSurfaceEstimate, along_track_m: np.ndarray
) -> np.ndarray:
    """Evaluate the (filled) sea surface at arbitrary along-track positions.

    The window estimates define a piecewise-linear function of along-track
    distance through the window centres; positions beyond the first/last
    centre use the nearest window's height.  Windows still containing NaN
    (call :func:`interpolate_missing_windows` first) are ignored.
    """
    centers = estimate.centers_m
    heights = estimate.heights_m
    valid = np.isfinite(heights)
    if not valid.any():
        raise ValueError("sea-surface estimate has no valid windows")
    s = np.asarray(along_track_m, dtype=float)
    return np.interp(s, centers[valid], heights[valid])
