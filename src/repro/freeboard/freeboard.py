"""Freeboard computation: ``hf = hs - href`` over classified 2 m segments.

Freeboard is only defined for ice segments (thick or thin ice); open-water
segments get zero freeboard by construction, and negative freeboards (ice
apparently below the local sea surface, caused by noise in either term) are
clipped to zero as in the operational product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER, DEFAULT_SEA_SURFACE, SeaSurfaceConfig
from repro.freeboard.interpolation import interpolate_missing_windows, sea_surface_at
from repro.freeboard.sea_surface import SeaSurfaceEstimate, estimate_sea_surface
from repro.resampling.window import SegmentArray
from repro.utils.validation import ensure_same_length


@dataclass
class FreeboardResult:
    """Freeboard of every classified segment along a track."""

    along_track_m: np.ndarray
    freeboard_m: np.ndarray
    sea_surface_m: np.ndarray
    labels: np.ndarray
    sea_surface: SeaSurfaceEstimate
    clip_negative: bool = True

    @property
    def n_segments(self) -> int:
        return int(self.along_track_m.shape[0])

    def ice_mask(self) -> np.ndarray:
        """Segments that are ice (freeboard is physically meaningful)."""
        return (self.labels != CLASS_OPEN_WATER) & np.isfinite(self.freeboard_m)

    def mean_freeboard_m(self) -> float:
        """Mean freeboard over ice segments."""
        mask = self.ice_mask()
        if not mask.any():
            return 0.0
        return float(self.freeboard_m[mask].mean())

    def distribution(self, bin_width_m: float = 0.02, max_freeboard_m: float = 1.5) -> tuple[np.ndarray, np.ndarray]:
        """Histogram (bin centres, normalised density) of ice freeboards.

        Used to regenerate the paper's freeboard-distribution panels
        (Figs. 10c / 11c).
        """
        if bin_width_m <= 0 or max_freeboard_m <= 0:
            raise ValueError("bin width and maximum freeboard must be positive")
        mask = self.ice_mask()
        edges = np.arange(0.0, max_freeboard_m + bin_width_m, bin_width_m)
        counts, _ = np.histogram(self.freeboard_m[mask], bins=edges)
        density = counts / max(counts.sum(), 1)
        centres = 0.5 * (edges[:-1] + edges[1:])
        return centres, density


@dataclass
class TrackSeaSurface:
    """Sea-surface reference of one classified track.

    The intermediate product between sea-surface estimation and freeboard
    subtraction — the stage-graph engine caches it independently so a
    sea-surface-method sweep never re-runs classification, and a freeboard
    re-run never re-estimates an unchanged surface.
    """

    estimate: SeaSurfaceEstimate
    reference_m: np.ndarray


def estimate_track_sea_surface(
    segments: SegmentArray,
    labels: np.ndarray,
    method: str = "nasa",
    config: SeaSurfaceConfig = DEFAULT_SEA_SURFACE,
) -> TrackSeaSurface:
    """Estimate the local sea surface along one classified track.

    Estimates the surface from the open-water segments in 10 km sliding
    windows, interpolates windows without open water, and evaluates the
    resulting surface at every segment centre.
    """
    labels = np.asarray(labels)
    ensure_same_length(segments.center_along_track_m, labels, names=("segments", "labels"))

    estimate = estimate_sea_surface(
        segments.center_along_track_m,
        segments.height_mean_m,
        segments.height_error_m(),
        labels,
        method=method,
        config=config,
    )
    estimate = interpolate_missing_windows(estimate)
    reference = sea_surface_at(estimate, segments.center_along_track_m)
    return TrackSeaSurface(estimate=estimate, reference_m=reference)


def freeboard_from_sea_surface(
    segments: SegmentArray,
    labels: np.ndarray,
    surface: TrackSeaSurface,
    clip_negative: bool = True,
) -> FreeboardResult:
    """Subtract an already-estimated sea surface: ``hf = hs - href``."""
    labels = np.asarray(labels)
    ensure_same_length(segments.center_along_track_m, labels, names=("segments", "labels"))

    freeboard = segments.height_mean_m - surface.reference_m
    # Open water is the reference surface itself.
    freeboard = np.where(labels == CLASS_OPEN_WATER, 0.0, freeboard)
    if clip_negative:
        freeboard = np.clip(freeboard, 0.0, None)

    return FreeboardResult(
        along_track_m=segments.center_along_track_m,
        freeboard_m=freeboard,
        sea_surface_m=surface.reference_m,
        labels=labels,
        sea_surface=surface.estimate,
        clip_negative=clip_negative,
    )


def compute_freeboard(
    segments: SegmentArray,
    labels: np.ndarray,
    method: str = "nasa",
    config: SeaSurfaceConfig = DEFAULT_SEA_SURFACE,
    clip_negative: bool = True,
) -> FreeboardResult:
    """Compute per-segment freeboard from classified 2 m segments.

    Steps (paper Section III.D): estimate the local sea surface from the
    open-water segments in 10 km sliding windows, interpolate windows without
    open water, evaluate the sea surface at every segment and subtract it
    from the segment's surface height.  Composes
    :func:`estimate_track_sea_surface` and :func:`freeboard_from_sea_surface`,
    which the stage-graph engine also runs as separate cacheable stages.

    Parameters
    ----------
    segments:
        Resampled 2 m segments.
    labels:
        Per-segment classes from the classifier (or auto-labels).
    method:
        Sea-surface estimation method (``"nasa"`` is the paper's choice).
    clip_negative:
        Clip negative freeboards to zero (operational behaviour).
    """
    surface = estimate_track_sea_surface(segments, labels, method=method, config=config)
    return freeboard_from_sea_surface(segments, labels, surface, clip_negative=clip_negative)
