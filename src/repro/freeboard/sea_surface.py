"""Local sea-surface height estimation from open-water segments.

The paper evaluates four estimators of the local sea surface within 10 km
sliding windows (5 km overlap), using the segments classified as open water:

1. **minimum** — the minimum open-water elevation in the window;
2. **average** — the mean open-water elevation in the window;
3. **nearest-minimum** — the elevation of the open-water segment closest to
   the window centre among the lowest ones;
4. **nasa** — the ATL07/ATL10 ATBD formulation: open-water segments are
   grouped into *leads*, each lead's height is an error-weighted mean of its
   candidate segments (paper eq. 2), and the window's reference height is
   the inverse-variance weighted combination of its leads (paper eq. 3).

The paper selects the NASA formulation because it produces the smoothest sea
surface; the ablation benchmark quantifies that choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER, DEFAULT_SEA_SURFACE, SeaSurfaceConfig
from repro.kernels import sea_surface as _kernels
from repro.utils.validation import ensure_1d, ensure_same_length

#: Names of the supported estimation methods.
SEA_SURFACE_METHODS = ("minimum", "average", "nearest_minimum", "nasa")


@dataclass
class WindowSeaSurface:
    """Sea-surface estimate of a single along-track window."""

    center_m: float
    start_m: float
    stop_m: float
    height_m: float
    error_m: float
    n_open_water: int
    interpolated: bool = False


@dataclass
class SeaSurfaceEstimate:
    """Sea-surface estimates for all windows along a track."""

    method: str
    windows: list[WindowSeaSurface]

    @property
    def centers_m(self) -> np.ndarray:
        return np.array([w.center_m for w in self.windows])

    @property
    def heights_m(self) -> np.ndarray:
        return np.array([w.height_m for w in self.windows])

    @property
    def errors_m(self) -> np.ndarray:
        return np.array([w.error_m for w in self.windows])

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def valid_mask(self) -> np.ndarray:
        return np.isfinite(self.heights_m)

    def smoothness(self) -> float:
        """RMS of consecutive window-height differences (lower is smoother).

        This is the criterion the paper uses qualitatively ("a smoother local
        sea surface") to prefer the NASA formulation; NaN windows are skipped.
        """
        h = self.heights_m
        valid = np.isfinite(h)
        h = h[valid]
        if h.size < 2:
            return 0.0
        return float(np.sqrt(np.mean(np.diff(h) ** 2)))


# ---------------------------------------------------------------------------
# NASA ATBD lead / reference-height equations (paper eq. 2 and 3)
# ---------------------------------------------------------------------------


def nasa_lead_height(
    heights_m: np.ndarray, errors_m: np.ndarray
) -> tuple[float, float]:
    """Weighted lead height and error from candidate open-water segments.

    Implements the paper's equation (2): weights
    ``w_i = exp(-((h_i - h_min) / sigma_i)^2)`` normalised to sum to one,
    ``h_lead = sum(a_i h_i)`` and ``sigma^2_lead = sum(a_i^2 sigma_i^2)``.
    """
    h = ensure_1d(np.asarray(heights_m, dtype=float), "heights_m")
    sigma = ensure_1d(np.asarray(errors_m, dtype=float), "errors_m")
    ensure_same_length(h, sigma, names=("heights_m", "errors_m"))
    if h.size == 0:
        raise ValueError("a lead needs at least one candidate segment")
    if np.any(sigma < 0):
        raise ValueError("errors must be non-negative")
    return _kernels.nasa_lead_height_arrays(h, sigma)


def nasa_reference_height(
    lead_heights_m: np.ndarray, lead_errors_m: np.ndarray
) -> tuple[float, float]:
    """Window reference height from its leads (paper equation 3).

    Leads are combined with inverse-variance weights
    ``a_i = (1/sigma_i^2) / sum_j (1/sigma_j^2)``.
    """
    h = ensure_1d(np.asarray(lead_heights_m, dtype=float), "lead_heights_m")
    sigma = ensure_1d(np.asarray(lead_errors_m, dtype=float), "lead_errors_m")
    ensure_same_length(h, sigma, names=("lead_heights_m", "lead_errors_m"))
    if h.size == 0:
        raise ValueError("a window needs at least one lead")
    return _kernels.nasa_reference_height_arrays(h, sigma)


# ---------------------------------------------------------------------------
# Track-level estimation
# ---------------------------------------------------------------------------


def estimate_sea_surface(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    height_error_m: np.ndarray,
    labels: np.ndarray,
    method: str = "nasa",
    config: SeaSurfaceConfig = DEFAULT_SEA_SURFACE,
    fallback_lowest_quantile: float | None = 0.02,
) -> SeaSurfaceEstimate:
    """Estimate the local sea surface along a classified track.

    Parameters
    ----------
    along_track_m, height_m, height_error_m:
        Per-segment along-track position, mean height and height error
        (standard deviation of the 2 m segment).
    labels:
        Per-segment surface classes; only ``CLASS_OPEN_WATER`` segments
        contribute to the estimates.
    method:
        One of :data:`SEA_SURFACE_METHODS`.
    config:
        Window length / overlap configuration (10 km windows sliding by 5 km
        in the paper).
    fallback_lowest_quantile:
        If no window along the whole track contains enough open water (e.g.
        the classifier found no leads, or a coarse baseline product diluted
        them away), the segments whose heights fall in this lowest quantile
        are treated as sea-surface candidates instead, mirroring the
        operational products' lowest-surface fallback.  Pass ``None`` to
        disable and get all-NaN windows in that case.

    Returns
    -------
    SeaSurfaceEstimate
        One :class:`WindowSeaSurface` per window.  Windows with fewer than
        ``config.min_open_water_segments`` open-water segments get NaN
        heights; fill them with
        :func:`repro.freeboard.interpolation.interpolate_missing_windows`.
    """
    if method not in SEA_SURFACE_METHODS:
        raise ValueError(f"unknown sea-surface method {method!r}; choose from {SEA_SURFACE_METHODS}")
    along = ensure_1d(np.asarray(along_track_m, dtype=float), "along_track_m")
    height = ensure_1d(np.asarray(height_m, dtype=float), "height_m")
    error = ensure_1d(np.asarray(height_error_m, dtype=float), "height_error_m")
    lab = ensure_1d(np.asarray(labels), "labels")
    ensure_same_length(along, height, error, lab, names=("along_track_m", "height_m", "height_error_m", "labels"))
    if along.size == 0:
        raise ValueError("cannot estimate a sea surface from zero segments")

    step = config.window_length_m - config.window_overlap_m
    start = float(along.min())
    stop = float(along.max())
    n_windows = max(int(np.ceil((stop - start) / step)), 1)

    def build_windows(water_mask: np.ndarray) -> list[WindowSeaSurface]:
        water_along = along[water_mask]
        water_height = height[water_mask]
        # Floor the per-segment error at 2 cm: a zero error (e.g. a segment
        # with a single photon, whose sample std is 0) would otherwise make
        # the NASA weighting collapse onto the minimum height and bias the
        # sea surface low.
        water_error = np.clip(
            np.where(np.isfinite(error[water_mask]), error[water_mask], 0.05), 0.02, None
        )

        # Sorted view for fast windowed slicing.
        order = np.argsort(water_along)
        water_along = water_along[order]
        water_height = water_height[order]
        water_error = water_error[order]

        # The window grid; the per-window work (searchsorted bounds, MAD
        # outlier rejection against the window's median water height, and the
        # method estimate itself) runs in the kernel layer — vectorized
        # across all windows at once by default, or one window at a time
        # under the "reference" backend (see repro.kernels).
        starts = start + np.arange(n_windows) * step
        stops = starts + config.window_length_m
        centers = 0.5 * (starts + stops)
        heights, errors, counts = _kernels.window_estimates(
            water_along,
            water_height,
            water_error,
            starts,
            stops,
            centers,
            method,
            config.min_open_water_segments,
        )
        return [
            WindowSeaSurface(
                float(centers[i]),
                float(starts[i]),
                float(stops[i]),
                float(heights[i]),
                float(errors[i]),
                int(counts[i]),
            )
            for i in range(n_windows)
        ]

    water_mask = (lab == CLASS_OPEN_WATER) & np.isfinite(height)
    windows = build_windows(water_mask)

    # Fallback: when not a single window can be anchored on classified open
    # water, treat the lowest-height segments as sea-surface candidates
    # (the operational products' lowest-surface fallback).
    if fallback_lowest_quantile is not None and not any(
        np.isfinite(w.height_m) for w in windows
    ):
        finite = np.isfinite(height)
        if finite.any():
            threshold = np.quantile(height[finite], fallback_lowest_quantile)
            fallback_mask = finite & (height <= threshold)
            if fallback_mask.sum() >= config.min_open_water_segments:
                windows = build_windows(fallback_mask)

    return SeaSurfaceEstimate(method=method, windows=windows)
