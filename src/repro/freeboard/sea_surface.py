"""Local sea-surface height estimation from open-water segments.

The paper evaluates four estimators of the local sea surface within 10 km
sliding windows (5 km overlap), using the segments classified as open water:

1. **minimum** — the minimum open-water elevation in the window;
2. **average** — the mean open-water elevation in the window;
3. **nearest-minimum** — the elevation of the open-water segment closest to
   the window centre among the lowest ones;
4. **nasa** — the ATL07/ATL10 ATBD formulation: open-water segments are
   grouped into *leads*, each lead's height is an error-weighted mean of its
   candidate segments (paper eq. 2), and the window's reference height is
   the inverse-variance weighted combination of its leads (paper eq. 3).

The paper selects the NASA formulation because it produces the smoothest sea
surface; the ablation benchmark quantifies that choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER, DEFAULT_SEA_SURFACE, SeaSurfaceConfig
from repro.utils.validation import ensure_1d, ensure_same_length

#: Names of the supported estimation methods.
SEA_SURFACE_METHODS = ("minimum", "average", "nearest_minimum", "nasa")


@dataclass
class WindowSeaSurface:
    """Sea-surface estimate of a single along-track window."""

    center_m: float
    start_m: float
    stop_m: float
    height_m: float
    error_m: float
    n_open_water: int
    interpolated: bool = False


@dataclass
class SeaSurfaceEstimate:
    """Sea-surface estimates for all windows along a track."""

    method: str
    windows: list[WindowSeaSurface]

    @property
    def centers_m(self) -> np.ndarray:
        return np.array([w.center_m for w in self.windows])

    @property
    def heights_m(self) -> np.ndarray:
        return np.array([w.height_m for w in self.windows])

    @property
    def errors_m(self) -> np.ndarray:
        return np.array([w.error_m for w in self.windows])

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def valid_mask(self) -> np.ndarray:
        return np.isfinite(self.heights_m)

    def smoothness(self) -> float:
        """RMS of consecutive window-height differences (lower is smoother).

        This is the criterion the paper uses qualitatively ("a smoother local
        sea surface") to prefer the NASA formulation; NaN windows are skipped.
        """
        h = self.heights_m
        valid = np.isfinite(h)
        h = h[valid]
        if h.size < 2:
            return 0.0
        return float(np.sqrt(np.mean(np.diff(h) ** 2)))


# ---------------------------------------------------------------------------
# NASA ATBD lead / reference-height equations (paper eq. 2 and 3)
# ---------------------------------------------------------------------------


def nasa_lead_height(
    heights_m: np.ndarray, errors_m: np.ndarray
) -> tuple[float, float]:
    """Weighted lead height and error from candidate open-water segments.

    Implements the paper's equation (2): weights
    ``w_i = exp(-((h_i - h_min) / sigma_i)^2)`` normalised to sum to one,
    ``h_lead = sum(a_i h_i)`` and ``sigma^2_lead = sum(a_i^2 sigma_i^2)``.
    """
    h = ensure_1d(np.asarray(heights_m, dtype=float), "heights_m")
    sigma = ensure_1d(np.asarray(errors_m, dtype=float), "errors_m")
    ensure_same_length(h, sigma, names=("heights_m", "errors_m"))
    if h.size == 0:
        raise ValueError("a lead needs at least one candidate segment")
    if np.any(sigma < 0):
        raise ValueError("errors must be non-negative")
    sigma = np.where(sigma > 1e-6, sigma, 1e-6)

    h_min = h.min()
    w = np.exp(-(((h - h_min) / sigma) ** 2))
    total = w.sum()
    if total <= 0:
        w = np.full(h.shape, 1.0 / h.size)
    else:
        w = w / total
    lead_height = float(np.sum(w * h))
    lead_error = float(np.sqrt(np.sum(w**2 * sigma**2)))
    return lead_height, lead_error


def nasa_reference_height(
    lead_heights_m: np.ndarray, lead_errors_m: np.ndarray
) -> tuple[float, float]:
    """Window reference height from its leads (paper equation 3).

    Leads are combined with inverse-variance weights
    ``a_i = (1/sigma_i^2) / sum_j (1/sigma_j^2)``.
    """
    h = ensure_1d(np.asarray(lead_heights_m, dtype=float), "lead_heights_m")
    sigma = ensure_1d(np.asarray(lead_errors_m, dtype=float), "lead_errors_m")
    ensure_same_length(h, sigma, names=("lead_heights_m", "lead_errors_m"))
    if h.size == 0:
        raise ValueError("a window needs at least one lead")
    sigma = np.where(sigma > 1e-6, sigma, 1e-6)
    inv_var = 1.0 / sigma**2
    a = inv_var / inv_var.sum()
    ref_height = float(np.sum(a * h))
    ref_error = float(np.sqrt(np.sum(a**2 * sigma**2)))
    return ref_height, ref_error


def _group_leads(
    along_m: np.ndarray, max_gap_m: float = 100.0
) -> list[np.ndarray]:
    """Group open-water segment indices into leads by along-track proximity.

    Consecutive open-water segments separated by less than ``max_gap_m``
    belong to the same lead (a physical crack is a contiguous stretch of open
    water).  Returns a list of index arrays into the input.
    """
    if along_m.size == 0:
        return []
    order = np.argsort(along_m)
    sorted_along = along_m[order]
    breaks = np.flatnonzero(np.diff(sorted_along) > max_gap_m) + 1
    groups = np.split(order, breaks)
    return [np.asarray(g) for g in groups]


# ---------------------------------------------------------------------------
# Window-level estimation
# ---------------------------------------------------------------------------


def _window_estimate(
    method: str,
    along_m: np.ndarray,
    heights_m: np.ndarray,
    errors_m: np.ndarray,
    center_m: float,
) -> tuple[float, float]:
    """Sea-surface height and error of one window from its open-water segments."""
    if method == "minimum":
        idx = int(np.argmin(heights_m))
        return float(heights_m[idx]), float(errors_m[idx])
    if method == "average":
        return float(heights_m.mean()), float(heights_m.std() / np.sqrt(heights_m.size))
    if method == "nearest_minimum":
        # Among the lowest quartile of open-water heights, pick the segment
        # closest to the window centre.
        threshold = np.quantile(heights_m, 0.25)
        candidates = np.flatnonzero(heights_m <= threshold)
        nearest = candidates[np.argmin(np.abs(along_m[candidates] - center_m))]
        return float(heights_m[nearest]), float(errors_m[nearest])
    if method == "nasa":
        leads = _group_leads(along_m)
        lead_heights = []
        lead_errors = []
        for lead_idx in leads:
            lh, le = nasa_lead_height(heights_m[lead_idx], errors_m[lead_idx])
            lead_heights.append(lh)
            lead_errors.append(le)
        return nasa_reference_height(np.array(lead_heights), np.array(lead_errors))
    raise ValueError(f"unknown sea-surface method {method!r}; choose from {SEA_SURFACE_METHODS}")


def estimate_sea_surface(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    height_error_m: np.ndarray,
    labels: np.ndarray,
    method: str = "nasa",
    config: SeaSurfaceConfig = DEFAULT_SEA_SURFACE,
    fallback_lowest_quantile: float | None = 0.02,
) -> SeaSurfaceEstimate:
    """Estimate the local sea surface along a classified track.

    Parameters
    ----------
    along_track_m, height_m, height_error_m:
        Per-segment along-track position, mean height and height error
        (standard deviation of the 2 m segment).
    labels:
        Per-segment surface classes; only ``CLASS_OPEN_WATER`` segments
        contribute to the estimates.
    method:
        One of :data:`SEA_SURFACE_METHODS`.
    config:
        Window length / overlap configuration (10 km windows sliding by 5 km
        in the paper).
    fallback_lowest_quantile:
        If no window along the whole track contains enough open water (e.g.
        the classifier found no leads, or a coarse baseline product diluted
        them away), the segments whose heights fall in this lowest quantile
        are treated as sea-surface candidates instead, mirroring the
        operational products' lowest-surface fallback.  Pass ``None`` to
        disable and get all-NaN windows in that case.

    Returns
    -------
    SeaSurfaceEstimate
        One :class:`WindowSeaSurface` per window.  Windows with fewer than
        ``config.min_open_water_segments`` open-water segments get NaN
        heights; fill them with
        :func:`repro.freeboard.interpolation.interpolate_missing_windows`.
    """
    if method not in SEA_SURFACE_METHODS:
        raise ValueError(f"unknown sea-surface method {method!r}; choose from {SEA_SURFACE_METHODS}")
    along = ensure_1d(np.asarray(along_track_m, dtype=float), "along_track_m")
    height = ensure_1d(np.asarray(height_m, dtype=float), "height_m")
    error = ensure_1d(np.asarray(height_error_m, dtype=float), "height_error_m")
    lab = ensure_1d(np.asarray(labels), "labels")
    ensure_same_length(along, height, error, lab, names=("along_track_m", "height_m", "height_error_m", "labels"))
    if along.size == 0:
        raise ValueError("cannot estimate a sea surface from zero segments")

    step = config.window_length_m - config.window_overlap_m
    start = float(along.min())
    stop = float(along.max())
    n_windows = max(int(np.ceil((stop - start) / step)), 1)

    def build_windows(water_mask: np.ndarray) -> list[WindowSeaSurface]:
        water_along = along[water_mask]
        water_height = height[water_mask]
        # Floor the per-segment error at 2 cm: a zero error (e.g. a segment
        # with a single photon, whose sample std is 0) would otherwise make
        # the NASA weighting collapse onto the minimum height and bias the
        # sea surface low.
        water_error = np.clip(
            np.where(np.isfinite(error[water_mask]), error[water_mask], 0.05), 0.02, None
        )

        # Sorted view for fast windowed slicing.
        order = np.argsort(water_along)
        water_along = water_along[order]
        water_height = water_height[order]
        water_error = water_error[order]

        windows: list[WindowSeaSurface] = []
        for i in range(n_windows):
            w_start = start + i * step
            w_stop = w_start + config.window_length_m
            center = 0.5 * (w_start + w_stop)
            lo = int(np.searchsorted(water_along, w_start, side="left"))
            hi = int(np.searchsorted(water_along, w_stop, side="right"))
            w_along = water_along[lo:hi]
            w_height = water_height[lo:hi]
            w_error = water_error[lo:hi]
            # Outlier rejection (the ATBD filters sea-surface candidates):
            # discard segments far from the window's median water height —
            # typically empty-ish segments whose "height" is a stray
            # background photon metres below the surface.
            if w_height.size:
                median = np.median(w_height)
                mad = np.median(np.abs(w_height - median))
                tolerance = max(3.0 * 1.4826 * mad, 0.25)
                keep = np.abs(w_height - median) <= tolerance
                w_along, w_height, w_error = w_along[keep], w_height[keep], w_error[keep]
            count = int(w_height.size)
            if count >= config.min_open_water_segments:
                h, e = _window_estimate(method, w_along, w_height, w_error, center)
                windows.append(WindowSeaSurface(center, w_start, w_stop, h, e, count))
            else:
                windows.append(
                    WindowSeaSurface(center, w_start, w_stop, np.nan, np.nan, count)
                )
        return windows

    water_mask = (lab == CLASS_OPEN_WATER) & np.isfinite(height)
    windows = build_windows(water_mask)

    # Fallback: when not a single window can be anchored on classified open
    # water, treat the lowest-height segments as sea-surface candidates
    # (the operational products' lowest-surface fallback).
    if fallback_lowest_quantile is not None and not any(
        np.isfinite(w.height_m) for w in windows
    ):
        finite = np.isfinite(height)
        if finite.any():
            threshold = np.quantile(height[finite], fallback_lowest_quantile)
            fallback_mask = finite & (height <= threshold)
            if fallback_mask.sum() >= config.min_open_water_segments:
                windows = build_windows(fallback_mask)

    return SeaSurfaceEstimate(method=method, windows=windows)
