"""Local sea-surface detection and freeboard retrieval (paper Section III.D).

* :mod:`repro.freeboard.sea_surface` — the four local sea-surface estimators
  (minimum, average, nearest-minimum and the NASA ATBD weighted-lead
  equations) applied in 10 km sliding windows with 5 km overlap;
* :mod:`repro.freeboard.interpolation` — linear interpolation of windows
  without open water from their neighbours;
* :mod:`repro.freeboard.freeboard` — the freeboard computation
  ``hf = hs - href`` over classified 2 m segments;
* :mod:`repro.freeboard.comparison` — comparison utilities against the
  emulated ATL07/ATL10 products (distributions, point densities);
* :mod:`repro.freeboard.parallel` — the map-reduce-parallel freeboard job
  used by the Table V scaling experiment.
"""

from repro.freeboard.sea_surface import (
    SEA_SURFACE_METHODS,
    SeaSurfaceEstimate,
    WindowSeaSurface,
    estimate_sea_surface,
    nasa_lead_height,
    nasa_reference_height,
)
from repro.freeboard.interpolation import interpolate_missing_windows, sea_surface_at
from repro.freeboard.freeboard import (
    FreeboardResult,
    TrackSeaSurface,
    compute_freeboard,
    estimate_track_sea_surface,
    freeboard_from_sea_surface,
)
from repro.freeboard.comparison import FreeboardComparison, compare_freeboards, point_density
from repro.freeboard.parallel import parallel_freeboard
from repro.freeboard.thickness import (
    ThicknessResult,
    one_layer_method,
    thickness_from_freeboard,
)

__all__ = [
    "ThicknessResult",
    "one_layer_method",
    "thickness_from_freeboard",
    "SEA_SURFACE_METHODS",
    "SeaSurfaceEstimate",
    "WindowSeaSurface",
    "estimate_sea_surface",
    "nasa_lead_height",
    "nasa_reference_height",
    "interpolate_missing_windows",
    "sea_surface_at",
    "FreeboardResult",
    "TrackSeaSurface",
    "compute_freeboard",
    "estimate_track_sea_surface",
    "freeboard_from_sea_surface",
    "FreeboardComparison",
    "compare_freeboards",
    "point_density",
    "parallel_freeboard",
]
