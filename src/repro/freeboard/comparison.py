"""Comparison of the 2 m ATL03-derived products against ATL07/ATL10 baselines.

Regenerates the quantities behind the paper's Figs. 8-11:

* sea-surface difference statistics between the ATL03 pipeline and the
  ATL07-style product (the paper reports "a little over 0.1 m"),
* freeboard distributions for both products,
* point densities (segments per kilometre), the paper's headline resolution
  argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.freeboard.freeboard import FreeboardResult
from repro.utils.validation import ensure_1d


def point_density(along_track_m: np.ndarray, track_length_m: float | None = None) -> float:
    """Samples per kilometre of track."""
    along = ensure_1d(np.asarray(along_track_m, dtype=float), "along_track_m")
    if along.size == 0:
        return 0.0
    if track_length_m is None:
        track_length_m = float(along.max() - along.min())
    if track_length_m <= 0:
        raise ValueError("track_length_m must be positive")
    return float(along.size / (track_length_m / 1000.0))


@dataclass
class FreeboardComparison:
    """Summary statistics of a high-resolution vs baseline freeboard pair."""

    atl03_mean_freeboard_m: float
    baseline_mean_freeboard_m: float
    atl03_mode_freeboard_m: float
    baseline_mode_freeboard_m: float
    atl03_points_per_km: float
    baseline_points_per_km: float
    sea_surface_mean_abs_difference_m: float

    @property
    def density_ratio(self) -> float:
        """How many times denser the ATL03 product is than the baseline."""
        if self.baseline_points_per_km == 0:
            return np.inf
        return self.atl03_points_per_km / self.baseline_points_per_km

    def as_dict(self) -> dict[str, float]:
        return {
            "atl03_mean_freeboard_m": round(self.atl03_mean_freeboard_m, 3),
            "baseline_mean_freeboard_m": round(self.baseline_mean_freeboard_m, 3),
            "atl03_mode_freeboard_m": round(self.atl03_mode_freeboard_m, 3),
            "baseline_mode_freeboard_m": round(self.baseline_mode_freeboard_m, 3),
            "atl03_points_per_km": round(self.atl03_points_per_km, 1),
            "baseline_points_per_km": round(self.baseline_points_per_km, 1),
            "density_ratio": round(self.density_ratio, 1),
            "sea_surface_mean_abs_difference_m": round(self.sea_surface_mean_abs_difference_m, 3),
        }


def _mode_of_distribution(values: np.ndarray, bin_width_m: float = 0.02) -> float:
    """Mode (peak) of a freeboard distribution via histogramming."""
    values = values[np.isfinite(values)]
    if values.size == 0:
        return 0.0
    hi = max(float(values.max()), bin_width_m)
    edges = np.arange(0.0, hi + bin_width_m, bin_width_m)
    counts, _ = np.histogram(values, bins=edges)
    peak = int(np.argmax(counts))
    return float(0.5 * (edges[peak] + edges[peak + 1]))


def compare_freeboards(
    atl03: FreeboardResult,
    baseline_along_m: np.ndarray,
    baseline_freeboard_m: np.ndarray,
    baseline_sea_surface_m: np.ndarray | None = None,
) -> FreeboardComparison:
    """Compare the 2 m freeboard product against a coarser baseline.

    Parameters
    ----------
    atl03:
        The high-resolution freeboard result from :func:`compute_freeboard`.
    baseline_along_m, baseline_freeboard_m:
        The baseline (ATL07/ATL10-style) segment positions and freeboards.
    baseline_sea_surface_m:
        Baseline sea-surface heights at the baseline positions; if given, the
        mean absolute sea-surface difference is evaluated at those positions
        against the ATL03 sea surface (otherwise reported as NaN).
    """
    baseline_along = ensure_1d(np.asarray(baseline_along_m, dtype=float), "baseline_along_m")
    baseline_fb = ensure_1d(np.asarray(baseline_freeboard_m, dtype=float), "baseline_freeboard_m")
    if baseline_along.shape != baseline_fb.shape:
        raise ValueError("baseline positions and freeboards must have the same length")

    ice = atl03.ice_mask()
    atl03_fb = atl03.freeboard_m[ice]

    if baseline_sea_surface_m is not None:
        baseline_ss = ensure_1d(np.asarray(baseline_sea_surface_m, dtype=float), "baseline_sea_surface_m")
        atl03_ss_at_baseline = np.interp(
            baseline_along, atl03.along_track_m, atl03.sea_surface_m
        )
        valid = np.isfinite(baseline_ss)
        ss_diff = (
            float(np.mean(np.abs(atl03_ss_at_baseline[valid] - baseline_ss[valid])))
            if valid.any()
            else float("nan")
        )
    else:
        ss_diff = float("nan")

    track_length = float(atl03.along_track_m.max() - atl03.along_track_m.min())
    return FreeboardComparison(
        atl03_mean_freeboard_m=float(atl03_fb.mean()) if atl03_fb.size else 0.0,
        baseline_mean_freeboard_m=float(baseline_fb[np.isfinite(baseline_fb)].mean())
        if np.isfinite(baseline_fb).any()
        else 0.0,
        atl03_mode_freeboard_m=_mode_of_distribution(atl03_fb),
        baseline_mode_freeboard_m=_mode_of_distribution(baseline_fb),
        atl03_points_per_km=point_density(atl03.along_track_m[ice], track_length),
        baseline_points_per_km=point_density(baseline_along, track_length),
        sea_surface_mean_abs_difference_m=ss_diff,
    )
