"""Sea-ice thickness from freeboard via hydrostatic equilibrium.

The paper's stated future work is extending the 2 m freeboard product to
"even thickness products"; its references [11] (Xu et al. 2021, the improved
One-Layer Method) and [12] (Kwok et al. 2020) derive thickness from lidar
freeboard assuming hydrostatic equilibrium.  This module implements the two
standard formulations so the high-resolution freeboard product produced by
:func:`repro.freeboard.compute_freeboard` can be carried one step further:

* :func:`thickness_from_freeboard` — total (snow + ice) freeboard ``hf`` with
  an assumed snow depth ``hs``:

  .. math::

      h_i = \\frac{\\rho_w}{\\rho_w - \\rho_i} h_f
            - \\frac{\\rho_w - \\rho_s}{\\rho_w - \\rho_i} h_s

* :func:`one_layer_method` — the "one-layer" variant used for Antarctic sea
  ice (snow/ice interface at sea level cannot be assumed), treating the snow
  and ice column as one slab with an effective density.

Both are vectorised over segment arrays and propagate first-order
uncertainties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


#: Default densities in kg m^-3 (Kwok et al. 2020 / Xu et al. 2021 values).
DENSITY_WATER = 1023.9
DENSITY_ICE = 915.1
DENSITY_SNOW = 300.0


@dataclass(frozen=True)
class ThicknessResult:
    """Per-segment thickness estimate with first-order uncertainty."""

    thickness_m: np.ndarray
    uncertainty_m: np.ndarray
    snow_depth_m: np.ndarray

    def mean_thickness_m(self) -> float:
        """Mean thickness over segments with a finite estimate."""
        finite = np.isfinite(self.thickness_m)
        if not finite.any():
            return 0.0
        return float(self.thickness_m[finite].mean())


def _validate_densities(rho_water: float, rho_ice: float, rho_snow: float) -> None:
    if not rho_water > rho_ice > 0:
        raise ValueError("water density must exceed ice density (both positive)")
    if not 0 <= rho_snow < rho_water:
        raise ValueError("snow density must be non-negative and below water density")


def thickness_from_freeboard(
    freeboard_m: np.ndarray,
    snow_depth_m: np.ndarray | float = 0.0,
    freeboard_error_m: np.ndarray | float = 0.02,
    snow_depth_error_m: float = 0.05,
    rho_water: float = DENSITY_WATER,
    rho_ice: float = DENSITY_ICE,
    rho_snow: float = DENSITY_SNOW,
) -> ThicknessResult:
    """Hydrostatic sea-ice thickness from total (snow) freeboard.

    Parameters
    ----------
    freeboard_m:
        Total freeboard (top of snow, if present, above local sea level) —
        what the lidar freeboard product measures.
    snow_depth_m:
        Snow depth on the ice, scalar or per-segment.
    freeboard_error_m, snow_depth_error_m:
        1-sigma uncertainties used for first-order error propagation.

    Returns
    -------
    ThicknessResult
        Thickness is clipped at zero (a freeboard consistent with no ice
        yields zero, not negative, thickness).  Non-finite freeboards map to
        NaN thickness.
    """
    _validate_densities(rho_water, rho_ice, rho_snow)
    hf = np.asarray(freeboard_m, dtype=float)
    hs = np.broadcast_to(np.asarray(snow_depth_m, dtype=float), hf.shape).copy()
    if np.any(hs[np.isfinite(hs)] < 0):
        raise ValueError("snow depth must be non-negative")
    sigma_hf = np.broadcast_to(np.asarray(freeboard_error_m, dtype=float), hf.shape)

    # Snow cannot be thicker than the measured total freeboard.
    hs = np.minimum(hs, np.clip(hf, 0.0, None))

    denom = rho_water - rho_ice
    coef_f = rho_water / denom
    coef_s = (rho_water - rho_snow) / denom
    thickness = coef_f * hf - coef_s * hs
    thickness = np.clip(thickness, 0.0, None)
    thickness = np.where(np.isfinite(hf), thickness, np.nan)

    uncertainty = np.sqrt((coef_f * sigma_hf) ** 2 + (coef_s * snow_depth_error_m) ** 2)
    uncertainty = np.where(np.isfinite(hf), uncertainty, np.nan)
    return ThicknessResult(thickness_m=thickness, uncertainty_m=uncertainty, snow_depth_m=hs)


def one_layer_method(
    freeboard_m: np.ndarray,
    snow_fraction: float = 0.7,
    freeboard_error_m: np.ndarray | float = 0.02,
    rho_water: float = DENSITY_WATER,
    rho_ice: float = DENSITY_ICE,
    rho_snow: float = DENSITY_SNOW,
) -> ThicknessResult:
    """Improved one-layer method (OLMi-style) for Antarctic sea ice.

    When no independent snow-depth estimate exists (the common Antarctic
    case), the snow depth is parameterised as a fraction of the total
    freeboard, ``hs = snow_fraction * hf``, and the slab is treated in
    hydrostatic equilibrium with both layers.  Substituting into the standard
    relation gives

    .. math::

        h_i = \\frac{\\rho_w - s (\\rho_w - \\rho_s)}{\\rho_w - \\rho_i} h_f

    with ``s = snow_fraction``.
    """
    _validate_densities(rho_water, rho_ice, rho_snow)
    if not 0.0 <= snow_fraction <= 1.0:
        raise ValueError("snow_fraction must be in [0, 1]")
    hf = np.asarray(freeboard_m, dtype=float)
    sigma_hf = np.broadcast_to(np.asarray(freeboard_error_m, dtype=float), hf.shape)

    coef = (rho_water - snow_fraction * (rho_water - rho_snow)) / (rho_water - rho_ice)
    thickness = np.clip(coef * hf, 0.0, None)
    thickness = np.where(np.isfinite(hf), thickness, np.nan)
    uncertainty = np.where(np.isfinite(hf), np.abs(coef) * sigma_hf, np.nan)
    snow_depth = np.where(np.isfinite(hf), snow_fraction * np.clip(hf, 0.0, None), np.nan)
    return ThicknessResult(thickness_m=thickness, uncertainty_m=uncertainty, snow_depth_m=snow_depth)
