"""Map-reduce-parallel freeboard computation (the paper's Table V workload).

The freeboard stage is data-parallel across along-track chunks: the sea
surface is estimated once per track (it needs the whole track's open-water
segments), then subtracting it from segment heights partitions trivially.
The job below mirrors the paper's PySpark formulation: the *map* evaluates
the reference surface and freeboard for a partition of segments, and the
*reduce* concatenates partitions back in order.
"""

from __future__ import annotations

import numpy as np

from repro.config import CLASS_OPEN_WATER, DEFAULT_SEA_SURFACE, SeaSurfaceConfig
from repro.distributed.mapreduce import MapReduceEngine, MapReduceResult
from repro.freeboard.freeboard import FreeboardResult
from repro.freeboard.interpolation import interpolate_missing_windows
from repro.freeboard.sea_surface import estimate_sea_surface
from repro.resampling.window import SegmentArray


class _FreeboardMap:
    """Picklable per-partition freeboard map function.

    Holds the (small) window-level sea-surface solution; each partition
    interpolates its own segments against it and subtracts.
    """

    def __init__(self, centers_m: np.ndarray, heights_m: np.ndarray, clip_negative: bool) -> None:
        self.centers_m = centers_m
        self.heights_m = heights_m
        self.clip_negative = clip_negative

    def __call__(self, chunk: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        reference = np.interp(chunk["along_track_m"], self.centers_m, self.heights_m)
        freeboard = chunk["height_m"] - reference
        freeboard = np.where(chunk["labels"] == CLASS_OPEN_WATER, 0.0, freeboard)
        if self.clip_negative:
            freeboard = np.clip(freeboard, 0.0, None)
        return {
            "along_track_m": chunk["along_track_m"],
            "freeboard_m": freeboard,
            "sea_surface_m": reference,
            "labels": chunk["labels"],
        }


def _concat_partitions(parts: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Reduce step: concatenate the per-partition outputs in order."""
    keys = parts[0].keys() if parts else ()
    return {k: np.concatenate([p[k] for p in parts]) if parts else np.empty(0) for k in keys}


def parallel_freeboard(
    segments: SegmentArray,
    labels: np.ndarray,
    engine: MapReduceEngine,
    method: str = "nasa",
    config: SeaSurfaceConfig = DEFAULT_SEA_SURFACE,
    clip_negative: bool = True,
) -> tuple[FreeboardResult, MapReduceResult]:
    """Compute freeboard with the map-reduce engine.

    Returns the assembled :class:`FreeboardResult` (identical to the serial
    :func:`repro.freeboard.compute_freeboard` output — verified by tests) and
    the :class:`MapReduceResult` with the per-stage timings used by the
    Table V scaling benchmark.
    """
    labels = np.asarray(labels)
    if labels.shape[0] != segments.n_segments:
        raise ValueError("labels must have one entry per segment")

    # Driver-side: the window-level sea surface needs the whole track.
    estimate = estimate_sea_surface(
        segments.center_along_track_m,
        segments.height_mean_m,
        segments.height_error_m(),
        labels,
        method=method,
        config=config,
    )
    estimate = interpolate_missing_windows(estimate)
    centers = estimate.centers_m
    heights = estimate.heights_m
    valid = np.isfinite(heights)
    centers, heights = centers[valid], heights[valid]

    arrays = {
        "along_track_m": segments.center_along_track_m,
        "height_m": segments.height_mean_m,
        "labels": labels.astype(np.int8),
    }
    map_fn = _FreeboardMap(centers, heights, clip_negative)
    mr_result = engine.map_arrays(arrays, map_fn, _concat_partitions)
    combined = mr_result.value

    result = FreeboardResult(
        along_track_m=combined["along_track_m"],
        freeboard_m=combined["freeboard_m"],
        sea_surface_m=combined["sea_surface_m"],
        labels=combined["labels"],
        sea_surface=estimate,
        clip_negative=clip_negative,
    )
    return result, mr_result
