"""The ingest service: one granule in, fresh tiles out, nothing else touched.

Lifecycle of one :meth:`IngestService.ingest` call:

1. **Grid** — a :class:`~repro.campaign.runner.GranuleSpec` is gridded via
   the handle's ``gridder`` hook (:meth:`CampaignRunner.grid_new_granule`,
   which runs the curation → inference → retrieval → gridding graph with
   every stage content-cached); a ready :class:`~repro.l3.product.Level3Grid`
   is accepted as-is.
2. **Merge** — :meth:`MosaicAccumulator.add <repro.l3.merge.MosaicAccumulator.add>`
   folds the granule into the online mosaic and reports the dirty flat cell
   indices.  The merged mosaic is byte-identical to a batch
   :meth:`~repro.l3.processor.Level3Processor.mosaic` over the same fleet
   (``IngestConfig.verify_merge`` cross-checks this on every ingest).
3. **Rebuild** — the product is marked stale (responses served meanwhile
   carry ``stale=True`` — stale-while-revalidate), then
   :class:`~repro.serve.live.IncrementalPyramidBuilder` rebuilds exactly
   the tiles overlapping the dirty cells, at every zoom level.
4. **Publish** — the refreshed mosaic (and optionally the granule product)
   is written to the products directory and appended to the catalog with
   :meth:`~repro.serve.catalog.ProductCatalog.append` (no directory
   re-scan); only the rebuilt tiles' cache entries are invalidated, so
   untouched tiles keep serving from the LRU; the stale flag clears.

The served mosaic keeps one **stable key** (``live:<campaign fingerprint>``)
across ingests, so cached tiles of untouched regions stay addressable —
freshness is tracked per tile region by the revision-suffixed fingerprints
of :class:`~repro.serve.live.LivePyramidLoader`, not by key churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.config import DEFAULT_INGEST, IngestConfig
from repro.kernels import resolve_backend
from repro.obs.core import Obs, default_obs
from repro.l3.merge import MosaicAccumulator
from repro.l3.processor import Level3Processor
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.serve.live import IncrementalPyramidBuilder, LivePyramidLoader, TileAddress
from repro.serve.pyramid import build_pyramid
from repro.serve.query import TileKey
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # circular at runtime: the handle constructs this service
    from repro.serve.handle import ServeHandle

__all__ = ["IngestReport", "IngestService"]


@dataclass(frozen=True)
class IngestReport:
    """What one ingest did: the receipt the caller can assert against."""

    #: Id of the merged granule.
    granule_id: str
    #: How many base-grid cells the granule observed (the dirty footprint).
    n_dirty_cells: int
    #: Every pyramid tile rebuilt, as (zoom, tile_row, tile_col) — nothing
    #: outside this set was recomputed.
    rebuilt_tiles: tuple[TileAddress, ...]
    #: Cached tiles dropped from the serving LRU (≤ rebuilt tiles × variables).
    n_invalidated: int
    #: Fleet size after the merge.
    n_granules: int
    #: Product base paths (re)written under the products directory.
    products: tuple[str, ...]
    #: Wall-clock seconds for the whole ingest (gridding included).
    seconds: float


class IngestService:
    """Keep one served campaign mosaic live as granules arrive.

    Constructed by :meth:`ServeHandle.with_ingest`, which wires the serving
    stack, the campaign's seed L3 result, and the gridder hook.  On
    construction the service replays the seed fleet through the online
    accumulator, republishes the mosaic under its stable live key, and
    installs the in-memory pyramid into the owning engine's
    :class:`~repro.serve.live.LivePyramidLoader` — from then on every
    :meth:`ingest` is incremental.

    Parameters
    ----------
    handle:
        The owning :class:`~repro.serve.handle.ServeHandle`.
    seed_l3:
        The campaign's :class:`~repro.campaign.runner.CampaignL3Result`.
    config:
        The :class:`~repro.config.IngestConfig` slice.
    gridder:
        ``spec -> Level3Grid`` hook for ingesting granule *specs*; ``None``
        restricts :meth:`ingest` to ready :class:`~repro.l3.product.Level3Grid`
        inputs.
    on_rebuild:
        Test hook called between the stale mark and the tile rebuild —
        queries issued inside it observe the stale-while-revalidate window
        deterministically (single-threaded, no sleeps).
    """

    def __init__(
        self,
        handle: "ServeHandle",
        seed_l3: Any,
        config: IngestConfig = DEFAULT_INGEST,
        gridder: Callable[[Any], Level3Grid] | None = None,
        on_rebuild: Callable[["IngestService"], None] | None = None,
        backend: str | None = None,
        obs: Obs | None = None,
    ) -> None:
        if handle.products_dir is None:
            raise ValueError("the serve handle has no products directory")
        self.handle = handle
        self.config = config
        self.on_rebuild = on_rebuild
        self._gridder = gridder
        self.backend = resolve_backend(backend if backend is not None else handle.backend)
        self.obs = obs if obs is not None else getattr(handle, "obs", None) or default_obs()

        #: Stable catalog key of the live mosaic (constant across ingests, so
        #: untouched cached tiles stay addressable).
        self.key = f"live:{seed_l3.fingerprint or 'mosaic'}"

        self.accumulator = MosaicAccumulator(seed_l3.mosaic.grid, backend=self.backend)
        self._verify_grids: dict[str, Level3Grid] | None = (
            {} if config.verify_merge else None
        )
        for granule_id, product in seed_l3.granules.items():
            self.accumulator.add(product)
            if self._verify_grids is not None:
                self._verify_grids[granule_id] = product

        snapshot = self.accumulator.snapshot()
        if config.verify_merge:
            self._verify(snapshot, against=seed_l3.mosaic)
        snapshot.metadata["fingerprint"] = self.key
        self._publish_mosaic(snapshot, replace_batch_entry=True)

        pyramid = build_pyramid(snapshot, serve=handle.serve, backend=self.backend)
        self.builder = IncrementalPyramidBuilder(
            pyramid, serve=handle.serve, backend=self.backend
        )
        self._live_loader().install(self.key, pyramid, self.builder.revisions)
        self.n_ingested = 0
        #: The most recent :class:`IngestReport` (``None`` before any ingest);
        #: the health dashboard exporter reads it.
        self.last_report: IngestReport | None = None
        self.obs.gauge("ingest_fleet_size").set(self.accumulator.n_granules)

    # -- the live serving seam ----------------------------------------------

    def _live_loader(self) -> LivePyramidLoader:
        """The loader owning the live key (the shard's, behind a router)."""
        if self.handle.has_router:
            router = self.handle.router
            loader = router.shards[router.catalog.shard_of(self.key)].engine.loader
        else:
            loader = self.handle.engine.loader
        if not isinstance(loader, LivePyramidLoader):
            raise TypeError(
                "the serving front was not built with a LivePyramidLoader; "
                "construct the stack through ServeHandle"
            )
        return loader

    def _publish_mosaic(self, snapshot: Level3Grid, replace_batch_entry: bool = False) -> Path:
        """Write the live mosaic and append it to the catalog (no re-scan)."""
        base = self.handle.products_dir / self.config.mosaic_name
        catalog = self.handle.catalog
        if replace_batch_entry:
            # The batch mosaic entry points at the same base path we are
            # about to overwrite; drop it so the live key is the only mosaic.
            for entry in list(catalog.entries):
                if (
                    entry.kind == "mosaic"
                    and Path(entry.base_path) == base
                    and entry.key != self.key
                ):
                    catalog.remove(entry.key)
        _, json_path = write_level3(
            snapshot, base, format=self.handle.serve.product_format
        )
        catalog.append(json_path)
        return base

    # -- ingest --------------------------------------------------------------

    def ingest(self, granule: Any) -> IngestReport:
        """Fold one granule into the served campaign; return the receipt.

        ``granule`` is either a ready :class:`~repro.l3.product.Level3Grid`
        (metadata must carry ``granule_id``) or a granule spec for the
        ``gridder`` hook.  Serving continues throughout: during the rebuild
        window responses carry ``stale=True``; afterwards only the rebuilt
        tiles re-decode, everything else stays cached.

        Telemetry: the whole call runs inside an ``ingest.ingest`` span with
        ``ingest.grid`` / ``ingest.merge`` / ``ingest.rebuild`` children,
        and feeds the ``ingest_*_total`` counters plus the fleet-size gauge.
        """
        with self.obs.span("ingest.ingest") as span:
            report = self._ingest(granule, span)
        self.last_report = report
        self.obs.counter("ingest_granules_total").inc()
        self.obs.counter("ingest_dirty_cells_total").inc(report.n_dirty_cells)
        self.obs.counter("ingest_rebuilt_tiles_total").inc(len(report.rebuilt_tiles))
        self.obs.counter("ingest_invalidated_tiles_total").inc(report.n_invalidated)
        self.obs.gauge("ingest_fleet_size").set(report.n_granules)
        if self.obs.clock is not None:
            self.obs.gauge("ingest_last_ingest_ts").set(self.obs.clock.now())
        return report

    def _ingest(self, granule: Any, span: Any) -> IngestReport:
        sw = Stopwatch().start()
        if not isinstance(granule, Level3Grid):
            if self._gridder is None:
                raise RuntimeError(
                    "this ingest service has no gridder: pass a Level3Grid, or "
                    "attach ingest via CampaignRunner.serve so specs can be "
                    "gridded through the cached pipeline stages"
                )
            with self.obs.span("ingest.grid"):
                granule = self._gridder(granule)

        granule_id = str(granule.metadata.get("granule_id", "")).strip()
        span.set(granule_id=granule_id)
        self.obs.log.info("ingest.granule_accepted", granule_id=granule_id)
        with self.obs.span("ingest.merge", granule_id=granule_id) as merge_span:
            dirty = self.accumulator.add(granule)
            merge_span.set(n_dirty_cells=int(dirty.size))
        self.obs.log.info(
            "ingest.granule_merged", granule_id=granule_id, n_dirty_cells=int(dirty.size)
        )
        if self._verify_grids is not None:
            self._verify_grids[granule_id] = granule

        loader = self._live_loader()
        loader.mark_stale(self.key)
        try:
            if self.on_rebuild is not None:
                self.on_rebuild(self)
            snapshot = self.accumulator.snapshot()
            if self.config.verify_merge:
                self._verify(snapshot)
            snapshot.metadata["fingerprint"] = self.key
            with self.obs.span("ingest.rebuild", granule_id=granule_id) as rb_span:
                rebuilt = self.builder.update(snapshot, dirty)
                rb_span.set(n_rebuilt_tiles=len(rebuilt))
            self.obs.log.info(
                "ingest.tiles_rebuilt", granule_id=granule_id, n_rebuilt_tiles=len(rebuilt)
            )

            written = [str(self._publish_mosaic(snapshot))]
            if self.config.write_granule_products and granule_id:
                base = self.handle.products_dir / granule_id
                _, json_path = write_level3(
                    granule, base, format=self.handle.serve.product_format
                )
                self.handle.catalog.append(json_path)
                written.append(str(base))

            servable = self.handle.catalog.get(self.key).servable
            keys: list[TileKey] = [
                (self.key, variable, zoom, row, col)
                for (zoom, row, col) in rebuilt
                for variable in servable
            ]
            n_invalidated = self.handle.invalidate_tiles(keys)
        finally:
            loader.clear_stale(self.key)
        self.n_ingested += 1

        return IngestReport(
            granule_id=granule_id,
            n_dirty_cells=int(dirty.size),
            rebuilt_tiles=tuple(rebuilt),
            n_invalidated=n_invalidated,
            n_granules=self.accumulator.n_granules,
            products=tuple(written),
            seconds=sw.stop(),
        )

    # -- verification ---------------------------------------------------------

    def _verify(self, snapshot: Level3Grid, against: Level3Grid | None = None) -> None:
        """Assert the online mosaic is byte-identical to the batch mosaic."""
        if against is None:
            assert self._verify_grids is not None
            processor = Level3Processor(self.accumulator.grid, backend=self.backend)
            against = processor.mosaic(
                [self._verify_grids[gid] for gid in self.accumulator.granule_ids]
            )
        for name, expected in against.variables.items():
            live = snapshot.variables[name]
            if expected.dtype != live.dtype or expected.tobytes() != live.tobytes():
                raise RuntimeError(
                    f"online merge diverged from the batch mosaic in {name!r} "
                    f"after {self.accumulator.n_granules} granules"
                )
