"""Live ingest: fold newly arrived granules into served campaign products.

The batch path (:meth:`CampaignRunner.serve`) writes products once and
serves them read-only.  This package closes the loop for granules that
arrive *after* the campaign is serving: :class:`IngestService` grids the
new granule through the cached pipeline stages, merges it into the fleet
mosaic online (bit-identical to a from-scratch batch mosaic — the
:mod:`repro.l3.merge` contract), rebuilds only the pyramid tiles whose
footprint the granule touched, republishes the product, and invalidates
exactly the affected tile cache entries — the served campaign stays live
without a restart or a full rebuild.

Attach it to a serving stack with
``runner.serve(products_dir).with_router().with_ingest()``.
"""

from repro.ingest.service import IngestReport, IngestService

__all__ = ["IngestReport", "IngestService"]
