"""Global configuration constants and parameter containers.

These values mirror the settings reported in the paper:

* Ross Sea region of interest (longitude -180 .. -140, latitude -78 .. -70).
* 2 m along-track resampling window.
* 10 km sliding windows with 5 km overlap for local sea-surface detection.
* LSTM / MLP hyper-parameters (Adam lr = 0.003, dropout 0.2, batch size 32,
  20 epochs, focal loss).
* The coincident IS2/S2 pair table (Table I) lives in
  :mod:`repro.labeling.pairs` and references these constants.

All parameter containers are frozen dataclasses so that experiment
configurations are hashable, comparable and safe to share across worker
processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Region of interest (paper Section III.A.1)
# ---------------------------------------------------------------------------

#: Ross Sea spatial extent used throughout the paper.
ROSS_SEA_LON_MIN = -180.0
ROSS_SEA_LON_MAX = -140.0
ROSS_SEA_LAT_MIN = -78.0
ROSS_SEA_LAT_MAX = -70.0

#: EPSG code of the Antarctic polar stereographic projection used to overlay
#: IS2 tracks on S2 images (paper Section III.A.3).
EPSG_ANTARCTIC_POLAR_STEREO = 3976

# ---------------------------------------------------------------------------
# ATL03 instrument characteristics (paper Section I)
# ---------------------------------------------------------------------------

#: Nominal ATL03 footprint diameter in metres.
ATL03_FOOTPRINT_M = 11.0

#: Nominal along-track photon spacing in metres for a strong beam.
ATL03_ALONG_TRACK_SPACING_M = 0.7

#: Number of strong beams used by the study.
N_STRONG_BEAMS = 3

#: Number of signal photons aggregated by the ATL07/ATL10 products.
ATL07_PHOTON_AGGREGATION = 150

# ---------------------------------------------------------------------------
# Resampling / sea-surface parameters (paper Sections III.A.2, III.D.1)
# ---------------------------------------------------------------------------

#: Along-track resampling window length in metres (the paper's 2 m sampling).
RESAMPLE_WINDOW_M = 2.0

#: Radius of the local sea-surface search window in metres (5 km).
SEA_SURFACE_WINDOW_RADIUS_M = 5_000.0

#: Full length of the local sea-surface window in metres (10 km).
SEA_SURFACE_WINDOW_LENGTH_M = 10_000.0

#: Sliding overlap between consecutive sea-surface windows in metres (5 km).
SEA_SURFACE_WINDOW_OVERLAP_M = 5_000.0

#: Maximum temporal separation between coincident IS2 and S2 acquisitions
#: accepted for auto-labeling, in minutes (the paper uses an 80 minute
#: window and Table I lists pairs below two hours).
MAX_COINCIDENT_MINUTES = 80.0

# ---------------------------------------------------------------------------
# Surface classes
# ---------------------------------------------------------------------------

#: Integer label of thick (snow-covered) sea ice.
CLASS_THICK_ICE = 0
#: Integer label of thin ice.
CLASS_THIN_ICE = 1
#: Integer label of open water.
CLASS_OPEN_WATER = 2
#: Sentinel value for unlabeled / invalid segments.
CLASS_UNLABELED = -1

#: Human readable names indexed by class id.
CLASS_NAMES = ("thick_ice", "thin_ice", "open_water")

#: Number of surface classes predicted by the models.
N_CLASSES = 3

# ---------------------------------------------------------------------------
# Model hyper-parameters (paper Sections III.B and IV.A)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters shared by the LSTM and MLP classifiers."""

    learning_rate: float = 0.003
    batch_size: int = 32
    epochs: int = 20
    dropout: float = 0.2
    focal_gamma: float = 2.0
    validation_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate:
            raise ValueError("learning_rate must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")


@dataclass(frozen=True)
class LSTMConfig:
    """Architecture of the paper's LSTM classifier.

    The paper uses an LSTM layer with 16 units and ELU activation over
    sequences of five neighbouring 2 m segments (n-2 .. n+2) with six
    features each, followed by seven dense layers of
    32, 96, 32, 16, 112, 48 and 64 units (ELU) and a three-way softmax
    output.
    """

    lstm_units: int = 16
    sequence_length: int = 5
    n_features: int = 6
    dense_units: tuple[int, ...] = (32, 96, 32, 16, 112, 48, 64)
    n_classes: int = N_CLASSES
    dropout: float = 0.2

    def __post_init__(self) -> None:
        if self.sequence_length % 2 != 1:
            raise ValueError("sequence_length must be odd so the centre segment is defined")
        if self.lstm_units <= 0 or self.n_features <= 0:
            raise ValueError("lstm_units and n_features must be positive")


@dataclass(frozen=True)
class MLPConfig:
    """Architecture of the paper's MLP classifier (32-unit dense, ReLU)."""

    hidden_units: tuple[int, ...] = (32,)
    n_features: int = 6
    n_classes: int = N_CLASSES
    dropout: float = 0.2


# ---------------------------------------------------------------------------
# Cluster / GPU configurations used for the scaling experiments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterConfig:
    """Description of the simulated Google Cloud Dataproc cluster.

    The paper uses one master plus three worker Intel N2 Cascade Lake nodes,
    each with four cores, and reports scalability over ``executors`` in
    {1, 2, 4} and ``cores`` per executor in {1, 2, 4}.
    """

    n_workers: int = 3
    cores_per_worker: int = 4
    executor_grid: tuple[int, ...] = (1, 2, 4)
    cores_grid: tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class GPUClusterConfig:
    """Description of the simulated DGX A100 node used for Table IV."""

    max_gpus: int = 8
    gpu_counts: tuple[int, ...] = (1, 2, 4, 6, 8)


@dataclass(frozen=True)
class SeaSurfaceConfig:
    """Parameters of the local sea-surface detection stage."""

    window_length_m: float = SEA_SURFACE_WINDOW_LENGTH_M
    window_overlap_m: float = SEA_SURFACE_WINDOW_OVERLAP_M
    min_open_water_segments: int = 3
    method: str = "nasa"

    def __post_init__(self) -> None:
        if self.window_overlap_m >= self.window_length_m:
            raise ValueError("window_overlap_m must be smaller than window_length_m")
        if self.min_open_water_segments < 1:
            raise ValueError("min_open_water_segments must be >= 1")


@dataclass(frozen=True)
class L3GridConfig:
    """Parameters of the Level-3 gridding stage (:mod:`repro.l3`).

    The grid extent defaults to the granule's scene extent: ``None`` for any
    of ``x_min_m``/``y_min_m``/``width_m``/``height_m`` means "take it from
    the scene config".  Campaigns mosaic many granules onto **one** grid, so
    fleets whose scenes vary in extent must pin the extent explicitly here.
    """

    cell_size_m: float = 1_000.0
    x_min_m: float | None = None
    y_min_m: float | None = None
    width_m: float | None = None
    height_m: float | None = None
    #: Cells with fewer contributing freeboard segments than this report NaN
    #: freeboard/thickness statistics (counts are always reported).
    min_segments: int = 1

    def __post_init__(self) -> None:
        if self.cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        if self.width_m is not None and self.width_m <= 0:
            raise ValueError("width_m must be positive when given")
        if self.height_m is not None and self.height_m <= 0:
            raise ValueError("height_m must be positive when given")
        if self.min_segments < 1:
            raise ValueError("min_segments must be >= 1")


@dataclass(frozen=True)
class RouterConfig:
    """Parameters of the async service tier (:mod:`repro.serve.router`).

    Sizes the sharded catalog, the admission-control watermark of the
    request router, shard quarantine, and the popularity-driven hot-tile
    prefetcher.  Nested inside :class:`ServeConfig` so the whole serving
    stack is one campaign-level config slice.
    """

    #: Number of catalog shards (each with its own engine and tile LRU).
    n_shards: int = 4
    #: Admission-control watermark: distinct underlying executions allowed
    #: in flight before new (non-coalescable) requests are shed.
    max_queue_depth: int = 64
    #: ``Retry-After`` hint (seconds) attached to shed requests.
    retry_after_s: float = 0.05
    #: Consecutive product-decode failures before a shard is quarantined.
    quarantine_errors: int = 3
    #: Number of hottest flight keys the background prefetcher keeps warm
    #: (0 disables prefetching).
    prefetch_top_k: int = 8
    #: Interval between prefetch sweeps, in (clock) seconds.
    prefetch_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be non-negative")
        if self.quarantine_errors < 1:
            raise ValueError("quarantine_errors must be >= 1")
        if self.prefetch_top_k < 0:
            raise ValueError("prefetch_top_k must be >= 0")
        if self.prefetch_interval_s <= 0:
            raise ValueError("prefetch_interval_s must be positive")


@dataclass(frozen=True)
class IngestConfig:
    """Parameters of the live-ingest tier (:mod:`repro.ingest`).

    Controls how :class:`repro.ingest.IngestService` folds newly arrived
    granules into a served campaign: whether per-granule products are
    written alongside the refreshed mosaic, and whether every online merge
    is cross-checked against a from-scratch batch mosaic (a debugging aid —
    the merge is bit-identical by construction, but the check is O(fleet)).
    Nested inside :class:`ServeConfig` so the whole serving stack remains
    one campaign-level config slice.
    """

    #: Base name (under the products directory) of the live mosaic product
    #: rewritten on every ingest.
    mosaic_name: str = "mosaic"
    #: Write a standalone Level-3 product for each ingested granule and
    #: register it in the catalog alongside the refreshed mosaic.
    write_granule_products: bool = True
    #: Debugging cross-check: after every merge, rebuild the batch mosaic
    #: from scratch and assert byte-identity.  O(fleet) per ingest.
    verify_merge: bool = False

    def __post_init__(self) -> None:
        if not self.mosaic_name:
            raise ValueError("mosaic_name must be a non-empty product name")


@dataclass(frozen=True)
class SloConfig:
    """Parameters of the SLO burn-rate evaluator (:mod:`repro.obs.slo`).

    The window geometry follows the Google-SRE multi-window multi-burn-rate
    recipe: a *fast* window that reacts to acute violations within minutes
    and a *slow* window that catches sustained low-grade burn.  Both are
    expressed in seconds of the pluggable clock, so `VirtualClock` tests
    exercise exact fire/resolve ticks without real sleeps.
    """

    #: Fast burn-rate window length in seconds (reacts to acute outages).
    fast_window_s: float = 300.0
    #: Slow burn-rate window length in seconds (catches sustained burn).
    slow_window_s: float = 3600.0
    #: Burn-rate threshold for the fast window (budget consumed this many
    #: times faster than sustainable fires the alert).
    fast_burn_threshold: float = 14.4
    #: Burn-rate threshold for the slow window.
    slow_burn_threshold: float = 6.0
    #: A pending alert must stay above threshold this long before firing.
    for_s: float = 0.0
    #: Hysteresis: a firing alert resolves only once the burn rate drops
    #: below ``threshold * resolve_fraction``.
    resolve_fraction: float = 0.5
    #: Maximum number of (time, bad, total) samples retained per window.
    max_samples: int = 4096

    def __post_init__(self) -> None:
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError("SLO window lengths must be positive seconds")
        if self.fast_window_s >= self.slow_window_s:
            raise ValueError(
                "fast_window_s must be shorter than slow_window_s "
                f"(got {self.fast_window_s} >= {self.slow_window_s})"
            )
        if self.fast_burn_threshold <= 0 or self.slow_burn_threshold <= 0:
            raise ValueError("burn-rate thresholds must be positive")
        if self.for_s < 0:
            raise ValueError("for_s must be >= 0")
        if not 0 < self.resolve_fraction <= 1:
            raise ValueError("resolve_fraction must be in (0, 1]")
        if self.max_samples < 2:
            raise ValueError("max_samples must be >= 2 to form a window delta")


@dataclass(frozen=True)
class LogConfig:
    """Parameters of the structured event log (:mod:`repro.obs.log`).

    The log keeps a bounded in-memory ring (feeding the dashboard's
    "recent events" section) and optionally mirrors each record to a
    JSON-lines file sink.  Repeated identical events inside the dedup
    window are suppressed and surface as a single summary record, so an
    error loop cannot flood the ring or the sink.
    """

    #: Capacity of the in-memory ring of recent events.
    ring_size: int = 1024
    #: Suppress repeats of the same ``(level, event)`` pair observed
    #: within this many seconds; 0 disables dedup.
    dedup_window_s: float = 5.0
    #: Minimum severity recorded ("debug" | "info" | "warning" | "error").
    min_level: str = "debug"

    def __post_init__(self) -> None:
        if self.ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        if self.dedup_window_s < 0:
            raise ValueError("dedup_window_s must be >= 0")
        if self.min_level not in ("debug", "info", "warning", "error"):
            raise ValueError(
                "min_level must be one of 'debug', 'info', 'warning', "
                f"'error', got {self.min_level!r}"
            )


@dataclass(frozen=True)
class ObsConfig:
    """Parameters of the telemetry subsystem (:mod:`repro.obs`).

    One process-local config slice selecting between the real metric
    registry / tracer pair and their no-op null twins.  Deliberately *not*
    nested inside :class:`ServeConfig` or the experiment configs:
    observability must never perturb content fingerprints, so whether a
    run was traced can never change what it computed.
    """

    #: Real instrumentation (``True``) or the no-op null implementation.
    enabled: bool = True
    #: Capacity of the tracer's span ring buffer; the oldest finished
    #: spans are dropped (and counted) once it fills.
    trace_buffer_size: int = 4096
    #: Default histogram bucket upper bounds, in seconds (Prometheus
    #: ``le`` semantics), used by latency histograms unless a metric names
    #: its own edges.  Must be strictly increasing.
    latency_buckets_s: tuple[float, ...] = (
        0.001,
        0.0025,
        0.005,
        0.01,
        0.025,
        0.05,
        0.1,
        0.25,
        0.5,
        1.0,
        2.5,
        5.0,
    )
    #: Burn-rate evaluator geometry (:class:`SloConfig`).
    slo: SloConfig = SloConfig()
    #: Structured event-log sizing and dedup (:class:`LogConfig`).
    log: LogConfig = LogConfig()

    def __post_init__(self) -> None:
        if self.trace_buffer_size < 1:
            raise ValueError(
                "trace_buffer_size must be >= 1 "
                f"(got {self.trace_buffer_size}); the tracer needs at least "
                "one ring slot to hold a finished span"
            )
        if not self.latency_buckets_s:
            raise ValueError(
                "latency_buckets_s must name at least one bucket edge; an "
                "empty histogram cannot bucket observations"
            )
        edges = tuple(float(e) for e in self.latency_buckets_s)
        bad = [e for e in edges if not math.isfinite(e)]
        if bad:
            raise ValueError(
                f"latency_buckets_s edges must be finite, got {bad}; an "
                "implicit +inf overflow bucket is always appended, do not "
                "list it explicitly"
            )
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                "latency_buckets_s must be strictly increasing, got "
                f"{edges}; sort and deduplicate the edges"
            )
        object.__setattr__(self, "latency_buckets_s", edges)


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of the product-serving layer (:mod:`repro.serve`).

    Controls both the tile-pyramid product (tile geometry, overview depth,
    count weighting) and the query engine's tile cache.  Like
    :class:`L3GridConfig` this is a campaign-level slice: one pyramid is
    built per fleet mosaic, and every query-engine instance serving that
    campaign shares the geometry.
    """

    #: Side length, in cells, of the square tiles served by the query engine
    #: (power-of-two overview levels reduce until the whole grid fits one tile).
    tile_size: int = 64
    #: Cap on the number of overview levels above the base grid; ``None``
    #: builds levels until the coarsest fits in a single tile.
    max_levels: int | None = None
    #: Count layer used as the reduction weight for non-freeboard variables
    #: (freeboard/thickness layers weight by ``n_freeboard_segments``).
    weight_variable: str = "n_segments"
    #: Capacity (in tiles) of the query engine's fingerprint-keyed LRU cache.
    tile_cache_size: int = 512
    #: Array-container layout for products the campaign/ingest tiers write:
    #: ``"npz"`` (zip archive, the classic default) or ``"raw"`` (flat blob
    #: with sidecar offsets — memory-mapped reads, single-tile decodes touch
    #: only the bytes they serve).  Readers auto-detect from the sidecar, so
    #: mixed-format catalogs are fine.
    product_format: str = "npz"
    #: The async service tier built around the query engine
    #: (:class:`RouterConfig`: sharding, admission control, prefetch).
    router: RouterConfig = RouterConfig()
    #: The live-ingest tier that keeps served products fresh without a
    #: restart (:class:`IngestConfig`).
    ingest: IngestConfig = IngestConfig()

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if self.max_levels is not None and self.max_levels < 0:
            raise ValueError("max_levels must be >= 0 when given")
        if not self.weight_variable:
            raise ValueError("weight_variable must be a non-empty variable name")
        if self.tile_cache_size < 1:
            raise ValueError("tile_cache_size must be >= 1")
        if self.product_format not in ("npz", "raw"):
            raise ValueError(
                f"product_format must be 'npz' or 'raw', got {self.product_format!r}"
            )


# ---------------------------------------------------------------------------
# Campaign scenario presets
# ---------------------------------------------------------------------------

#: Season-like surface-composition presets used by the campaign scenario
#: grid (:mod:`repro.campaign`).  Each maps to the class-fraction fields of
#: :class:`repro.surface.scene.SceneConfig`; fractions sum to one.  The
#: ``spring`` preset matches the seed defaults of the paper's November 2019
#: Ross Sea setting; ``winter`` is consolidated pack ice with few leads;
#: ``freeze_up`` is a young, lead-rich marginal ice zone.
SEASON_PRESETS: dict[str, dict[str, float]] = {
    "winter": {
        "thick_ice_fraction": 0.86,
        "thin_ice_fraction": 0.11,
        "open_water_fraction": 0.03,
    },
    "spring": {
        "thick_ice_fraction": 0.72,
        "thin_ice_fraction": 0.18,
        "open_water_fraction": 0.10,
    },
    "freeze_up": {
        "thick_ice_fraction": 0.55,
        "thin_ice_fraction": 0.28,
        "open_water_fraction": 0.17,
    },
}


DEFAULT_TRAINING = TrainingConfig()
DEFAULT_LSTM = LSTMConfig()
DEFAULT_MLP = MLPConfig()
DEFAULT_CLUSTER = ClusterConfig()
DEFAULT_GPU_CLUSTER = GPUClusterConfig()
DEFAULT_SEA_SURFACE = SeaSurfaceConfig()
DEFAULT_L3_GRID = L3GridConfig()
DEFAULT_ROUTER = RouterConfig()
DEFAULT_INGEST = IngestConfig()
DEFAULT_SLO = SloConfig()
DEFAULT_LOG = LogConfig()
DEFAULT_OBS = ObsConfig()
DEFAULT_SERVE = ServeConfig()
