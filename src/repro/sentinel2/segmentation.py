"""Color-based Sentinel-2 sea-ice segmentation with thin-cloud/shadow filtering.

This reimplements the behaviour of the authors' prior work (their reference
[5], "Toward polar sea-ice classification using color-based segmentation and
auto-labeling of Sentinel-2 imagery"): pixels are classified into thick ice,
thin ice and open water from their visible/NIR reflectance, after first
detecting and compensating thin clouds and cloud shadows so they do not
masquerade as ice (bright) or water (dark).

Algorithm
---------
1. *Thin-cloud detection.*  Thin clouds raise brightness while flattening the
   spectrum and, crucially, raising the NIR reflectance of dark surfaces.  A
   pixel is flagged cloudy when its "whiteness" (low band-to-band spread) and
   brightness both exceed thresholds but its brightness is not high enough to
   be snow-covered ice.
2. *Shadow detection.*  Shadows are dark in every band but, unlike water,
   keep a high NIR/blue ratio relative to their brightness.
3. *Compensation.*  Cloudy pixels are darkened back toward their estimated
   surface signal by inverting the thin-cloud mixing model with a local
   optical-depth estimate; shadowed pixels are brightened by the inverse of
   the shadow factor.
4. *Color classification.*  The compensated brightness (mean of B2, B3, B4)
   is thresholded into open water / thin ice / thick ice, with the NDWI-like
   (B3 - B8)/(B3 + B8) index separating water from thin ice near the
   boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE
from repro.sentinel2.scene import S2Image


@dataclass(frozen=True)
class SegmentationConfig:
    """Thresholds of the color-based segmentation."""

    thick_ice_brightness: float = 0.58
    thin_ice_brightness: float = 0.18
    water_ndwi: float = 0.35
    cloud_brightness_min: float = 0.30
    cloud_brightness_max: float = 0.75
    cloud_whiteness_max: float = 0.08
    cloud_nir_min: float = 0.25
    shadow_brightness_max: float = 0.20
    shadow_nir_ratio_min: float = 0.45
    shadow_recovery: float = 0.45
    cloud_reflectance: float = 0.85

    def __post_init__(self) -> None:
        if not self.thin_ice_brightness < self.thick_ice_brightness:
            raise ValueError("thin_ice_brightness must be below thick_ice_brightness")
        if not 0 <= self.shadow_recovery < 1:
            raise ValueError("shadow_recovery must be in [0, 1)")


@dataclass
class SegmentationResult:
    """Output of :func:`segment_image`."""

    class_map: np.ndarray
    cloud_mask: np.ndarray
    shadow_mask: np.ndarray
    compensated_brightness: np.ndarray

    @property
    def cloud_fraction(self) -> float:
        return float(self.cloud_mask.mean())

    @property
    def shadow_fraction(self) -> float:
        return float(self.shadow_mask.mean())

    def class_fractions(self) -> dict[int, float]:
        values, counts = np.unique(self.class_map, return_counts=True)
        total = float(self.class_map.size)
        return {int(v): float(c) / total for v, c in zip(values, counts)}


def _brightness(bands: np.ndarray) -> np.ndarray:
    """Mean visible reflectance (B2, B3, B4)."""
    return bands[:3].mean(axis=0)


def _whiteness(bands: np.ndarray) -> np.ndarray:
    """Band-to-band spread of the visible channels (low = spectrally flat)."""
    vis = bands[:3]
    return vis.max(axis=0) - vis.min(axis=0)


def detect_thin_clouds(bands: np.ndarray, config: SegmentationConfig) -> np.ndarray:
    """Boolean mask of thin-cloud contaminated pixels."""
    brightness = _brightness(bands)
    whiteness = _whiteness(bands)
    nir = bands[3]
    return (
        (brightness >= config.cloud_brightness_min)
        & (brightness <= config.cloud_brightness_max)
        & (whiteness <= config.cloud_whiteness_max)
        & (nir >= config.cloud_nir_min)
    )


def detect_shadows(bands: np.ndarray, config: SegmentationConfig) -> np.ndarray:
    """Boolean mask of cloud-shadow pixels.

    Shadows are dark overall but preserve the spectral shape of the shadowed
    surface, so the NIR-to-brightness ratio stays higher than for open water
    (which is nearly black in the NIR).
    """
    brightness = _brightness(bands)
    nir = bands[3]
    with np.errstate(divide="ignore", invalid="ignore"):
        nir_ratio = np.where(brightness > 1e-6, nir / np.maximum(brightness, 1e-6), 0.0)
    return (brightness <= config.shadow_brightness_max) & (
        nir_ratio >= config.shadow_nir_ratio_min
    )


def compensate(
    bands: np.ndarray,
    cloud_mask: np.ndarray,
    shadow_mask: np.ndarray,
    config: SegmentationConfig,
) -> np.ndarray:
    """Remove thin-cloud brightening and shadow darkening from the bands.

    For cloudy pixels the thin-cloud mixing model
    ``r_obs = t * r_surf + (1 - t) * r_cloud`` is inverted with a
    transmittance estimated from how far the pixel's whiteness-weighted
    brightness sits between the surface and cloud reflectance.  For shadowed
    pixels the darkening is undone multiplicatively.
    """
    out = np.array(bands, copy=True)
    if cloud_mask.any():
        brightness = _brightness(bands)
        # Transmittance estimate: cloudier pixels sit closer to r_cloud.
        t = np.clip(
            (config.cloud_reflectance - brightness)
            / max(config.cloud_reflectance - config.thin_ice_brightness, 1e-6),
            0.2,
            1.0,
        )
        t = np.where(cloud_mask, t, 1.0)
        out = (out - (1.0 - t)[None] * config.cloud_reflectance) / t[None]
    if shadow_mask.any():
        factor = 1.0 / (1.0 - config.shadow_recovery)
        out = np.where(shadow_mask[None], out * factor, out)
    return np.clip(out, 0.0, 1.0)


def segment_image(
    image: S2Image, config: SegmentationConfig | None = None
) -> SegmentationResult:
    """Segment a simulated Sentinel-2 image into surface classes.

    Returns per-pixel classes plus the detected cloud/shadow masks so the
    auto-labeling stage can flag photons that fall under clouds (those labels
    are less trustworthy and are routed to the manual-correction step).
    """
    cfg = config if config is not None else SegmentationConfig()
    bands = np.asarray(image.bands, dtype=float)
    if bands.ndim != 3 or bands.shape[0] != 4:
        raise ValueError("image.bands must have shape (4, ny, nx)")

    cloud_mask = detect_thin_clouds(bands, cfg)
    shadow_mask = detect_shadows(bands, cfg) & ~cloud_mask
    compensated = compensate(bands, cloud_mask, shadow_mask, cfg)

    brightness = _brightness(compensated)
    green = compensated[1]
    nir = compensated[3]
    with np.errstate(divide="ignore", invalid="ignore"):
        ndwi = np.where(green + nir > 1e-6, (green - nir) / np.maximum(green + nir, 1e-6), 0.0)

    class_map = np.full(brightness.shape, CLASS_THIN_ICE, dtype=np.int8)
    class_map[brightness >= cfg.thick_ice_brightness] = CLASS_THICK_ICE
    water = (brightness < cfg.thin_ice_brightness) | (
        (brightness < cfg.thick_ice_brightness * 0.6) & (ndwi > cfg.water_ndwi)
    )
    class_map[water] = CLASS_OPEN_WATER

    return SegmentationResult(
        class_map=class_map,
        cloud_mask=cloud_mask,
        shadow_mask=shadow_mask,
        compensated_brightness=brightness,
    )
