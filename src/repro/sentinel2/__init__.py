"""Sentinel-2 substrate: multispectral scene simulator and color-based segmentation.

The paper auto-labels ICESat-2 photons by overlaying them on Sentinel-2
images that were segmented into thick ice, thin ice and open water with the
authors' thin-cloud/shadow-filtered color-based method (their reference [5]).
Real S2 L1C imagery is not available offline, so this package provides:

* :mod:`repro.sentinel2.scene` — renders a ground-truth
  :class:`~repro.surface.IceScene` into top-of-atmosphere reflectance for the
  10 m bands B2 (blue), B3 (green), B4 (red) and B8 (NIR);
* :mod:`repro.sentinel2.cloud` — synthesises thin-cloud optical-depth and
  cloud-shadow fields and applies them to the reflectance;
* :mod:`repro.sentinel2.segmentation` — the color-based segmentation with
  thin-cloud and shadow filtering that recovers per-pixel surface labels.
"""

from repro.sentinel2.scene import S2SceneConfig, S2Image, render_scene
from repro.sentinel2.cloud import CloudConfig, apply_clouds_and_shadows, synthesize_cloud_fields
from repro.sentinel2.segmentation import SegmentationConfig, SegmentationResult, segment_image

__all__ = [
    "S2SceneConfig",
    "S2Image",
    "render_scene",
    "CloudConfig",
    "synthesize_cloud_fields",
    "apply_clouds_and_shadows",
    "SegmentationConfig",
    "SegmentationResult",
    "segment_image",
]
