"""Thin cloud and shadow synthesis for simulated Sentinel-2 scenes.

The authors' segmentation method (their reference [5]) is specifically a
*thin-cloud and shadow filtered* color-based segmentation, and the paper
reports that remaining thick cloud and shadow cover causes mislabeled IS2
photons that require manual correction.  To exercise both behaviours the
simulator injects:

* a smooth thin-cloud optical-depth field that brightens and flattens the
  spectra underneath (partially transparent), and
* compact cloud shadows displaced from the thickest cloud cores that darken
  the surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.surface.fields import gaussian_random_field
from repro.utils.random import default_rng


@dataclass(frozen=True)
class CloudConfig:
    """Parameters controlling the synthesised cloud and shadow fields."""

    thin_cloud_fraction: float = 0.25
    max_optical_depth: float = 0.8
    cloud_correlation_px: float = 120.0
    cloud_reflectance: float = 0.85
    shadow_fraction: float = 0.04
    shadow_darkening: float = 0.45
    shadow_offset_px: tuple[int, int] = (25, 15)

    def __post_init__(self) -> None:
        if not 0.0 <= self.thin_cloud_fraction <= 1.0:
            raise ValueError("thin_cloud_fraction must be in [0, 1]")
        if not 0.0 <= self.shadow_fraction <= 1.0:
            raise ValueError("shadow_fraction must be in [0, 1]")
        if self.max_optical_depth < 0:
            raise ValueError("max_optical_depth must be non-negative")
        if not 0.0 <= self.shadow_darkening <= 1.0:
            raise ValueError("shadow_darkening must be in [0, 1]")


def synthesize_cloud_fields(
    shape: tuple[int, int],
    config: CloudConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate (optical_depth, shadow_mask) fields for an image grid.

    Optical depth is zero outside clouds and rises smoothly to
    ``max_optical_depth`` in cloud cores covering ``thin_cloud_fraction`` of
    the grid.  Shadows are the densest cores shifted by ``shadow_offset_px``
    (sun-geometry displacement) covering about ``shadow_fraction`` of pixels.
    """
    cfg = config if config is not None else CloudConfig()
    rng = default_rng(rng)
    ny, nx = shape
    if ny <= 0 or nx <= 0:
        raise ValueError("shape must be positive")

    if cfg.thin_cloud_fraction == 0.0:
        return np.zeros(shape), np.zeros(shape, dtype=bool)

    corr = min(cfg.cloud_correlation_px, max(ny, nx) / 2.0)
    field = gaussian_random_field(shape, max(corr, 1.0), rng)
    threshold = np.quantile(field, 1.0 - cfg.thin_cloud_fraction)
    excess = np.clip(field - threshold, 0.0, None)
    if excess.max() > 0:
        optical_depth = cfg.max_optical_depth * excess / excess.max()
    else:
        optical_depth = np.zeros(shape)

    # Shadows: densest cloud cores displaced by the sun-geometry offset.
    shadow_mask = np.zeros(shape, dtype=bool)
    if cfg.shadow_fraction > 0:
        core_threshold = np.quantile(field, 1.0 - cfg.shadow_fraction)
        cores = field > core_threshold
        dy, dx = cfg.shadow_offset_px
        shadow_mask = np.roll(np.roll(cores, dy, axis=0), dx, axis=1)
    return optical_depth, shadow_mask


def apply_clouds_and_shadows(
    reflectance: np.ndarray,
    optical_depth: np.ndarray,
    shadow_mask: np.ndarray,
    config: CloudConfig | None = None,
) -> np.ndarray:
    """Blend cloud brightening and shadow darkening into a reflectance stack.

    ``reflectance`` has shape ``(n_bands, ny, nx)``.  A thin cloud of
    transmittance ``t = exp(-tau)`` mixes the surface signal with the cloud's
    own reflectance: ``r' = t * r + (1 - t) * r_cloud``.  Shadowed pixels are
    multiplied by ``1 - shadow_darkening``.
    """
    cfg = config if config is not None else CloudConfig()
    reflect = np.asarray(reflectance, dtype=float)
    if reflect.ndim != 3:
        raise ValueError("reflectance must have shape (n_bands, ny, nx)")
    tau = np.asarray(optical_depth, dtype=float)
    shadow = np.asarray(shadow_mask, dtype=bool)
    if tau.shape != reflect.shape[1:] or shadow.shape != reflect.shape[1:]:
        raise ValueError("cloud fields must match the image grid shape")

    transmittance = np.exp(-tau)[None, :, :]
    out = transmittance * reflect + (1.0 - transmittance) * cfg.cloud_reflectance
    out = np.where(shadow[None, :, :], out * (1.0 - cfg.shadow_darkening), out)
    return out
