"""Render a ground-truth ice scene into Sentinel-2-like multispectral imagery.

Reflectance model (top-of-atmosphere, unitless 0..1):

=============  =====  =====  =====  =====
surface        B2     B3     B4     B8
=============  =====  =====  =====  =====
thick/snow ice 0.82   0.80   0.78   0.72
thin ice       0.38   0.36   0.32   0.22
open water     0.08   0.06   0.04   0.02
=============  =====  =====  =====  =====

These follow the qualitative spectra used by the authors' color-based
segmentation: snow-covered ice is bright and spectrally flat, thin ice (grey
ice / nilas) is intermediate with a falling NIR, and open water is dark in
all bands.  Per-pixel texture noise and a freeboard-dependent brightening of
ridges are added, then thin clouds and shadows from
:mod:`repro.sentinel2.cloud` modulate the image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone

import numpy as np

from repro.geodesy.grid import GridDefinition
from repro.sentinel2.cloud import CloudConfig, apply_clouds_and_shadows, synthesize_cloud_fields
from repro.surface.scene import IceScene
from repro.utils.random import default_rng

#: Band names rendered by the simulator, in storage order.
BAND_NAMES = ("B2", "B3", "B4", "B8")

#: Mean TOA reflectance per class per band (rows follow class ids 0, 1, 2).
CLASS_REFLECTANCE = np.array(
    [
        [0.82, 0.80, 0.78, 0.72],  # thick / snow-covered ice
        [0.38, 0.36, 0.32, 0.22],  # thin ice
        [0.08, 0.06, 0.04, 0.02],  # open water
    ]
)


@dataclass(frozen=True)
class S2SceneConfig:
    """Rendering parameters for a simulated Sentinel-2 acquisition."""

    pixel_size_m: float = 10.0
    texture_noise: float = 0.02
    ridge_brightening: float = 0.05
    cloud: CloudConfig = field(default_factory=CloudConfig)
    seed: int = 11

    def __post_init__(self) -> None:
        if self.pixel_size_m <= 0:
            raise ValueError("pixel_size_m must be positive")
        if self.texture_noise < 0 or self.ridge_brightening < 0:
            raise ValueError("noise terms must be non-negative")


@dataclass
class S2Image:
    """A simulated Sentinel-2 acquisition over an ice scene.

    Attributes
    ----------
    bands:
        Array of shape ``(4, ny, nx)`` holding B2, B3, B4, B8 reflectance.
    origin_x_m, origin_y_m, pixel_size_m:
        Georeferencing in Antarctic polar stereographic metres.  The origin
        is the *lower-left* corner of the image.
    acquisition_time:
        UTC acquisition time (used for the IS2/S2 temporal pairing).
    cloud_optical_depth, shadow_mask:
        Per-pixel thin-cloud optical depth and boolean shadow mask — the
        ground truth that the segmentation's cloud/shadow filter is judged
        against.
    truth_class_map:
        The underlying surface class of every pixel (for evaluation only).
    """

    bands: np.ndarray
    origin_x_m: float
    origin_y_m: float
    pixel_size_m: float
    acquisition_time: datetime
    cloud_optical_depth: np.ndarray
    shadow_mask: np.ndarray
    truth_class_map: np.ndarray

    def __post_init__(self) -> None:
        bands = np.asarray(self.bands, dtype=float)
        if bands.ndim != 3 or bands.shape[0] != len(BAND_NAMES):
            raise ValueError(f"bands must have shape (4, ny, nx), got {bands.shape}")
        self.bands = bands
        if self.acquisition_time.tzinfo is None:
            self.acquisition_time = self.acquisition_time.replace(tzinfo=timezone.utc)

    @property
    def shape(self) -> tuple[int, int]:
        """(ny, nx) of the image grid."""
        return self.bands.shape[1], self.bands.shape[2]

    def band(self, name: str) -> np.ndarray:
        """Reflectance of a single band by name (e.g. ``"B4"``)."""
        try:
            idx = BAND_NAMES.index(name)
        except ValueError:
            raise KeyError(f"unknown band {name!r}; available: {BAND_NAMES}") from None
        return self.bands[idx]

    @property
    def grid(self) -> GridDefinition:
        """The image's pixel grid as the shared :class:`GridDefinition`.

        All projected-point -> pixel arithmetic (the IS2/S2 overlay, the
        parallel auto-labeling job, the Level-3 binning) goes through this
        one indexing helper.
        """
        ny, nx = self.shape
        return GridDefinition(
            x_min_m=self.origin_x_m,
            y_min_m=self.origin_y_m,
            cell_size_m=self.pixel_size_m,
            nx=nx,
            ny=ny,
        )

    def pixel_index(self, x_m: np.ndarray, y_m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row/column indices of projected points, clipped to the grid."""
        return self.grid.cell_index(x_m, y_m, clip=True)

    def contains(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """Boolean mask of projected points inside the image footprint."""
        return self.grid.contains(x_m, y_m)

    def shifted(self, dx_m: float, dy_m: float) -> "S2Image":
        """Return a copy whose georeferencing is translated by (dx, dy) metres.

        This is how the paper's drift correction is applied: the image is
        shifted to align with the IS2 track (Table I), which only changes the
        origin, not the pixel data.
        """
        return S2Image(
            bands=self.bands,
            origin_x_m=self.origin_x_m + dx_m,
            origin_y_m=self.origin_y_m + dy_m,
            pixel_size_m=self.pixel_size_m,
            acquisition_time=self.acquisition_time,
            cloud_optical_depth=self.cloud_optical_depth,
            shadow_mask=self.shadow_mask,
            truth_class_map=self.truth_class_map,
        )


def render_scene(
    scene: IceScene,
    config: S2SceneConfig | None = None,
    acquisition_time: datetime | None = None,
    drift_offset_m: tuple[float, float] = (0.0, 0.0),
    rng: np.random.Generator | int | None = None,
) -> S2Image:
    """Render an :class:`IceScene` into a simulated Sentinel-2 image.

    Parameters
    ----------
    drift_offset_m:
        Apparent (dx, dy) displacement of the ice field at the S2 acquisition
        time relative to the IS2 overpass.  A non-zero drift shifts the image
        georeferencing so the rendered ice is *misaligned* with the IS2
        track — exactly the misregistration the paper's Table I corrects by
        shifting the S2 images back.
    """
    cfg = config if config is not None else S2SceneConfig()
    rng = default_rng(rng if rng is not None else cfg.seed)
    if acquisition_time is None:
        acquisition_time = datetime(2019, 11, 4, 19, 45, 29, tzinfo=timezone.utc)

    class_map = scene.class_map
    ny, nx = class_map.shape

    # Base reflectance per band from the class lookup table (vectorised gather).
    reflect = CLASS_REFLECTANCE[class_map]            # (ny, nx, 4)
    reflect = np.moveaxis(reflect, -1, 0).copy()      # (4, ny, nx)

    # Texture noise and ridge brightening.
    reflect += cfg.texture_noise * rng.standard_normal((1, ny, nx))
    if cfg.ridge_brightening > 0:
        ridge_boost = np.clip(scene.freeboard_map - 0.6, 0.0, None)
        reflect += cfg.ridge_brightening * ridge_boost[None, :, :]

    # Thin clouds and shadows.
    optical_depth, shadow_mask = synthesize_cloud_fields((ny, nx), cfg.cloud, rng)
    reflect = apply_clouds_and_shadows(reflect, optical_depth, shadow_mask, cfg.cloud)

    np.clip(reflect, 0.0, 1.0, out=reflect)

    scene_cfg = scene.config
    return S2Image(
        bands=reflect,
        origin_x_m=scene_cfg.origin_x_m + drift_offset_m[0],
        origin_y_m=scene_cfg.origin_y_m + drift_offset_m[1],
        pixel_size_m=scene_cfg.pixel_size_m,
        acquisition_time=acquisition_time,
        cloud_optical_depth=optical_depth,
        shadow_mask=shadow_mask,
        truth_class_map=class_map.copy(),
    )
