"""Fixed-length along-track resampling of ATL03 photon clouds.

This is the paper's "2 m sampling strategy": the photon cloud of a beam is
divided into contiguous, fixed-length along-track windows and each window is
summarised by robust statistics of its signal photons (mean/median/std of
height, photon counts, background rate, ...).  The implementation is
vectorised: photons are already sorted by along-track distance, so window
membership is a ``searchsorted`` over the window edges and every statistic is
computed with ``np.add.reduceat``-style grouped reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.atl03.granule import BeamData
from repro.config import RESAMPLE_WINDOW_M
from repro.utils.validation import ensure_positive


@dataclass
class SegmentArray:
    """Struct-of-arrays container for resampled along-track segments.

    All arrays have one entry per segment.  ``n_photons`` counts the signal
    photons used for the statistics; segments whose count is zero carry NaN
    statistics and are excluded by :meth:`valid_mask`.
    """

    beam_name: str
    window_length_m: float
    center_along_track_m: np.ndarray
    start_along_track_m: np.ndarray
    lat_deg: np.ndarray
    lon_deg: np.ndarray
    x_m: np.ndarray
    y_m: np.ndarray
    height_mean_m: np.ndarray
    height_median_m: np.ndarray
    height_std_m: np.ndarray
    height_min_m: np.ndarray
    height_max_m: np.ndarray
    n_photons: np.ndarray
    n_high_conf: np.ndarray
    photon_rate: np.ndarray
    background_rate_hz: np.ndarray
    delta_time_s: np.ndarray
    truth_class: np.ndarray

    def __post_init__(self) -> None:
        n = self.center_along_track_m.shape[0]
        for name in (
            "start_along_track_m", "lat_deg", "lon_deg", "x_m", "y_m",
            "height_mean_m", "height_median_m", "height_std_m", "height_min_m",
            "height_max_m", "n_photons", "n_high_conf", "photon_rate",
            "background_rate_hz", "delta_time_s", "truth_class",
        ):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"segment field {name} has inconsistent length")

    @property
    def n_segments(self) -> int:
        return int(self.center_along_track_m.shape[0])

    def valid_mask(self, min_photons: int = 1) -> np.ndarray:
        """Segments containing at least ``min_photons`` signal photons."""
        return self.n_photons >= min_photons

    def height_error_m(self, ranging_noise_m: float = 0.10) -> np.ndarray:
        """Standard error of each segment's mean height.

        The per-photon spread is the larger of the measured in-segment
        standard deviation and the instrument ranging noise (a one-photon
        segment has a sample std of zero but is still uncertain at the
        ranging-noise level); the error of the mean divides by ``sqrt(n)``.
        Empty segments get NaN.
        """
        if ranging_noise_m < 0:
            raise ValueError("ranging_noise_m must be non-negative")
        n = np.maximum(self.n_photons, 1).astype(float)
        spread = np.maximum(np.nan_to_num(self.height_std_m, nan=ranging_noise_m), ranging_noise_m)
        error = spread / np.sqrt(n)
        return np.where(self.n_photons > 0, error, np.nan)

    def select(self, mask: np.ndarray) -> "SegmentArray":
        """Subset of segments where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self.n_segments,):
            raise ValueError("mask must be boolean with one entry per segment")
        kwargs = {}
        for name, value in self.__dict__.items():
            if isinstance(value, np.ndarray):
                kwargs[name] = value[mask]
            else:
                kwargs[name] = value
        return SegmentArray(**kwargs)

    def as_dict(self) -> dict[str, np.ndarray]:
        """Array fields as a plain dictionary (metadata excluded)."""
        return {
            name: value
            for name, value in self.__dict__.items()
            if isinstance(value, np.ndarray)
        }


def concatenate_segments(
    arrays: "Sequence[SegmentArray]", beam_name: str | None = None
) -> SegmentArray:
    """Concatenate several :class:`SegmentArray`\\ s into one.

    Used to pool beams (and, in the campaign layer, whole granules) for
    classifier training.  All inputs must have been resampled with the same
    ``window_length_m`` — mixing resolutions would silently corrupt the
    photon-rate and sequence features, so a mismatch raises ``ValueError``.

    Parameters
    ----------
    arrays:
        One or more segment arrays, concatenated in the given order.
    beam_name:
        Name of the combined array; defaults to the input names joined
        with ``"+"``.
    """
    arrays = list(arrays)
    if not arrays:
        raise ValueError("need at least one SegmentArray to concatenate")
    windows = {float(a.window_length_m) for a in arrays}
    if len(windows) > 1:
        per_beam = [(a.beam_name, float(a.window_length_m)) for a in arrays]
        raise ValueError(
            "cannot concatenate segments resampled with different window lengths "
            f"{sorted(windows)} (per beam: {per_beam}); resample every beam with "
            "the same window_length_m before combining"
        )
    name = beam_name if beam_name is not None else "+".join(a.beam_name for a in arrays)
    if len(arrays) == 1:
        single = arrays[0]
        if name == single.beam_name:
            return single
        return SegmentArray(
            beam_name=name, window_length_m=single.window_length_m, **single.as_dict()
        )
    fields = {
        field_name: np.concatenate([a.as_dict()[field_name] for a in arrays])
        for field_name in arrays[0].as_dict()
    }
    return SegmentArray(beam_name=name, window_length_m=arrays[0].window_length_m, **fields)


def _grouped_reduce(values: np.ndarray, boundaries: np.ndarray, func: str) -> np.ndarray:
    """Grouped reduction of ``values`` over contiguous slices.

    ``boundaries`` has length ``n_groups + 1`` and gives slice limits into
    ``values`` (photons sorted by segment).  Empty groups yield NaN.
    """
    n_groups = boundaries.shape[0] - 1
    counts = np.diff(boundaries)
    out = np.full(n_groups, np.nan)
    non_empty = counts > 0
    if not non_empty.any():
        return out
    if func == "sum":
        sums = np.add.reduceat(values, boundaries[:-1][non_empty])
        out[non_empty] = sums
        return out
    if func == "mean":
        sums = np.add.reduceat(values, boundaries[:-1][non_empty])
        out[non_empty] = sums / counts[non_empty]
        return out
    if func == "min":
        out[non_empty] = np.minimum.reduceat(values, boundaries[:-1][non_empty])
        return out
    if func == "max":
        out[non_empty] = np.maximum.reduceat(values, boundaries[:-1][non_empty])
        return out
    if func == "median":
        # Median has no reduceat; do it per group but only over non-empty ones.
        idx = np.flatnonzero(non_empty)
        for i in idx:
            out[i] = np.median(values[boundaries[i]:boundaries[i + 1]])
        return out
    raise ValueError(f"unsupported reduction {func!r}")


def resample_fixed_window(
    beam: BeamData,
    window_length_m: float = RESAMPLE_WINDOW_M,
    min_confidence: int = 3,
    ground_speed_m_s: float = 7000.0,
) -> SegmentArray:
    """Resample one beam's photons into fixed-length along-track segments.

    Parameters
    ----------
    beam:
        Photon data of one beam (sorted by along-track distance).
    window_length_m:
        Segment length in metres (2 m in the paper).
    min_confidence:
        Minimum ATL03 signal confidence of photons used for the height
        statistics.  Lower-confidence photons still contribute to the
        background estimate.

    Returns
    -------
    SegmentArray
        One record per window covering the beam's along-track extent,
        including empty windows (NaN statistics, zero photon count) so that
        consecutive segments remain equidistant — required by the LSTM's
        sequence construction.
    """
    ensure_positive(window_length_m, "window_length_m")
    if beam.n_photons == 0:
        raise ValueError("cannot resample an empty beam")

    along = beam.along_track_m
    start = float(np.floor(along[0] / window_length_m) * window_length_m)
    stop = float(along[-1])
    n_segments = max(int(np.ceil((stop - start) / window_length_m)), 1)
    edges = start + np.arange(n_segments + 1) * window_length_m
    centers = 0.5 * (edges[:-1] + edges[1:])

    # Signal photons used for surface statistics.
    signal_mask = beam.signal_conf >= min_confidence
    sig_along = along[signal_mask]
    sig_height = beam.height_m[signal_mask]
    sig_lat = beam.lat_deg[signal_mask]
    sig_lon = beam.lon_deg[signal_mask]
    sig_x = beam.x_m[signal_mask]
    sig_y = beam.y_m[signal_mask]
    sig_time = beam.delta_time_s[signal_mask]
    sig_truth = beam.truth_class[signal_mask]
    sig_bg = beam.background_rate_hz[signal_mask]

    boundaries = np.searchsorted(sig_along, edges)
    counts = np.diff(boundaries).astype(np.int64)

    height_mean = _grouped_reduce(sig_height, boundaries, "mean")
    height_median = _grouped_reduce(sig_height, boundaries, "median")
    height_min = _grouped_reduce(sig_height, boundaries, "min")
    height_max = _grouped_reduce(sig_height, boundaries, "max")
    # Std via E[x^2] - E[x]^2 on grouped sums (guarding tiny negatives).
    mean_sq = _grouped_reduce(sig_height**2, boundaries, "mean")
    variance = np.clip(mean_sq - height_mean**2, 0.0, None)
    height_std = np.sqrt(variance)

    lat = _grouped_reduce(sig_lat, boundaries, "mean")
    lon = _grouped_reduce(sig_lon, boundaries, "mean")
    x = _grouped_reduce(sig_x, boundaries, "mean")
    y = _grouped_reduce(sig_y, boundaries, "mean")
    delta_time = _grouped_reduce(sig_time, boundaries, "mean")
    background = _grouped_reduce(sig_bg, boundaries, "mean")

    # High-confidence photon count per segment over *all* photons.
    high_conf_mask = beam.signal_conf >= 4
    hc_boundaries = np.searchsorted(along[high_conf_mask], edges)
    n_high_conf = np.diff(hc_boundaries).astype(np.int64)

    # Photon rate: signal photons per laser shot in the window.
    shots_per_window = window_length_m / 0.7
    photon_rate = counts / shots_per_window

    # Majority ground-truth class per segment (evaluation only).
    truth = np.full(n_segments, -1, dtype=np.int8)
    non_empty = counts > 0
    idx = np.flatnonzero(non_empty)
    for i in idx:
        seg_truth = sig_truth[boundaries[i]:boundaries[i + 1]]
        vals, cnts = np.unique(seg_truth, return_counts=True)
        truth[i] = vals[np.argmax(cnts)]

    # Geolocate empty segments by interpolating along the window centres so
    # downstream windowing still has coordinates for every segment.
    if (~non_empty).any() and non_empty.any():
        for arr in (lat, lon, x, y, delta_time, background):
            arr[~non_empty] = np.interp(
                centers[~non_empty], centers[non_empty], arr[non_empty]
            )

    return SegmentArray(
        beam_name=beam.name,
        window_length_m=float(window_length_m),
        center_along_track_m=centers,
        start_along_track_m=edges[:-1],
        lat_deg=lat,
        lon_deg=lon,
        x_m=x,
        y_m=y,
        height_mean_m=height_mean,
        height_median_m=height_median,
        height_std_m=height_std,
        height_min_m=height_min,
        height_max_m=height_max,
        n_photons=counts,
        n_high_conf=n_high_conf,
        photon_rate=photon_rate,
        background_rate_hz=background,
        delta_time_s=delta_time,
        truth_class=truth,
    )
