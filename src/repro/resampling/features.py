"""Per-segment classification features.

The paper identifies six effective features per 2 m segment (Section III.B.1):
height/elevation, height standard deviation, high-confidence photon count,
photon-rate change, background photon rate and background-rate change.  The
"change" features are along-track first differences, which is what lets the
models see transitions between surface types.
"""

from __future__ import annotations

import numpy as np

from repro.resampling.window import SegmentArray

#: Canonical feature order used by the models.
FEATURE_NAMES = (
    "height_mean_m",
    "height_std_m",
    "n_high_conf",
    "photon_rate_change",
    "background_rate_hz",
    "background_rate_change",
)


def _along_track_change(values: np.ndarray) -> np.ndarray:
    """Centred along-track difference with zero-padded ends."""
    change = np.zeros_like(values, dtype=float)
    if values.shape[0] > 2:
        change[1:-1] = 0.5 * (values[2:] - values[:-2])
    if values.shape[0] >= 2:
        change[0] = values[1] - values[0]
        change[-1] = values[-1] - values[-2]
    return change


def _group_slices(groups: np.ndarray | None, n: int) -> list[slice]:
    """Contiguous-run slices of ``groups`` (the whole range when None)."""
    if groups is None:
        return [slice(0, n)]
    groups = np.asarray(groups)
    if groups.ndim != 1 or groups.shape[0] != n:
        raise ValueError("groups must be one-dimensional with one entry per segment")
    boundaries = np.concatenate(
        ([0], np.flatnonzero(np.diff(groups) != 0) + 1, [n])
    )
    return [slice(int(a), int(b)) for a, b in zip(boundaries[:-1], boundaries[1:])]


def _grouped_change(values: np.ndarray, groups: np.ndarray | None) -> np.ndarray:
    """Along-track change computed independently within each group."""
    change = np.empty_like(values, dtype=float)
    for sl in _group_slices(groups, values.shape[0]):
        change[sl] = _along_track_change(values[sl])
    return change


def extract_features(
    segments: SegmentArray,
    fill_value: float = 0.0,
    groups: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Compute the six per-segment features as a name -> array mapping.

    NaN statistics from empty segments are replaced by ``fill_value`` so the
    feature matrix is always finite (the models cannot ingest NaN).
    ``groups`` marks contiguous independent tracks (e.g. pooled granules):
    the along-track *change* features are differenced within each group only,
    so no feature mixes two unrelated scenes across a pooling boundary.
    """
    height = np.nan_to_num(segments.height_mean_m, nan=fill_value)
    height_std = np.nan_to_num(segments.height_std_m, nan=fill_value)
    n_high_conf = segments.n_high_conf.astype(float)
    photon_rate = np.nan_to_num(segments.photon_rate, nan=fill_value)
    background = np.nan_to_num(segments.background_rate_hz, nan=fill_value)

    return {
        "height_mean_m": height,
        "height_std_m": height_std,
        "n_high_conf": n_high_conf,
        "photon_rate_change": _grouped_change(photon_rate, groups),
        "background_rate_hz": background,
        "background_rate_change": _grouped_change(background, groups),
    }


def feature_matrix(
    segments: SegmentArray,
    normalize: bool = True,
    stats: tuple[np.ndarray, np.ndarray] | None = None,
    groups: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Stack the features into an ``(n_segments, 6)`` matrix.

    Parameters
    ----------
    normalize:
        If True, features are standardised to zero mean / unit variance.
    stats:
        Optional pre-computed ``(mean, std)`` to reuse for inference-time
        normalisation (so training and inference share the same scaling).
    groups:
        Optional contiguous track ids; change features never cross them
        (see :func:`extract_features`).

    Returns
    -------
    (X, (mean, std)):
        The feature matrix and the normalisation statistics used.
    """
    features = extract_features(segments, groups=groups)
    X = np.column_stack([features[name] for name in FEATURE_NAMES]).astype(np.float64)

    if not normalize:
        return X, (np.zeros(X.shape[1]), np.ones(X.shape[1]))

    if stats is None:
        mean = X.mean(axis=0)
        std = X.std(axis=0)
    else:
        mean, std = stats
        mean = np.asarray(mean, dtype=float)
        std = np.asarray(std, dtype=float)
        if mean.shape != (X.shape[1],) or std.shape != (X.shape[1],):
            raise ValueError("stats must be (mean, std) arrays with one entry per feature")
    safe_std = np.where(std > 1e-12, std, 1.0)
    X = (X - mean) / safe_std
    return X, (mean, safe_std)


def sequence_windows(X: np.ndarray, sequence_length: int = 5) -> np.ndarray:
    """Build overlapping sequences of neighbouring segments for the LSTM.

    The paper classifies segment *n* from segments n-2 .. n+2, i.e. sequences
    of length five centred on the segment of interest.  Edge segments reuse
    the nearest valid neighbours (edge padding) so every segment gets a
    sequence.

    Returns an array of shape ``(n_segments, sequence_length, n_features)``.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be (n_segments, n_features)")
    if sequence_length < 1 or sequence_length % 2 == 0:
        raise ValueError("sequence_length must be a positive odd number")
    half = sequence_length // 2
    padded = np.pad(X, ((half, half), (0, 0)), mode="edge")
    n = X.shape[0]
    # Sliding windows over the padded array, one per original segment.
    windows = np.lib.stride_tricks.sliding_window_view(padded, (sequence_length, X.shape[1]))
    return windows[:n, 0, :, :].copy()


def grouped_sequence_windows(
    X: np.ndarray, sequence_length: int = 5, groups: np.ndarray | None = None
) -> np.ndarray:
    """Sequence windows that never span group boundaries.

    ``groups`` assigns each segment to a contiguous block (e.g. one granule
    of a pooled campaign training set); :func:`sequence_windows` is applied
    per block with edge padding, so no sequence mixes segments from two
    different tracks.  With ``groups=None`` this is exactly
    :func:`sequence_windows`.
    """
    if groups is None:
        return sequence_windows(X, sequence_length)
    X = np.asarray(X, dtype=float)
    return np.concatenate(
        [
            sequence_windows(X[sl], sequence_length)
            for sl in _group_slices(groups, X.shape[0])
        ]
    )
