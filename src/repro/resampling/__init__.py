"""Along-track resampling: 2 m windows, feature extraction and photon aggregation.

The paper's central data transformation is resampling the ATL03 photon cloud
into fixed 2 m along-track segments with per-segment statistics (the inputs
to the classifiers), in contrast to the operational ATL07/ATL10 products
which aggregate a fixed number (150) of signal photons into variable-length
segments.  Both resamplings are implemented here, fully vectorised.
"""

from repro.resampling.window import SegmentArray, resample_fixed_window
from repro.resampling.features import FEATURE_NAMES, extract_features, feature_matrix
from repro.resampling.photon_agg import PhotonAggregateSegments, aggregate_photons

__all__ = [
    "SegmentArray",
    "resample_fixed_window",
    "FEATURE_NAMES",
    "extract_features",
    "feature_matrix",
    "PhotonAggregateSegments",
    "aggregate_photons",
]
