"""Fixed-photon-count aggregation (the ATL07/ATL10 segmentation baseline).

The operational ATL07 product accumulates 150 signal photons per segment, so
segment length varies from ~10 m over bright ice to hundreds of metres over
dark leads.  This module implements that aggregation so the pipeline can
emulate ATL07/ATL10 and compare against them, reproducing the paper's point
about resolution: a 2 m fixed window yields far more (and more uniform)
samples than 150-photon aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atl03.granule import BeamData
from repro.config import ATL07_PHOTON_AGGREGATION


@dataclass
class PhotonAggregateSegments:
    """Variable-length segments built from a fixed number of signal photons."""

    beam_name: str
    photons_per_segment: int
    center_along_track_m: np.ndarray
    length_m: np.ndarray
    lat_deg: np.ndarray
    lon_deg: np.ndarray
    x_m: np.ndarray
    y_m: np.ndarray
    height_mean_m: np.ndarray
    height_std_m: np.ndarray
    height_min_m: np.ndarray
    n_photons: np.ndarray
    delta_time_s: np.ndarray
    truth_class: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.center_along_track_m.shape[0])

    def mean_length_m(self) -> float:
        """Average along-track segment length (resolution of the product)."""
        if self.n_segments == 0:
            return 0.0
        return float(self.length_m.mean())


def aggregate_photons(
    beam: BeamData,
    photons_per_segment: int = ATL07_PHOTON_AGGREGATION,
    min_confidence: int = 3,
) -> PhotonAggregateSegments:
    """Aggregate a beam's signal photons into fixed-count segments.

    Photons with confidence below ``min_confidence`` are ignored (the real
    product aggregates signal photons only).  A trailing partial segment with
    fewer than ``photons_per_segment`` photons is dropped, matching the
    operational behaviour.
    """
    if photons_per_segment < 1:
        raise ValueError("photons_per_segment must be >= 1")
    signal = beam.select(beam.signal_conf >= min_confidence)
    n_full = signal.n_photons // photons_per_segment
    if n_full == 0:
        empty = np.empty(0)
        return PhotonAggregateSegments(
            beam_name=beam.name,
            photons_per_segment=photons_per_segment,
            center_along_track_m=empty,
            length_m=empty,
            lat_deg=empty,
            lon_deg=empty,
            x_m=empty,
            y_m=empty,
            height_mean_m=empty,
            height_std_m=empty,
            height_min_m=empty,
            n_photons=np.empty(0, dtype=np.int64),
            delta_time_s=empty,
            truth_class=np.empty(0, dtype=np.int8),
        )

    n_used = n_full * photons_per_segment
    # Reshape the leading photons into (n_segments, photons_per_segment) and
    # reduce along axis 1 — one pass, no Python loop.
    def seg(values: np.ndarray) -> np.ndarray:
        return values[:n_used].reshape(n_full, photons_per_segment)

    along = seg(signal.along_track_m)
    heights = seg(signal.height_m)
    truth = seg(signal.truth_class)

    # Majority class per segment via sorting each row (classes are 0..2).
    truth_sorted = np.sort(truth, axis=1)
    majority = truth_sorted[:, photons_per_segment // 2].astype(np.int8)

    return PhotonAggregateSegments(
        beam_name=beam.name,
        photons_per_segment=photons_per_segment,
        center_along_track_m=along.mean(axis=1),
        length_m=along.max(axis=1) - along.min(axis=1),
        lat_deg=seg(signal.lat_deg).mean(axis=1),
        lon_deg=seg(signal.lon_deg).mean(axis=1),
        x_m=seg(signal.x_m).mean(axis=1),
        y_m=seg(signal.y_m).mean(axis=1),
        height_mean_m=heights.mean(axis=1),
        height_std_m=heights.std(axis=1),
        height_min_m=heights.min(axis=1),
        n_photons=np.full(n_full, photons_per_segment, dtype=np.int64),
        delta_time_s=seg(signal.delta_time_s).mean(axis=1),
        truth_class=majority,
    )
