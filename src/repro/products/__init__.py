"""Emulated ATL07 and ATL10 baseline products.

The paper compares its 2 m ATL03-derived classification, sea surface and
freeboard against the operational ATL07 (sea-ice height + surface class) and
ATL10 (freeboard) products.  Those products are themselves derived from
ATL03 by 150-signal-photon aggregation, a decision-tree surface classifier
and the ATBD sea-surface equations — all of which exist in this library — so
the baselines are generated here from the same simulated granules, which
makes the comparisons self-consistent.
"""

from repro.products.atl07 import ATL07Product, generate_atl07
from repro.products.atl10 import ATL10Product, generate_atl10

__all__ = ["ATL07Product", "generate_atl07", "ATL10Product", "generate_atl10"]
