"""Emulated ATL10 sea-ice freeboard product.

ATL10 computes freeboard for the ATL07 segments within 10 km swaths using
the ATBD reference sea surface.  Here it is derived directly from the
emulated :class:`~repro.products.atl07.ATL07Product`: freeboard is the ATL07
segment height minus the ATL07 sea surface, reported only for ice segments
(the operational product excludes the lead segments themselves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER
from repro.products.atl07 import ATL07Product


@dataclass
class ATL10Product:
    """Per-segment ATL10-style freeboard records of one beam."""

    beam_name: str
    along_track_m: np.ndarray
    freeboard_m: np.ndarray
    sea_surface_m: np.ndarray
    segment_length_m: np.ndarray
    surface_class: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.along_track_m.shape[0])

    def mean_freeboard_m(self) -> float:
        if self.n_segments == 0:
            return 0.0
        return float(self.freeboard_m.mean())

    def distribution(self, bin_width_m: float = 0.02, max_freeboard_m: float = 1.5) -> tuple[np.ndarray, np.ndarray]:
        """Histogram (bin centres, normalised density) of the freeboards."""
        if bin_width_m <= 0 or max_freeboard_m <= 0:
            raise ValueError("bin width and maximum freeboard must be positive")
        edges = np.arange(0.0, max_freeboard_m + bin_width_m, bin_width_m)
        counts, _ = np.histogram(self.freeboard_m, bins=edges)
        density = counts / max(counts.sum(), 1)
        centres = 0.5 * (edges[:-1] + edges[1:])
        return centres, density


def generate_atl10(atl07: ATL07Product, clip_negative: bool = True) -> ATL10Product:
    """Derive the emulated ATL10 freeboard product from an ATL07 product."""
    ice_mask = atl07.surface_class != CLASS_OPEN_WATER
    freeboard = atl07.height_m - atl07.sea_surface_m
    if clip_negative:
        freeboard = np.clip(freeboard, 0.0, None)
    return ATL10Product(
        beam_name=atl07.beam_name,
        along_track_m=atl07.along_track_m[ice_mask],
        freeboard_m=freeboard[ice_mask],
        sea_surface_m=atl07.sea_surface_m[ice_mask],
        segment_length_m=atl07.segment_length_m[ice_mask],
        surface_class=atl07.surface_class[ice_mask],
    )
