"""Emulated ATL07 sea-ice height product.

ATL07 aggregates 150 signal photons of ATL03 into variable-length segments,
computes per-segment surface heights and classifies each segment with the
ATBD decision tree.  This module reproduces that chain on the simulated
granules using :func:`repro.resampling.aggregate_photons` and
:class:`repro.classification.DecisionTreeClassifier`, yielding the baseline
the paper plots in Figs. 6-9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atl03.granule import BeamData
from repro.classification.decision_tree import DecisionTreeClassifier, DecisionTreeConfig
from repro.config import ATL07_PHOTON_AGGREGATION, DEFAULT_SEA_SURFACE, SeaSurfaceConfig
from repro.freeboard.interpolation import interpolate_missing_windows, sea_surface_at
from repro.freeboard.sea_surface import SeaSurfaceEstimate, estimate_sea_surface
from repro.resampling.photon_agg import PhotonAggregateSegments, aggregate_photons


@dataclass
class ATL07Product:
    """Per-segment ATL07-style records of one beam."""

    beam_name: str
    along_track_m: np.ndarray
    segment_length_m: np.ndarray
    height_m: np.ndarray
    height_std_m: np.ndarray
    surface_class: np.ndarray
    sea_surface_m: np.ndarray
    sea_surface: SeaSurfaceEstimate
    truth_class: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.along_track_m.shape[0])

    def mean_segment_length_m(self) -> float:
        """Average segment length; the product's effective resolution."""
        if self.n_segments == 0:
            return 0.0
        return float(self.segment_length_m.mean())

    def points_per_km(self) -> float:
        """Segment density along the track."""
        if self.n_segments < 2:
            return 0.0
        extent_km = (self.along_track_m.max() - self.along_track_m.min()) / 1000.0
        return float(self.n_segments / max(extent_km, 1e-9))


def _aggregate_features(segments: PhotonAggregateSegments) -> np.ndarray:
    """Feature matrix in the canonical six-feature layout for the decision tree.

    The photon-aggregate segments do not carry background-rate features; the
    decision tree only uses height, spread and photon-count columns, so the
    remaining columns are zero-filled.
    """
    n = segments.n_segments
    photon_rate_proxy = np.full(n, float(segments.photons_per_segment))
    with np.errstate(divide="ignore", invalid="ignore"):
        rate_per_shot = segments.photons_per_segment / np.maximum(segments.length_m / 0.7, 1e-6)
    # n_high_conf column is scaled so the tree's photon-rate recovery
    # (n_high_conf / shots-per-2m-window) reflects the true per-shot rate.
    n_high_conf = rate_per_shot * (2.0 / 0.7)
    return np.column_stack(
        [
            segments.height_mean_m,
            segments.height_std_m,
            n_high_conf,
            np.zeros(n),
            np.zeros(n),
            np.zeros(n),
        ]
    )


def generate_atl07(
    beam: BeamData,
    photons_per_segment: int = ATL07_PHOTON_AGGREGATION,
    tree_config: DecisionTreeConfig | None = None,
    sea_surface_config: SeaSurfaceConfig = DEFAULT_SEA_SURFACE,
) -> ATL07Product:
    """Generate the emulated ATL07 product for one beam.

    Steps: 150-photon aggregation → decision-tree surface classification →
    ATBD (NASA-method) sea surface over the open-water segments.
    """
    segments = aggregate_photons(beam, photons_per_segment=photons_per_segment)
    if segments.n_segments == 0:
        raise ValueError(
            f"beam {beam.name} has too few signal photons for a single "
            f"{photons_per_segment}-photon segment"
        )

    features = _aggregate_features(segments)
    tree = DecisionTreeClassifier(tree_config)
    surface_class = tree.fit_predict(features)

    # Standard error of a 150-photon segment mean: spread / sqrt(n).
    height_error = np.maximum(segments.height_std_m, 0.10) / np.sqrt(
        float(photons_per_segment)
    )
    estimate = estimate_sea_surface(
        segments.center_along_track_m,
        segments.height_mean_m,
        height_error,
        surface_class,
        method="nasa",
        config=sea_surface_config,
    )
    estimate = interpolate_missing_windows(estimate)
    sea_surface = sea_surface_at(estimate, segments.center_along_track_m)

    return ATL07Product(
        beam_name=beam.name,
        along_track_m=segments.center_along_track_m,
        segment_length_m=segments.length_m,
        height_m=segments.height_mean_m,
        height_std_m=segments.height_std_m,
        surface_class=surface_class,
        sea_surface_m=sea_surface,
        sea_surface=estimate,
        truth_class=segments.truth_class,
    )
