"""The stage graph: a validated DAG of stages over typed artifacts.

The graph owns the static structure — which stage produces which artifact,
which stages a set of target artifacts requires, what is downstream of a
given stage — while execution (fingerprints, caching, fan-out) lives in
:class:`repro.pipeline.runner.GraphRunner`.

Graphs are immutable; :meth:`StageGraph.replace` and :meth:`StageGraph.extend`
return new graphs, so a scenario can swap one stage (e.g. ablate drift
correction) without rebuilding the registry by hand.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.pipeline.artifact import ArtifactSpec
from repro.pipeline.stage import Stage


class StageGraph:
    """An ordered, validated collection of stages and artifact specs."""

    def __init__(self, stages: Sequence[Stage], artifacts: Sequence[ArtifactSpec]) -> None:
        self.artifacts: dict[str, ArtifactSpec] = {}
        for spec in artifacts:
            if spec.name in self.artifacts:
                raise ValueError(f"duplicate artifact spec {spec.name!r}")
            self.artifacts[spec.name] = spec

        self.stages: dict[str, Stage] = {}
        self.producer: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise ValueError(f"duplicate stage {stage.name!r}")
            self.stages[stage.name] = stage
            for output in stage.outputs:
                if output not in self.artifacts:
                    raise ValueError(
                        f"stage {stage.name!r} outputs undeclared artifact {output!r}"
                    )
                if output in self.producer:
                    raise ValueError(
                        f"artifact {output!r} produced by both "
                        f"{self.producer[output].name!r} and {stage.name!r}"
                    )
                self.producer[output] = stage
        for stage in stages:
            for name in stage.inputs:
                if name not in self.artifacts:
                    raise ValueError(
                        f"stage {stage.name!r} consumes undeclared artifact {name!r}"
                    )
                if name not in self.producer:
                    raise ValueError(
                        f"stage {stage.name!r} consumes artifact {name!r} "
                        "that no stage produces"
                    )
        self._order = self._topological_order()

    # -- structure -------------------------------------------------------------

    def _topological_order(self) -> list[Stage]:
        """Kahn's algorithm over stage dependencies; raises on cycles.

        Declaration order breaks ties so the schedule is deterministic.
        """
        deps = {
            stage.name: {self.producer[name].name for name in stage.inputs}
            for stage in self.stages.values()
        }
        order: list[Stage] = []
        remaining = dict(deps)
        while remaining:
            ready = [name for name, wanted in remaining.items() if not wanted]
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise ValueError(f"stage graph has a cycle among: {cycle}")
            for name in ready:  # declaration order is preserved by dict order
                order.append(self.stages[name])
                del remaining[name]
            for wanted in remaining.values():
                wanted.difference_update(ready)
        return order

    def topological_order(self) -> list[Stage]:
        return list(self._order)

    def required_stages(
        self, targets: Iterable[str], precomputed: Iterable[str] = ()
    ) -> list[Stage]:
        """Stages needed to materialise ``targets``, in topological order.

        Traversal stops at ``precomputed`` artifacts — they are treated as
        graph sources (injected values or upstream cache hits), so their
        producers and everything above them are excluded.
        """
        available = set(precomputed)
        needed: set[str] = set()
        pending = [name for name in targets if name not in available]
        while pending:
            name = pending.pop()
            if name not in self.artifacts:
                raise ValueError(f"unknown artifact {name!r}")
            producer = self.producer.get(name)
            if producer is None:
                raise ValueError(
                    f"artifact {name!r} has no producing stage and was not precomputed"
                )
            if producer.name in needed:
                continue
            needed.add(producer.name)
            pending.extend(
                inp for inp in producer.inputs if inp not in available
            )
        return [stage for stage in self._order if stage.name in needed]

    def downstream_stages(self, stage_name: str) -> list[str]:
        """Names of every stage that (transitively) consumes ``stage_name``'s outputs."""
        if stage_name not in self.stages:
            raise ValueError(f"unknown stage {stage_name!r}")
        consumers: dict[str, set[str]] = {name: set() for name in self.stages}
        for stage in self.stages.values():
            for inp in stage.inputs:
                consumers[self.producer[inp].name].add(stage.name)
        reached: set[str] = set()
        pending = [stage_name]
        while pending:
            for consumer in consumers[pending.pop()]:
                if consumer not in reached:
                    reached.add(consumer)
                    pending.append(consumer)
        return [stage.name for stage in self._order if stage.name in reached]

    # -- derivation ------------------------------------------------------------

    def replace(self, stage: Stage) -> "StageGraph":
        """New graph with the same-named stage swapped for ``stage``."""
        if stage.name not in self.stages:
            raise ValueError(f"no stage {stage.name!r} to replace")
        stages = [stage if s.name == stage.name else s for s in self._declared()]
        return StageGraph(stages, list(self.artifacts.values()))

    def extend(
        self, stages: Sequence[Stage], artifacts: Sequence[ArtifactSpec] = ()
    ) -> "StageGraph":
        """New graph with extra stages (and their artifact specs) appended."""
        return StageGraph(
            self._declared() + list(stages),
            list(self.artifacts.values()) + list(artifacts),
        )

    def _declared(self) -> list[Stage]:
        return list(self.stages.values())

    # -- introspection ---------------------------------------------------------

    def describe(self) -> list[Mapping[str, object]]:
        """One row per stage, in topological order (for docs and examples)."""
        return [
            {
                "stage": stage.name,
                "inputs": stage.inputs,
                "outputs": stage.outputs,
                "config": stage.config_paths,
                "fan_out": stage.fan_out,
            }
            for stage in self._order
        ]
