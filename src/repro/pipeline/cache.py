"""On-disk artifact stores for the pipeline and campaign layers.

:class:`ArtifactStore` is the generic namespaced pickle store: one directory
per namespace, one atomically-written file per key, corrupt entries treated
as misses.  :class:`repro.campaign.cache.CampaignCache` subclasses it with a
campaign fingerprint as the namespace; :class:`StageCache` wraps it with
content-addressed per-stage keys (``<stage>-<fingerprint>``) shared by every
campaign and workflow run under the same cache root.

Misses are reported with the :data:`MISS` sentinel (when asked for), so a
legitimately cached ``None`` is distinguishable from an absent entry.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Mapping

#: Pickle protocol used for cached artifacts (NumPy-heavy, so protocol 4+).
_PICKLE_PROTOCOL = 4

#: Sentinel distinguishing "no cached entry" from a cached ``None``.
#: ``load(key, MISS) is MISS`` is the canonical miss test.
MISS = object()

#: Namespace of the content-addressed stage tier under a cache root.
STAGE_NAMESPACE = "stages"


class ArtifactStore:
    """Pickle store for one namespace, keyed by (namespace, artifact key).

    Writes are atomic (temp file + ``os.replace``) so an interrupted run
    never leaves a truncated artifact behind; unreadable entries are treated
    as misses and recomputed.
    """

    def __init__(self, root: str | Path, namespace: str) -> None:
        if not namespace:
            raise ValueError("namespace must be a non-empty string")
        self.root = Path(root)
        self.namespace = namespace
        self.dir = self.root / namespace

    def path(self, key: str) -> Path:
        """Filesystem path of one artifact."""
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"invalid cache key {key!r}")
        return self.dir / f"{key}.pkl"

    def has(self, key: str) -> bool:
        return self.path(key).is_file()

    def load(self, key: str, default: Any = None) -> Any:
        """Return the cached artifact, or ``default`` on a miss.

        A corrupt or unreadable entry (interrupted write under a pre-atomic
        layout, disk error, unpicklable future version) counts as a miss.
        Pass :data:`MISS` as the default to distinguish a cached ``None``
        from an absent entry.
        """
        path = self.path(key)
        if not path.is_file():
            return default
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return default

    def store(self, key: str, value: Any) -> Path:
        """Atomically persist one artifact and return its path."""
        path = self.path(key)
        self.dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.dir, prefix=f".{key}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> list[str]:
        """Keys of all readable-looking artifacts currently on disk."""
        if not self.dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".pkl")]
            for p in self.dir.iterdir()
            if p.suffix == ".pkl" and not p.name.startswith(".")
        )

    def clear(self) -> int:
        """Delete every artifact of this namespace; returns the number removed."""
        removed = 0
        if not self.dir.is_dir():
            return removed
        for p in list(self.dir.iterdir()):
            if p.suffix in (".pkl", ".tmp") or p.name.startswith("."):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


class StageCache:
    """Content-addressed store of per-stage output bundles.

    Keys are ``<stage>-<fingerprint>``; a bundle holds the stage's outputs
    and the seconds its original computation took (so resumed runs rebuild
    timing reports faithfully).  Because keys are content fingerprints, the
    tier is shared across campaign fingerprints: two campaigns differing
    only in their sea-surface config hit the same curated-stage entries.
    """

    def __init__(self, root: str | Path) -> None:
        self.store = ArtifactStore(root, STAGE_NAMESPACE)

    def key(self, stage: str, fingerprint: str) -> str:
        return f"{stage}-{fingerprint}"

    def load_stage(self, stage: str, fingerprint: str) -> Any:
        """Return the ``{"outputs": ..., "seconds": ...}`` bundle, or :data:`MISS`.

        A readable entry that is not a well-formed bundle (e.g. written by a
        different code version) is treated as a miss rather than trusted.
        """
        bundle = self.store.load(self.key(stage, fingerprint), MISS)
        if (
            not isinstance(bundle, Mapping)
            or "outputs" not in bundle
            or "seconds" not in bundle
        ):
            return MISS
        return bundle

    def store_stage(
        self, stage: str, fingerprint: str, outputs: Mapping[str, Any], seconds: float
    ) -> None:
        self.store.store(
            self.key(stage, fingerprint),
            {"outputs": dict(outputs), "seconds": float(seconds)},
        )
