"""Stage declarations and the execution context handed to stage functions.

A :class:`Stage` is a pure function over artifacts plus the metadata the
engine needs: which artifacts it consumes and produces, which slice of the
:class:`~repro.workflow.experiment.ExperimentConfig` it reads (the basis of
its content fingerprint), and whether it fans out over beams.

Stage functions have the uniform signature ``fn(ctx, **inputs) -> outputs``
where ``inputs``/``outputs`` are keyed by artifact name.  Fan-out stages
route their per-beam work through :meth:`StageContext.map_items`, which
chunks the items over the shared :class:`~repro.distributed.mapreduce.MapReduceEngine`
with the runner's pluggable serial/thread/process executor — results are
order-preserving and bit-for-bit independent of the executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence, TypeVar

from repro.distributed.mapreduce import EXECUTORS, MapReduceEngine
from repro.pipeline.fingerprint import config_slice, stage_fingerprint

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class Stage:
    """One registered step of the workflow graph.

    Parameters
    ----------
    name:
        Unique stage name (also the prefix of its stage-cache keys).
    fn:
        ``fn(ctx, **inputs) -> {output_name: value}``.  Must be picklable
        (module-level) so campaign workers can execute graphs.
    inputs / outputs:
        Artifact names consumed and produced, in declaration order.
    config_paths:
        Dotted config paths this stage reads; they form the stage's config
        slice and therefore its fingerprint.  Declaring too little breaks
        cache correctness, declaring too much only costs cache hits.
    context_paths:
        :class:`StageContext` attributes folded into the fingerprint
        (e.g. the metrics stage depends on the granule identity).
    fan_out:
        Documentation flag: the stage maps over beams via
        :meth:`StageContext.map_items`.
    cacheable:
        Whether the stage's outputs go to the stage cache.  Pure-assembly
        stages that merely repackage upstream artifacts (``curate``,
        ``training_set``) set this to ``False``: re-running them from cached
        inputs is cheaper than pickling their (duplicated) outputs to disk.
    version:
        Bump to invalidate cached outputs after a code change to ``fn``.
    """

    name: str
    fn: Callable[..., Mapping[str, Any]]
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    config_paths: tuple[str, ...] = ()
    context_paths: tuple[str, ...] = ()
    fan_out: bool = False
    cacheable: bool = True
    version: str = "1"

    def fingerprint(
        self, config: Any, context_payload: Mapping[str, Any], input_fingerprints: Mapping[str, str]
    ) -> str:
        """Content fingerprint of executing this stage under ``config``.

        The active kernel backend is always part of the payload: the
        reference and vectorized backends agree only to ~1e-10, so a cache
        shared across ``REPRO_KERNEL_BACKEND`` values must never serve one
        backend's artifacts to the other.
        """
        context = {"kernel_backend": context_payload["kernel_backend"]}
        for path in self.context_paths:
            context[path] = context_payload[path]
        return stage_fingerprint(
            self.name,
            self.version,
            config_slice(config, self.config_paths),
            context,
            input_fingerprints,
        )


@dataclass
class StageContext:
    """Per-run state available to every stage function.

    Carries the experiment config, the granule identity (campaign runs), and
    the executor plumbing for fan-out stages.  Contexts are picklable so
    graphs can execute inside campaign worker processes.
    """

    config: Any
    granule_id: str = "granule"
    scenario: tuple[tuple[str, Any], ...] = ()
    executor: str = "serial"
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")

    def payload(self) -> dict[str, Any]:
        """Fingerprint-relevant context attributes (see ``context_paths``).

        ``kernel_backend`` is included unconditionally — stage fingerprints
        must distinguish reference- from vectorized-backend outputs.
        """
        from repro import kernels

        return {
            "granule_id": self.granule_id,
            "scenario": list(self.scenario),
            "kernel_backend": kernels.get_backend(),
        }

    def _engine(self, n_items: int) -> MapReduceEngine:
        executor = self.executor if self.n_workers > 1 and n_items > 1 else "serial"
        n_partitions = max(min(self.n_workers, n_items), 1)
        return MapReduceEngine(
            n_partitions=n_partitions, executor=executor, max_workers=self.n_workers
        )

    def map_items(
        self, items: Mapping[str, T], fn: Callable[[str, T], R]
    ) -> dict[str, R]:
        """Apply ``fn(key, item)`` to every item, preserving mapping order.

        Items are chunked over the map-reduce engine with this context's
        executor; with the process executor ``fn`` must be picklable (a
        module-level function or a ``functools.partial`` of one).
        """
        pairs = list(items.items())
        if not pairs:
            return {}
        result = self._engine(len(pairs)).run(
            lambda: pairs, _ItemChunkTask(fn), _merge_pair_chunks
        )
        return dict(result.value)


@dataclass
class StageExecution:
    """Bookkeeping of one stage execution inside a graph run."""

    stage: str
    fingerprint: str
    seconds: float
    cached: bool
    outputs: tuple[str, ...] = ()
    cacheable: bool = True

    @property
    def cache_key(self) -> str:
        return f"{self.stage}-{self.fingerprint}"


class _ItemChunkTask:
    """Picklable map function: apply the item function to one chunk of pairs."""

    def __init__(self, fn: Callable[[str, Any], Any]) -> None:
        self.fn = fn

    def __call__(self, pairs: Sequence[tuple[str, Any]]) -> list[tuple[str, Any]]:
        return [(key, self.fn(key, item)) for key, item in pairs]


def _merge_pair_chunks(chunks: list[list[tuple[str, Any]]]) -> list[tuple[str, Any]]:
    return [pair for chunk in chunks for pair in chunk]
