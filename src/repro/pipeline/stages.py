"""The Fig. 1 workflow registered as composable, cacheable stages.

Each step of the paper's workflow — scene -> atl03 -> s2 -> segmentation ->
resample -> drift -> autolabel -> train -> infer -> sea-surface -> freeboard
-> atl07/atl10 -> metrics, plus the Level-3/serving extension grid_granule ->
mosaic_campaign -> build_pyramid — is a :class:`~repro.pipeline.stage.Stage` with
declared typed inputs/outputs and the config slice it reads.
:func:`default_graph` wires them into the canonical
:class:`~repro.pipeline.graph.StageGraph`; :mod:`repro.workflow.end_to_end`
and :mod:`repro.campaign.runner` are both executions of this graph.

Determinism contract: a graph run is bit-for-bit identical to the historical
monolithic ``prepare_experiment_data``/``run_end_to_end`` sequence.  The
only subtlety is random-stream derivation — ``derive_rng`` consumes a draw
from its parent generator, so :func:`_derived_stream` replays the exact
draw order the monolith used (granule = first draw, S2 image = second) even
though the stages now execute independently and may be served from cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from repro.atl03.granule import BeamData, Granule
from repro.atl03.simulator import simulate_granule
from repro.classification.pipeline import (
    ClassifiedTrack,
    InferencePipeline,
    TrainedClassifier,
    train_classifier,
)
from repro.freeboard.freeboard import (
    FreeboardResult,
    TrackSeaSurface,
    estimate_track_sea_surface,
    freeboard_from_sea_surface,
)
from repro.l3.processor import Level3Processor
from repro.l3.product import Level3Grid
from repro.labeling.alignment import DriftEstimate, apply_shift, estimate_drift
from repro.labeling.autolabel import AutoLabelResult, auto_label_segments
from repro.labeling.manual import CorrectionReport, correct_labels
from repro.pipeline.artifact import ArtifactSpec
from repro.pipeline.graph import StageGraph
from repro.pipeline.stage import Stage, StageContext
from repro.products.atl07 import ATL07Product, generate_atl07
from repro.products.atl10 import ATL10Product, generate_atl10
from repro.resampling.window import SegmentArray, resample_fixed_window
from repro.sentinel2.scene import S2Image, render_scene
from repro.serve.pyramid import TilePyramid, build_pyramid
from repro.sentinel2.segmentation import SegmentationResult, segment_image
from repro.surface.scene import IceScene, generate_scene
from repro.utils.random import default_rng, derive_rng
from repro.workflow.experiment import ExperimentData


@dataclass
class TrainingSet:
    """Pooled training arrays of one granule (segments, labels, group ids)."""

    segments: SegmentArray
    labels: np.ndarray
    groups: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.labels.shape[0])


#: Config paths the train stage reads; the campaign's pooled-training
#: fingerprint uses the same slice (minus ``seed``, which the campaign
#: replaces with its own seed).
TRAIN_CONFIG_PATHS = ("model_kind", "lstm", "mlp", "training", "epochs", "seed")


def _derived_stream(seed: int, key: int) -> np.random.Generator:
    """Replay the monolith's ``derive_rng`` draw order for stream ``key``.

    Historically one parent generator served ``derive_rng(parent, 1)`` for
    the ATL03 granule and then ``derive_rng(parent, 2)`` for the S2 image,
    each call consuming one draw.  Rebuilding the parent per stage and
    skipping the earlier draws yields exactly the same child streams while
    keeping the stages independent (and therefore cacheable).
    """
    parent = default_rng(seed)
    for _ in range(key - 1):
        parent.integers(0, 2**63 - 1)
    return derive_rng(parent, key)


# -- stage functions (module-level: picklable into campaign workers) -----------


def stage_scene(ctx: StageContext) -> dict[str, Any]:
    cfg = ctx.config
    return {"scene": generate_scene(cfg.scene, seed=cfg.seed)}


def stage_atl03(ctx: StageContext, scene: IceScene) -> dict[str, Any]:
    cfg = ctx.config
    granule = simulate_granule(
        scene, n_beams=cfg.n_beams, config=cfg.atl03, rng=_derived_stream(cfg.seed, 1)
    )
    return {"granule": granule}


def stage_s2(ctx: StageContext, scene: IceScene) -> dict[str, Any]:
    cfg = ctx.config
    image = render_scene(
        scene, config=cfg.s2, drift_offset_m=cfg.drift_m, rng=_derived_stream(cfg.seed, 2)
    )
    return {"image": image}


def stage_segmentation(ctx: StageContext, image: S2Image) -> dict[str, Any]:
    return {"segmentation": segment_image(image, ctx.config.segmentation)}


def _resample_one(window_length_m: float, name: str, beam: BeamData) -> SegmentArray:
    return resample_fixed_window(beam, window_length_m=window_length_m)


def stage_resample(ctx: StageContext, granule: Granule) -> dict[str, Any]:
    mapped = ctx.map_items(
        granule.beams, partial(_resample_one, ctx.config.window_length_m)
    )
    return {"segments": mapped}


def stage_drift(
    ctx: StageContext,
    image: S2Image,
    segmentation: SegmentationResult,
    segments: dict[str, SegmentArray],
) -> dict[str, Any]:
    """Estimate S2 drift from the first beam and align the image.

    Matches the monolith: drift is estimated once, from the granule's first
    beam, and the aligned image feeds every beam's auto-labeling.
    """
    if not ctx.config.estimate_drift or not segments:
        return {"drift": None, "aligned_image": image}
    first = next(iter(segments.values()))
    drift = estimate_drift(
        image, segmentation.class_map, first.x_m, first.y_m, first.height_mean_m
    )
    return {"drift": drift, "aligned_image": apply_shift(image, drift)}


def _autolabel_one(
    image: S2Image, segmentation: SegmentationResult, name: str, seg: SegmentArray
) -> tuple[AutoLabelResult, np.ndarray, CorrectionReport]:
    auto = auto_label_segments(seg, image, segmentation)
    corrected, report = correct_labels(seg, auto)
    return auto, corrected, report


def stage_autolabel(
    ctx: StageContext,
    segments: dict[str, SegmentArray],
    aligned_image: S2Image,
    segmentation: SegmentationResult,
) -> dict[str, Any]:
    mapped = ctx.map_items(
        segments, partial(_autolabel_one, aligned_image, segmentation)
    )
    return {
        "auto_labels": {name: item[0] for name, item in mapped.items()},
        "labels": {name: item[1] for name, item in mapped.items()},
        "correction_reports": {name: item[2] for name, item in mapped.items()},
    }


def stage_curate(
    ctx: StageContext,
    scene: IceScene,
    granule: Granule,
    aligned_image: S2Image,
    segmentation: SegmentationResult,
    drift: DriftEstimate | None,
    segments: dict[str, SegmentArray],
    auto_labels: dict[str, AutoLabelResult],
    labels: dict[str, np.ndarray],
    correction_reports: dict[str, CorrectionReport],
) -> dict[str, Any]:
    data = ExperimentData(
        scene=scene,
        granule=granule,
        image=aligned_image,
        segmentation=segmentation,
        drift=drift,
        segments=segments,
        auto_labels=auto_labels,
        labels=labels,
        correction_reports=correction_reports,
    )
    return {"experiment_data": data}


def stage_training_set(ctx: StageContext, experiment_data: ExperimentData) -> dict[str, Any]:
    segments, labels, groups = experiment_data.combined_training_arrays()
    return {"training_set": TrainingSet(segments=segments, labels=labels, groups=groups)}


def stage_train(ctx: StageContext, training_set: TrainingSet) -> dict[str, Any]:
    cfg = ctx.config
    classifier = train_classifier(
        training_set.segments,
        training_set.labels,
        kind=cfg.model_kind,
        lstm_config=cfg.lstm,
        mlp_config=cfg.mlp,
        training=cfg.training,
        epochs=cfg.epochs,
        rng=cfg.seed,
        groups=training_set.groups,
    )
    return {"classifier": classifier}


def stage_infer(
    ctx: StageContext, segments: dict[str, SegmentArray], classifier: TrainedClassifier
) -> dict[str, Any]:
    # The curated segments were resampled with the same window/confidence
    # parameters, so classify them directly instead of re-resampling photons.
    # All beams go through one pooled predict_batched pass so the LSTM steps
    # every sequence of the granule together.
    pipeline = InferencePipeline(classifier, window_length_m=ctx.config.window_length_m)
    return {"classified": pipeline.classify_segments_batched(segments)}


def _sea_surface_one(config, name: str, track: ClassifiedTrack) -> TrackSeaSurface:
    return estimate_track_sea_surface(
        track.segments, track.labels, method=config.method, config=config
    )


def stage_sea_surface(
    ctx: StageContext, classified: dict[str, ClassifiedTrack]
) -> dict[str, Any]:
    mapped = ctx.map_items(
        classified, partial(_sea_surface_one, ctx.config.sea_surface)
    )
    return {"sea_surface": mapped}


def stage_freeboard(
    ctx: StageContext,
    classified: dict[str, ClassifiedTrack],
    sea_surface: dict[str, TrackSeaSurface],
) -> dict[str, Any]:
    freeboard = {
        name: freeboard_from_sea_surface(track.segments, track.labels, sea_surface[name])
        for name, track in classified.items()
    }
    return {"freeboard": freeboard}


def _atl07_one(config, name: str, beam: BeamData) -> ATL07Product:
    return generate_atl07(beam, sea_surface_config=config)


def stage_atl07(ctx: StageContext, granule: Granule) -> dict[str, Any]:
    mapped = ctx.map_items(granule.beams, partial(_atl07_one, ctx.config.sea_surface))
    return {"atl07": mapped}


def _atl10_one(name: str, product: ATL07Product) -> ATL10Product:
    return generate_atl10(product)


def stage_atl10(ctx: StageContext, atl07: dict[str, ATL07Product]) -> dict[str, Any]:
    return {"atl10": ctx.map_items(atl07, _atl10_one)}


def stage_grid_granule(
    ctx: StageContext,
    classified: dict[str, ClassifiedTrack],
    freeboard: dict[str, FreeboardResult],
) -> dict[str, Any]:
    """Bin this granule's retrieval output onto the configured L3 grid."""
    processor = Level3Processor.from_config(ctx.config.l3, scene=ctx.config.scene)
    product = processor.grid_granule(classified, freeboard, granule_id=ctx.granule_id)
    return {"l3_granule": product}


def stage_mosaic_campaign(ctx: StageContext, l3_granule: Level3Grid) -> dict[str, Any]:
    """Mosaic of a one-granule fleet (the graph's single-granule view).

    Campaign runs pool *many* granule grids into this stage's namesake cache
    entry via :meth:`repro.campaign.CampaignRunner.to_l3`; within a single
    graph execution the fleet is just this granule.
    """
    processor = Level3Processor.from_config(ctx.config.l3, scene=ctx.config.scene)
    return {"l3_mosaic": processor.mosaic([l3_granule])}


def stage_build_pyramid(ctx: StageContext, l3_mosaic: Level3Grid) -> dict[str, Any]:
    """Build the serving-side tile pyramid over the campaign mosaic.

    Content-addressed like every other stage: the fingerprint chains the
    mosaic's fingerprint with the ``serve`` config slice and the kernel
    backend, so a tile-geometry-only change rebuilds exactly this stage.
    """
    return {"l3_pyramid": build_pyramid(l3_mosaic, serve=ctx.config.serve)}


def stage_metrics(
    ctx: StageContext,
    classified: dict[str, ClassifiedTrack],
    freeboard: dict[str, FreeboardResult],
) -> dict[str, Any]:
    # Runtime import: repro.campaign imports repro.pipeline at module load,
    # so importing campaign.metrics here at import time would be a cycle.
    from repro.campaign.metrics import granule_metrics

    metrics = granule_metrics(ctx.granule_id, tuple(ctx.scenario), classified, freeboard)
    return {"granule_metrics": metrics}


# -- the canonical graph -------------------------------------------------------


def artifact_specs() -> list[ArtifactSpec]:
    """Typed declarations of every artifact flowing through the Fig. 1 graph."""
    return [
        ArtifactSpec("scene", IceScene, "ground-truth Ross Sea ice scene"),
        ArtifactSpec("granule", Granule, "simulated ATL03 photon granule"),
        ArtifactSpec("image", S2Image, "rendered (drifted, cloudy) Sentinel-2 scene"),
        ArtifactSpec("segmentation", SegmentationResult, "S2 image segmentation"),
        ArtifactSpec("segments", SegmentArray, "2 m resampled segments", per_beam=True),
        ArtifactSpec("drift", DriftEstimate, "estimated S2 drift", optional=True),
        ArtifactSpec("aligned_image", S2Image, "drift-corrected Sentinel-2 scene"),
        ArtifactSpec("auto_labels", AutoLabelResult, "raw auto-labels", per_beam=True),
        ArtifactSpec("labels", np.ndarray, "corrected training labels", per_beam=True),
        ArtifactSpec(
            "correction_reports", CorrectionReport, "label corrections", per_beam=True
        ),
        ArtifactSpec("experiment_data", ExperimentData, "assembled stage-1 curation"),
        ArtifactSpec("training_set", TrainingSet, "pooled training arrays"),
        ArtifactSpec("classifier", TrainedClassifier, "trained LSTM/MLP classifier"),
        ArtifactSpec("classified", ClassifiedTrack, "per-segment classes", per_beam=True),
        ArtifactSpec(
            "sea_surface", TrackSeaSurface, "local sea-surface reference", per_beam=True
        ),
        ArtifactSpec("freeboard", FreeboardResult, "2 m freeboard product", per_beam=True),
        ArtifactSpec("atl07", ATL07Product, "emulated ATL07 baseline", per_beam=True),
        ArtifactSpec("atl10", ATL10Product, "emulated ATL10 baseline", per_beam=True),
        ArtifactSpec("l3_granule", Level3Grid, "gridded Level-3 product of one granule"),
        ArtifactSpec("l3_mosaic", Level3Grid, "Level-3 mosaic composite"),
        ArtifactSpec("l3_pyramid", TilePyramid, "serving-side tile pyramid"),
        # GranuleMetrics lives in the campaign layer (imported lazily above),
        # so the spec validates loosely rather than importing it here.
        ArtifactSpec("granule_metrics", object, "classification + freeboard metrics"),
    ]


def build_default_graph() -> StageGraph:
    """Construct the canonical Fig. 1 stage graph (a fresh instance)."""
    stages = [
        Stage("scene", stage_scene, (), ("scene",), ("scene", "seed")),
        Stage("atl03", stage_atl03, ("scene",), ("granule",), ("atl03", "n_beams", "seed")),
        Stage("s2", stage_s2, ("scene",), ("image",), ("s2", "drift_m", "seed")),
        Stage(
            "segmentation",
            stage_segmentation,
            ("image",),
            ("segmentation",),
            ("segmentation",),
        ),
        Stage(
            "resample",
            stage_resample,
            ("granule",),
            ("segments",),
            ("window_length_m",),
            fan_out=True,
        ),
        Stage(
            "drift",
            stage_drift,
            ("image", "segmentation", "segments"),
            ("drift", "aligned_image"),
            ("estimate_drift",),
        ),
        Stage(
            "autolabel",
            stage_autolabel,
            ("segments", "aligned_image", "segmentation"),
            ("auto_labels", "labels", "correction_reports"),
            (),
            fan_out=True,
        ),
        Stage(
            "curate",
            stage_curate,
            (
                "scene",
                "granule",
                "aligned_image",
                "segmentation",
                "drift",
                "segments",
                "auto_labels",
                "labels",
                "correction_reports",
            ),
            ("experiment_data",),
            (),
            # Pure assembly: caching would re-pickle every upstream artifact
            # (scene, granule, image, segments, ...) into one more bundle.
            cacheable=False,
        ),
        Stage(
            "training_set",
            stage_training_set,
            ("experiment_data",),
            ("training_set",),
            (),
            cacheable=False,
        ),
        Stage("train", stage_train, ("training_set",), ("classifier",), TRAIN_CONFIG_PATHS),
        Stage(
            "infer",
            stage_infer,
            ("segments", "classifier"),
            ("classified",),
            ("window_length_m",),
        ),
        Stage(
            "sea_surface",
            stage_sea_surface,
            ("classified",),
            ("sea_surface",),
            ("sea_surface",),
            fan_out=True,
        ),
        Stage("freeboard", stage_freeboard, ("classified", "sea_surface"), ("freeboard",), ()),
        Stage(
            "atl07",
            stage_atl07,
            ("granule",),
            ("atl07",),
            ("sea_surface",),
            fan_out=True,
        ),
        Stage("atl10", stage_atl10, ("atl07",), ("atl10",), (), fan_out=True),
        Stage(
            "grid_granule",
            stage_grid_granule,
            ("classified", "freeboard"),
            ("l3_granule",),
            # The grid is derived from the l3 slice plus the scene extent;
            # declaring "scene" keeps the dependency explicit even though any
            # scene change already invalidates the upstream artifacts.
            ("l3", "scene"),
            context_paths=("granule_id",),
        ),
        Stage(
            "mosaic_campaign",
            stage_mosaic_campaign,
            ("l3_granule",),
            ("l3_mosaic",),
            ("l3", "scene"),
        ),
        Stage(
            "build_pyramid",
            stage_build_pyramid,
            ("l3_mosaic",),
            ("l3_pyramid",),
            # Narrow paths: only the fields that shape the pyramid product.
            # serve.tile_cache_size is a query-engine runtime knob — changing
            # it must not invalidate the content-addressed pyramid.
            ("serve.tile_size", "serve.max_levels", "serve.weight_variable"),
        ),
        Stage(
            "metrics",
            stage_metrics,
            ("classified", "freeboard"),
            ("granule_metrics",),
            (),
            context_paths=("granule_id", "scenario"),
        ),
    ]
    return StageGraph(stages, artifact_specs())


_DEFAULT_GRAPH: StageGraph | None = None


def default_graph() -> StageGraph:
    """The shared canonical graph instance (immutable, safe to share)."""
    global _DEFAULT_GRAPH
    if _DEFAULT_GRAPH is None:
        _DEFAULT_GRAPH = build_default_graph()
    return _DEFAULT_GRAPH
