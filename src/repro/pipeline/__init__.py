"""Stage-graph pipeline engine: the Fig. 1 workflow as composable stages.

Every step of the paper's workflow is a registered
:class:`~repro.pipeline.stage.Stage` with declared typed inputs/outputs and
a per-stage content fingerprint (its config slice combined with upstream
fingerprints).  A :class:`~repro.pipeline.runner.GraphRunner` materialises
any set of target artifacts, probing an optional content-addressed
:class:`~repro.pipeline.cache.StageCache` first — so changing one config
knob re-runs only the stages downstream of it.  Fan-out stages route
per-beam work through the :class:`~repro.distributed.mapreduce.MapReduceEngine`
with a pluggable serial/thread/process executor.

Quick start::

    from repro.pipeline import GraphRunner, StageCache, default_graph
    from repro.workflow import ExperimentConfig

    runner = GraphRunner(default_graph(), cache=StageCache("cache/"))
    result = runner.run(ExperimentConfig(epochs=3, seed=0), targets=("freeboard",))
    freeboard = result.value("freeboard")          # {beam: FreeboardResult}
    rerun = runner.run(..., targets=("freeboard",))  # all cache hits

:func:`repro.workflow.end_to_end.run_end_to_end` is a one-granule graph run;
:class:`repro.campaign.runner.CampaignRunner` fans the same graph out over a
granule fleet with the train stage as a pooled barrier.
"""

from repro.pipeline.artifact import Artifact, ArtifactSpec, external_artifact
from repro.pipeline.cache import MISS, ArtifactStore, StageCache
from repro.pipeline.fingerprint import (
    canonical,
    config_slice,
    digest,
    stage_fingerprint,
)
from repro.pipeline.graph import StageGraph
from repro.pipeline.runner import GraphRunner, GraphRunResult
from repro.pipeline.stage import Stage, StageContext, StageExecution
from repro.pipeline.stages import (
    TRAIN_CONFIG_PATHS,
    TrainingSet,
    artifact_specs,
    build_default_graph,
    default_graph,
)

__all__ = [
    "Artifact",
    "ArtifactSpec",
    "ArtifactStore",
    "GraphRunResult",
    "GraphRunner",
    "MISS",
    "Stage",
    "StageCache",
    "StageContext",
    "StageExecution",
    "StageGraph",
    "TRAIN_CONFIG_PATHS",
    "TrainingSet",
    "artifact_specs",
    "build_default_graph",
    "canonical",
    "config_slice",
    "default_graph",
    "digest",
    "external_artifact",
    "stage_fingerprint",
]
