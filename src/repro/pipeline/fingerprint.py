"""Content fingerprints for pipeline stages and campaign configs.

A *fingerprint* is a short stable hash of everything that determines an
artifact's value: the producing stage's name and version, the slice of the
experiment config the stage reads, and the fingerprints of its upstream
artifacts.  Because upstream fingerprints are part of the payload, a change
anywhere in the config invalidates exactly the stages downstream of it and
nothing else — the property the stage-granular cache is built on.

:func:`canonical` converts nested (frozen) dataclasses, mappings and
sequences into a JSON-stable structure; it is shared with
:meth:`repro.campaign.config.CampaignConfig.fingerprint` so the campaign
and stage tiers hash configs identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Any, Mapping

import numpy as np

#: Length of the hex digest prefix used everywhere a fingerprint is stored.
FINGERPRINT_LENGTH = 16


def canonical(obj: Any) -> Any:
    """Convert nested dataclasses/sequences to a JSON-stable structure."""
    if is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__type__": type(obj).__name__}
        for f in fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, Mapping):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    return obj


def digest(payload: Any) -> str:
    """Stable hex digest of a JSON-serialisable payload."""
    encoded = json.dumps(canonical(payload), sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:FINGERPRINT_LENGTH]


def config_slice(config: Any, paths: tuple[str, ...]) -> dict[str, Any]:
    """Extract the declared dotted-path slice of a (nested) dataclass config.

    ``paths`` name exactly the fields a stage reads (``"sea_surface"``,
    ``"s2.cloud.thin_cloud_fraction"``, ...).  Narrow declarations are what
    make fingerprints precise: a stage that declares ``("sea_surface",)``
    is untouched by a change to ``scene`` or ``training``.
    """
    out: dict[str, Any] = {}
    for path in paths:
        value = config
        for part in path.split("."):
            if not hasattr(value, part):
                raise ValueError(
                    f"config path {path!r} does not resolve on {type(config).__name__}"
                )
            value = getattr(value, part)
        out[path] = canonical(value)
    return out


def stage_fingerprint(
    name: str,
    version: str,
    config_payload: Mapping[str, Any],
    context_payload: Mapping[str, Any],
    input_fingerprints: Mapping[str, str],
) -> str:
    """Fingerprint of one stage execution (and of every artifact it outputs)."""
    return digest(
        {
            "stage": name,
            "version": version,
            "config": dict(config_payload),
            "context": dict(context_payload),
            "inputs": dict(input_fingerprints),
        }
    )
