"""Typed artifacts: the values flowing along the stage graph's edges.

Every edge of the graph carries an :class:`Artifact` — a value plus the
content fingerprint of the stage execution that produced it.  The graph
declares each artifact's type with an :class:`ArtifactSpec`; the runner
validates freshly computed values against the spec so a mis-wired stage
fails loudly at the stage boundary instead of deep inside a consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class ArtifactSpec:
    """Declared name and type of one artifact.

    ``per_beam`` artifacts are mappings from beam name to an instance of
    ``type`` (the fan-out shape of the per-beam stages); ``optional``
    artifacts may be ``None`` (e.g. ``drift`` when drift correction is
    disabled).
    """

    name: str
    type: type
    description: str = ""
    per_beam: bool = False
    optional: bool = False

    def validate(self, value: Any) -> None:
        """Raise ``TypeError`` when ``value`` does not match this spec."""
        if value is None:
            if self.optional:
                return
            raise TypeError(f"artifact {self.name!r} must not be None")
        if self.per_beam:
            if not isinstance(value, Mapping):
                raise TypeError(
                    f"artifact {self.name!r} must be a per-beam mapping, "
                    f"got {type(value).__name__}"
                )
            for beam, item in value.items():
                if not isinstance(item, self.type):
                    raise TypeError(
                        f"artifact {self.name!r}[{beam!r}] must be "
                        f"{self.type.__name__}, got {type(item).__name__}"
                    )
            return
        if not isinstance(value, self.type):
            raise TypeError(
                f"artifact {self.name!r} must be {self.type.__name__}, "
                f"got {type(value).__name__}"
            )


@dataclass
class Artifact:
    """One produced value: what it is, which stage made it, and its identity.

    ``fingerprint`` is the producing stage's content fingerprint (config
    slice + upstream fingerprints), so equal fingerprints imply equal values
    for a deterministic stage.  ``seconds`` is the compute time of the
    producing stage execution (0 for cache loads and injected values);
    ``from_cache`` marks artifacts materialised from the stage cache.
    """

    name: str
    value: Any = None
    fingerprint: str = ""
    stage: str = ""
    seconds: float = 0.0
    from_cache: bool = False
    meta: dict[str, Any] = field(default_factory=dict)


def external_artifact(name: str, value: Any, fingerprint: str | None = None) -> Artifact:
    """Wrap a value computed outside the graph so it can be injected.

    Without an explicit fingerprint the artifact gets an ``external:`` tag —
    fine for uncached runs; cached runs should pass the real fingerprint so
    downstream cache keys chain correctly.
    """
    return Artifact(
        name=name,
        value=value,
        fingerprint=fingerprint if fingerprint is not None else f"external:{name}",
        stage="<injected>",
    )
