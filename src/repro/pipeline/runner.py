"""Graph execution: fingerprint, probe the stage cache, compute, repeat.

:class:`GraphRunner` materialises a set of target artifacts by walking the
required stages in topological order.  For every stage it derives the
content fingerprint (config slice + upstream fingerprints), probes the
stage cache, and only computes on a miss — so after a config change, the
first divergent stage and its downstream cone re-run while everything
upstream is a cache hit.  This is what makes partial recomputation (the
dominant cost of parameter sweeps) free.

:meth:`GraphRunner.fingerprints` derives the full artifact-fingerprint map
from a config *without executing anything* — the campaign runner uses it to
decide which pooled-training and retrieval artifacts are already cached.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.core import Obs, default_obs
from repro.pipeline.artifact import Artifact
from repro.pipeline.cache import MISS, StageCache
from repro.pipeline.graph import StageGraph
from repro.pipeline.stage import StageContext, StageExecution
from repro.utils.timing import Stopwatch


class GraphRunResult:
    """Artifacts and per-stage bookkeeping of one graph execution."""

    def __init__(
        self,
        artifacts: dict[str, Artifact],
        executions: list[StageExecution],
        cache_enabled: bool,
    ) -> None:
        self.artifacts = artifacts
        self.executions = executions
        self.cache_enabled = cache_enabled

    def value(self, name: str) -> Any:
        """The computed value of one artifact."""
        return self.artifacts[name].value

    def values(self, *names: str) -> tuple[Any, ...]:
        return tuple(self.artifacts[name].value for name in names)

    @property
    def fingerprints(self) -> dict[str, str]:
        return {name: artifact.fingerprint for name, artifact in self.artifacts.items()}

    @property
    def cache_hits(self) -> tuple[str, ...]:
        """Stage-cache keys served from disk this run (empty without a cache)."""
        return tuple(e.cache_key for e in self.executions if e.cached)

    @property
    def cache_misses(self) -> tuple[str, ...]:
        """Stage-cache keys computed (and stored) this run.

        Non-cacheable assembly stages execute every run by design, so they
        are not counted as misses.
        """
        if not self.cache_enabled:
            return ()
        return tuple(
            e.cache_key for e in self.executions if not e.cached and e.cacheable
        )

    @property
    def executed_stages(self) -> tuple[str, ...]:
        """Names of stages whose functions actually ran (cache misses)."""
        return tuple(e.stage for e in self.executions if not e.cached)

    def seconds(self, stage: str) -> float:
        for execution in self.executions:
            if execution.stage == stage:
                return execution.seconds
        raise KeyError(f"stage {stage!r} did not execute in this run")


class GraphRunner:
    """Execute a :class:`~repro.pipeline.graph.StageGraph` over one config.

    Parameters
    ----------
    graph:
        The stage graph (default: the Fig. 1 workflow graph).
    cache:
        Optional content-addressed stage cache shared across runs and
        configs; ``None`` disables stage-granular caching.
    executor / n_workers:
        Executor kind and width handed to fan-out stages through the
        :class:`~repro.pipeline.stage.StageContext` (``serial`` reproduces
        the reference behaviour; ``thread``/``process`` only change time,
        never values).
    obs:
        Telemetry handle; ``None`` resolves the process default.  Every
        executed stage emits a ``pipeline.stage`` span (fingerprint, cache
        outcome) and feeds the ``pipeline_stage_*`` counters.
    """

    def __init__(
        self,
        graph: StageGraph | None = None,
        cache: StageCache | None = None,
        executor: str = "serial",
        n_workers: int = 1,
        obs: Obs | None = None,
    ) -> None:
        if graph is None:
            from repro.pipeline.stages import default_graph

            graph = default_graph()
        self.graph = graph
        self.cache = cache
        self.executor = executor
        self.n_workers = n_workers
        self.obs = obs if obs is not None else default_obs()

    # -- fingerprints without execution ---------------------------------------

    def fingerprints(
        self,
        config: Any,
        granule_id: str = "granule",
        scenario: tuple = (),
        precomputed: Mapping[str, str] | None = None,
    ) -> dict[str, str]:
        """Artifact name -> content fingerprint, derived purely from config.

        ``precomputed`` maps injected artifact names to their fingerprints
        (e.g. a pooled campaign classifier).  Stages whose inputs cannot all
        be fingerprinted are skipped, so the result may be partial.
        """
        context = StageContext(
            config=config, granule_id=granule_id, scenario=tuple(scenario)
        )
        payload = context.payload()
        fps: dict[str, str] = dict(precomputed or {})
        for stage in self.graph.topological_order():
            if all(name in fps for name in stage.inputs):
                fp = stage.fingerprint(
                    config, payload, {name: fps[name] for name in stage.inputs}
                )
                for output in stage.outputs:
                    fps.setdefault(output, fp)
        return fps

    # -- execution -------------------------------------------------------------

    def run(
        self,
        config: Any,
        targets: Iterable[str] | None = None,
        precomputed: Mapping[str, Artifact] | None = None,
        granule_id: str = "granule",
        scenario: tuple = (),
    ) -> GraphRunResult:
        """Materialise ``targets`` (default: every declared artifact).

        ``precomputed`` artifacts are treated as graph sources: their
        producers never run, and their fingerprints seed the downstream
        fingerprint chain.

        Execution is demand-driven: fingerprints are derived for the whole
        required subgraph up front (a pure computation), then stages
        materialise lazily — a stage whose outputs are served by the cache
        never demands its inputs, so a warm run touches only the bundles of
        the targets themselves.  A corrupt cached bundle reads as a miss,
        at which point the stage's inputs are demanded and it recomputes.
        """
        context = StageContext(
            config=config,
            granule_id=granule_id,
            scenario=tuple(scenario),
            executor=self.executor,
            n_workers=self.n_workers,
        )
        payload = context.payload()
        artifacts: dict[str, Artifact] = dict(precomputed or {})
        if targets is None:
            targets = tuple(self.graph.producer)
        plan = self.graph.required_stages(targets, artifacts)

        # Pure fingerprint pass over the plan: inputs of every planned stage
        # are either precomputed or produced by an earlier planned stage.
        artifact_fps = {name: artifact.fingerprint for name, artifact in artifacts.items()}
        stage_fps: dict[str, str] = {}
        for stage in plan:
            fp = stage.fingerprint(
                config, payload, {name: artifact_fps[name] for name in stage.inputs}
            )
            stage_fps[stage.name] = fp
            for name in stage.outputs:
                artifact_fps.setdefault(name, fp)

        executions: list[StageExecution] = []
        done: set[str] = set()

        def materialize(name: str) -> None:
            if name not in artifacts:
                run_stage(self.graph.producer[name])

        def run_stage(stage) -> None:
            if stage.name in done:
                return
            fp = stage_fps[stage.name]
            outputs: Mapping[str, Any] | None = None
            cached = False
            seconds = 0.0
            if stage.cacheable and self.cache is not None:
                bundle = self.cache.load_stage(stage.name, fp)
                if bundle is not MISS:
                    outputs = bundle["outputs"]
                    seconds = bundle["seconds"]
                    cached = True
            if outputs is None:
                for name in stage.inputs:
                    materialize(name)
                with self.obs.span(
                    "pipeline.stage", stage=stage.name, fingerprint=fp, cached=False
                ):
                    sw = Stopwatch().start()
                    outputs = stage.fn(
                        context,
                        **{name: artifacts[name].value for name in stage.inputs},
                    )
                    seconds = sw.stop()
                self._validate_outputs(stage.name, stage.outputs, outputs)
                if stage.cacheable and self.cache is not None:
                    self.cache.store_stage(stage.name, fp, outputs, seconds)
            outcome = "hit" if cached else "miss"
            self.obs.counter(
                "pipeline_stage_runs_total", stage=stage.name, cache=outcome
            ).inc()
            if not cached:
                self.obs.histogram("pipeline_stage_seconds", stage=stage.name).observe(
                    seconds
                )

            for name in stage.outputs:
                artifacts[name] = Artifact(
                    name=name,
                    value=outputs[name],
                    fingerprint=fp,
                    stage=stage.name,
                    seconds=seconds,
                    from_cache=cached,
                )
            executions.append(
                StageExecution(
                    stage=stage.name,
                    fingerprint=fp,
                    seconds=seconds,
                    cached=cached,
                    outputs=stage.outputs,
                    cacheable=stage.cacheable,
                )
            )
            done.add(stage.name)

        for name in targets:
            materialize(name)
        return GraphRunResult(artifacts, executions, self.cache is not None)

    def _validate_outputs(
        self, stage_name: str, declared: tuple[str, ...], outputs: Mapping[str, Any]
    ) -> None:
        if set(outputs) != set(declared):
            raise ValueError(
                f"stage {stage_name!r} returned {sorted(outputs)}, "
                f"declared outputs are {sorted(declared)}"
            )
        for name, value in outputs.items():
            self.graph.artifacts[name].validate(value)
