"""Sea-ice drift estimation and S2 image re-alignment.

Between the IS2 overpass and the S2 acquisition the pack ice drifts, so the
S2 labels are displaced relative to the photon track.  The paper corrects
this by shifting the S2 image (Table I gives distance and compass direction).

Here the shift is *estimated* by maximising the agreement between the IS2
elevation signature and the S2 labels along the track: open-water segments
should have low elevation and low roughness, thick ice high elevation.  The
estimator scans candidate (dx, dy) offsets on a coarse-to-fine grid and
scores each by the class-conditional elevation separation, which is exactly
the consistency criterion the authors describe using.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE
from repro.sentinel2.scene import S2Image
from repro.utils.validation import ensure_1d, ensure_same_length


@dataclass(frozen=True)
class DriftEstimate:
    """Result of the drift search."""

    dx_m: float
    dy_m: float
    score: float
    n_candidates: int

    @property
    def distance_m(self) -> float:
        return float(np.hypot(self.dx_m, self.dy_m))

    @property
    def direction(self) -> str:
        """Nearest 8-point compass direction of the shift (empty if zero)."""
        if self.distance_m == 0.0:
            return ""
        angle = np.degrees(np.arctan2(self.dx_m, self.dy_m)) % 360.0
        names = ("N", "NE", "E", "SE", "S", "SW", "W", "NW")
        return names[int(((angle + 22.5) % 360.0) // 45.0)]


def _alignment_score(
    class_map: np.ndarray,
    image: S2Image,
    seg_x: np.ndarray,
    seg_y: np.ndarray,
    seg_height: np.ndarray,
    dx: float,
    dy: float,
) -> float:
    """Score a candidate shift by label/elevation consistency.

    A correct alignment puts open-water labels on the lowest segments, thin
    ice in between and thick ice on the highest ones, so the score is the
    Pearson correlation between the segment heights and the ordinal label
    rank (water=0, thin=1, thick=2).  Correlation is robust to the strong
    class imbalance of the Ross Sea pack (a handful of water segments cannot
    dominate the score the way a class-mean difference could).  Querying the
    image at (x - dx) is equivalent to shifting the image by (dx, dy).
    """
    row, col = image.pixel_index(seg_x - dx, seg_y - dy)
    labels = class_map[row, col]
    rank = np.empty(labels.shape, dtype=float)
    rank[labels == CLASS_OPEN_WATER] = 0.0
    rank[(labels != CLASS_OPEN_WATER) & (labels != CLASS_THICK_ICE)] = 1.0
    rank[labels == CLASS_THICK_ICE] = 2.0
    # The correlation is undefined when either side is constant.
    if rank.std() < 1e-9 or seg_height.std() < 1e-9:
        return -np.inf
    return float(np.corrcoef(rank, seg_height)[0, 1])


def estimate_drift(
    image: S2Image,
    class_map: np.ndarray,
    seg_x_m: np.ndarray,
    seg_y_m: np.ndarray,
    seg_height_m: np.ndarray,
    max_shift_m: float = 800.0,
    coarse_step_m: float = 50.0,
    fine_step_m: float = 25.0,
    min_improvement: float = 0.01,
) -> DriftEstimate:
    """Estimate the (dx, dy) shift of the S2 image relative to the IS2 track.

    Parameters
    ----------
    image:
        The (possibly drift-displaced) S2 acquisition.
    class_map:
        Segmented per-pixel classes of the image (from
        :func:`repro.sentinel2.segment_image`).
    seg_x_m, seg_y_m, seg_height_m:
        Projected coordinates and mean heights of the IS2 2 m segments.
    max_shift_m:
        Half-width of the search window (the paper's shifts are <= 550 m).
    coarse_step_m, fine_step_m:
        Grid spacings of the two-stage search.
    min_improvement:
        The shift is only accepted when its consistency score beats the
        zero-shift score by at least this margin; otherwise the estimator
        returns a zero shift ("do no harm").  The paper's small drifts barely
        change the overlay when floes are large, and in that regime chasing a
        noisy score optimum would degrade the labels.

    Returns
    -------
    DriftEstimate
        The shift to apply to the image (via :func:`apply_shift`) so it
        aligns with the track.
    """
    seg_x = ensure_1d(np.asarray(seg_x_m, dtype=float), "seg_x_m")
    seg_y = ensure_1d(np.asarray(seg_y_m, dtype=float), "seg_y_m")
    seg_h = ensure_1d(np.asarray(seg_height_m, dtype=float), "seg_height_m")
    ensure_same_length(seg_x, seg_y, seg_h, names=("seg_x_m", "seg_y_m", "seg_height_m"))
    if max_shift_m < 0 or coarse_step_m <= 0 or fine_step_m <= 0:
        raise ValueError("shift limits and steps must be positive")
    finite = np.isfinite(seg_h)
    seg_x, seg_y, seg_h = seg_x[finite], seg_y[finite], seg_h[finite]
    if seg_x.size == 0:
        raise ValueError("no finite segments available for drift estimation")

    def search(center: tuple[float, float], half_width: float, step: float) -> tuple[float, float, float, int]:
        offsets = np.arange(-half_width, half_width + step * 0.5, step)
        best = (-np.inf, 0.0, 0.0)
        count = 0
        for dx in np.clip(offsets + center[0], -max_shift_m, max_shift_m):
            for dy in np.clip(offsets + center[1], -max_shift_m, max_shift_m):
                count += 1
                score = _alignment_score(class_map, image, seg_x, seg_y, seg_h, dx, dy)
                if score > best[0]:
                    best = (score, float(dx), float(dy))
        return best[1], best[2], best[0], count

    zero_score = _alignment_score(class_map, image, seg_x, seg_y, seg_h, 0.0, 0.0)
    dx0, dy0, _, n0 = search((0.0, 0.0), max_shift_m, coarse_step_m)
    dx1, dy1, score, n1 = search((dx0, dy0), coarse_step_m, fine_step_m)
    # Querying the image at (x - dx) is exactly what the image would return
    # at x after being shifted by (dx, dy), so the best candidate is the
    # shift to apply directly — but only if it is convincingly better than
    # not shifting at all.
    if not np.isfinite(score) or score < zero_score + min_improvement:
        return DriftEstimate(dx_m=0.0, dy_m=0.0, score=float(zero_score), n_candidates=n0 + n1)
    return DriftEstimate(dx_m=dx1, dy_m=dy1, score=score, n_candidates=n0 + n1)


def apply_shift(image: S2Image, estimate: DriftEstimate) -> S2Image:
    """Shift an S2 image by an estimated drift so it aligns with the IS2 track."""
    return image.shifted(estimate.dx_m, estimate.dy_m)
