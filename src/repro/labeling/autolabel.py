"""Label transfer from segmented Sentinel-2 imagery to ATL03 segments.

Both datasets are expressed in the same Antarctic polar stereographic
projection, so the overlay is a nearest-pixel lookup of each 2 m segment's
projected centre in the segmented S2 class map (paper Fig. 2).  Segments that
fall outside the image, or under detected cloud/shadow, are marked so the
manual-correction stage can fix or drop them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_UNLABELED
from repro.resampling.window import SegmentArray
from repro.sentinel2.scene import S2Image
from repro.sentinel2.segmentation import SegmentationResult


@dataclass
class AutoLabelResult:
    """Labels transferred from an S2 image onto IS2 segments."""

    labels: np.ndarray
    in_image: np.ndarray
    cloudy: np.ndarray
    shadowed: np.ndarray

    @property
    def n_labeled(self) -> int:
        return int(np.count_nonzero(self.labels != CLASS_UNLABELED))

    @property
    def n_segments(self) -> int:
        return int(self.labels.shape[0])

    def label_fractions(self) -> dict[int, float]:
        """Fraction of segments per transferred label (excluding unlabeled)."""
        valid = self.labels[self.labels != CLASS_UNLABELED]
        if valid.size == 0:
            return {}
        values, counts = np.unique(valid, return_counts=True)
        return {int(v): float(c) / float(valid.size) for v, c in zip(values, counts)}


def overlay_labels(
    image: S2Image,
    segmentation: SegmentationResult,
    x_m: np.ndarray,
    y_m: np.ndarray,
) -> AutoLabelResult:
    """Look up the S2 class of each projected point.

    Points outside the image footprint receive :data:`CLASS_UNLABELED`; the
    cloud and shadow masks are sampled at the same pixels so callers know
    which labels are suspect.
    """
    x = np.asarray(x_m, dtype=float)
    y = np.asarray(y_m, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x_m and y_m must have the same shape")
    if segmentation.class_map.shape != image.shape:
        raise ValueError("segmentation class_map does not match the image grid")

    inside = image.contains(x, y) & np.isfinite(x) & np.isfinite(y)
    labels = np.full(x.shape, CLASS_UNLABELED, dtype=np.int8)
    cloudy = np.zeros(x.shape, dtype=bool)
    shadowed = np.zeros(x.shape, dtype=bool)

    if inside.any():
        row, col = image.pixel_index(x[inside], y[inside])
        labels[inside] = segmentation.class_map[row, col]
        cloudy[inside] = segmentation.cloud_mask[row, col]
        shadowed[inside] = segmentation.shadow_mask[row, col]

    return AutoLabelResult(labels=labels, in_image=inside, cloudy=cloudy, shadowed=shadowed)


def auto_label_segments(
    segments: SegmentArray,
    image: S2Image,
    segmentation: SegmentationResult,
) -> AutoLabelResult:
    """Auto-label resampled 2 m segments from a segmented S2 image.

    The segment's mean projected position (x, y) — the average of its signal
    photons' coordinates — is used for the lookup, mirroring the paper's
    point-on-image overlay.
    """
    return overlay_labels(image, segmentation, segments.x_m, segments.y_m)
