"""Coincident ICESat-2 / Sentinel-2 acquisition pairs (paper Table I).

The paper lists eight IS2 ATL03 / S2 pairs over the Ross Sea in November 2019
with time differences below two hours, together with the shift applied to the
S2 image to compensate sea-ice drift.  The table is reproduced here verbatim
as data, and :func:`find_coincident_pairs` implements the matching rule used
to construct it (nearest S2 acquisition within a configurable temporal
window).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

import numpy as np

from repro.config import MAX_COINCIDENT_MINUTES


#: Compass direction -> unit vector in projected (x, y) coordinates.
_DIRECTION_VECTORS = {
    "N": (0.0, 1.0),
    "S": (0.0, -1.0),
    "E": (1.0, 0.0),
    "W": (-1.0, 0.0),
    "NE": (0.7071067811865476, 0.7071067811865476),
    "NW": (-0.7071067811865476, 0.7071067811865476),
    "SE": (0.7071067811865476, -0.7071067811865476),
    "SW": (-0.7071067811865476, -0.7071067811865476),
}


@dataclass(frozen=True)
class CoincidentPair:
    """One IS2/S2 coincident acquisition pair."""

    index: int
    is2_time: datetime
    s2_time: datetime
    shift_distance_m: float
    shift_direction: str

    def __post_init__(self) -> None:
        if self.shift_distance_m < 0:
            raise ValueError("shift_distance_m must be non-negative")
        if self.shift_distance_m > 0 and self.shift_direction not in _DIRECTION_VECTORS:
            raise ValueError(f"unknown shift direction {self.shift_direction!r}")

    @property
    def time_difference_minutes(self) -> float:
        """Absolute IS2-S2 time difference in minutes."""
        return abs((self.is2_time - self.s2_time).total_seconds()) / 60.0

    @property
    def shift_vector_m(self) -> tuple[float, float]:
        """The S2 shift expressed as a projected (dx, dy) vector in metres."""
        if self.shift_distance_m == 0.0:
            return (0.0, 0.0)
        ux, uy = _DIRECTION_VECTORS[self.shift_direction]
        return (self.shift_distance_m * ux, self.shift_distance_m * uy)

    @property
    def implied_drift_speed_m_per_min(self) -> float:
        """Ice drift speed implied by the shift over the time difference."""
        dt = self.time_difference_minutes
        if dt == 0:
            return 0.0
        return self.shift_distance_m / dt


def _utc(year: int, month: int, day: int, hh: int, mm: int, ss: int) -> datetime:
    return datetime(year, month, day, hh, mm, ss, tzinfo=timezone.utc)


#: Table I of the paper: the eight Ross Sea pairs from November 2019.
TABLE_I_PAIRS: tuple[CoincidentPair, ...] = (
    CoincidentPair(1, _utc(2019, 11, 3, 18, 44, 32), _utc(2019, 11, 3, 18, 34, 59), 550.0, "NW"),
    CoincidentPair(2, _utc(2019, 11, 4, 19, 53, 11), _utc(2019, 11, 4, 19, 45, 29), 0.0, ""),
    CoincidentPair(3, _utc(2019, 11, 13, 19, 10, 53), _utc(2019, 11, 13, 18, 34, 59), 200.0, "W"),
    CoincidentPair(4, _utc(2019, 11, 16, 19, 28, 13), _utc(2019, 11, 16, 18, 44, 59), 0.0, ""),
    CoincidentPair(5, _utc(2019, 11, 17, 19, 2, 34), _utc(2019, 11, 17, 18, 15, 9), 530.0, "NW"),
    CoincidentPair(6, _utc(2019, 11, 20, 19, 19, 52), _utc(2019, 11, 20, 20, 5, 29), 400.0, "NW"),
    CoincidentPair(7, _utc(2019, 11, 23, 18, 2, 55), _utc(2019, 11, 23, 18, 34, 59), 150.0, "E"),
    CoincidentPair(8, _utc(2019, 11, 26, 18, 20, 14), _utc(2019, 11, 26, 18, 44, 59), 350.0, "SW"),
)


def find_coincident_pairs(
    is2_times: list[datetime],
    s2_times: list[datetime],
    max_minutes: float = MAX_COINCIDENT_MINUTES,
) -> list[tuple[int, int, float]]:
    """Match IS2 acquisitions to the temporally nearest S2 acquisition.

    Parameters
    ----------
    is2_times, s2_times:
        Acquisition timestamps (timezone-aware).
    max_minutes:
        Maximum accepted absolute time difference.

    Returns
    -------
    list of (is2_index, s2_index, minutes):
        One entry per IS2 acquisition that has an S2 partner within the
        window, sorted by IS2 index.  Each S2 image may serve several IS2
        tracks (the real archive has far fewer S2 scenes than IS2 passes).
    """
    if max_minutes <= 0:
        raise ValueError("max_minutes must be positive")
    if not s2_times:
        return []
    s2_epoch = np.array([t.timestamp() for t in s2_times])
    order = np.argsort(s2_epoch)
    s2_sorted = s2_epoch[order]

    matches: list[tuple[int, int, float]] = []
    for i, t in enumerate(is2_times):
        ts = t.timestamp()
        pos = int(np.searchsorted(s2_sorted, ts))
        best_j, best_dt = -1, np.inf
        for candidate in (pos - 1, pos):
            if 0 <= candidate < s2_sorted.shape[0]:
                dt = abs(s2_sorted[candidate] - ts) / 60.0
                if dt < best_dt:
                    best_dt = dt
                    best_j = int(order[candidate])
        if best_j >= 0 and best_dt <= max_minutes:
            matches.append((i, best_j, float(best_dt)))
    return matches


def table_i_rows() -> list[dict[str, object]]:
    """Table I as printable rows (used by the benchmark harness)."""
    rows = []
    for pair in TABLE_I_PAIRS:
        rows.append(
            {
                "index": pair.index,
                "is2_time": pair.is2_time.strftime("%Y/%m/%d %H:%M:%S"),
                "s2_time": pair.s2_time.strftime("%Y/%m/%d %H:%M:%S"),
                "time_difference_min": round(pair.time_difference_minutes, 2),
                "shift_m": pair.shift_distance_m,
                "shift_direction": pair.shift_direction or "-",
            }
        )
    return rows
