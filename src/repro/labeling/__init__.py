"""Auto-labeling of ATL03 segments from coincident Sentinel-2 imagery.

Implements the paper's Section III.A.3-4:

* :mod:`repro.labeling.pairs` — the IS2/S2 coincident-pair catalogue
  (Table I) and the temporal-matching rule (< 80 minutes);
* :mod:`repro.labeling.alignment` — sea-ice drift estimation and the S2
  image shift that re-aligns the datasets;
* :mod:`repro.labeling.autolabel` — overlay of IS2 2 m segments on the
  segmented S2 image (shared EPSG:3976 projection) and label transfer;
* :mod:`repro.labeling.manual` — the manual-correction model for transition
  regions and cloud-contaminated labels.
"""

from repro.labeling.pairs import TABLE_I_PAIRS, CoincidentPair, find_coincident_pairs
from repro.labeling.alignment import estimate_drift, apply_shift, DriftEstimate
from repro.labeling.autolabel import AutoLabelResult, auto_label_segments, overlay_labels
from repro.labeling.manual import correct_labels, transition_mask
from repro.labeling.parallel import parallel_autolabel

__all__ = [
    "parallel_autolabel",
    "TABLE_I_PAIRS",
    "CoincidentPair",
    "find_coincident_pairs",
    "estimate_drift",
    "apply_shift",
    "DriftEstimate",
    "AutoLabelResult",
    "auto_label_segments",
    "overlay_labels",
    "correct_labels",
    "transition_mask",
]
