"""Map-reduce-parallel auto-labeling (the paper's Table II workload).

Auto-labeling is "highly data-parallel, albeit fine-grained" (paper
Section IV.B): every 2 m segment's label is an independent pixel lookup in
the segmented S2 image.  The job below partitions the segment arrays, maps
each partition through the overlay + cloud/shadow flagging, and reduces by
concatenation — the same structure as the paper's PySpark job.
"""

from __future__ import annotations

import numpy as np

from repro.config import CLASS_UNLABELED
from repro.distributed.mapreduce import MapReduceEngine, MapReduceResult
from repro.labeling.autolabel import AutoLabelResult
from repro.resampling.window import SegmentArray
from repro.sentinel2.scene import S2Image
from repro.sentinel2.segmentation import SegmentationResult


class _AutoLabelMap:
    """Picklable per-partition label-transfer map function."""

    def __init__(
        self,
        class_map: np.ndarray,
        cloud_mask: np.ndarray,
        shadow_mask: np.ndarray,
        origin_x_m: float,
        origin_y_m: float,
        pixel_size_m: float,
    ) -> None:
        self.class_map = class_map
        self.cloud_mask = cloud_mask
        self.shadow_mask = shadow_mask
        self.origin_x_m = origin_x_m
        self.origin_y_m = origin_y_m
        self.pixel_size_m = pixel_size_m

    def __call__(self, chunk: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        x = chunk["x_m"]
        y = chunk["y_m"]
        ny, nx = self.class_map.shape
        inside = (
            (x >= self.origin_x_m)
            & (x < self.origin_x_m + nx * self.pixel_size_m)
            & (y >= self.origin_y_m)
            & (y < self.origin_y_m + ny * self.pixel_size_m)
            & np.isfinite(x)
            & np.isfinite(y)
        )
        labels = np.full(x.shape, CLASS_UNLABELED, dtype=np.int8)
        cloudy = np.zeros(x.shape, dtype=bool)
        shadowed = np.zeros(x.shape, dtype=bool)
        if inside.any():
            col = np.clip(((x[inside] - self.origin_x_m) // self.pixel_size_m).astype(np.intp), 0, nx - 1)
            row = np.clip(((y[inside] - self.origin_y_m) // self.pixel_size_m).astype(np.intp), 0, ny - 1)
            labels[inside] = self.class_map[row, col]
            cloudy[inside] = self.cloud_mask[row, col]
            shadowed[inside] = self.shadow_mask[row, col]
        return {"labels": labels, "in_image": inside, "cloudy": cloudy, "shadowed": shadowed}


def _concat(parts: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    keys = parts[0].keys() if parts else ()
    return {k: np.concatenate([p[k] for p in parts]) if parts else np.empty(0) for k in keys}


def parallel_autolabel(
    segments: SegmentArray,
    image: S2Image,
    segmentation: SegmentationResult,
    engine: MapReduceEngine,
) -> tuple[AutoLabelResult, MapReduceResult]:
    """Auto-label 2 m segments with the map-reduce engine.

    Produces exactly the same :class:`AutoLabelResult` as the serial
    :func:`repro.labeling.auto_label_segments` (verified in tests), plus the
    per-stage map-reduce timings used by the Table II benchmark.
    """
    arrays = {"x_m": segments.x_m, "y_m": segments.y_m}
    map_fn = _AutoLabelMap(
        class_map=segmentation.class_map,
        cloud_mask=segmentation.cloud_mask,
        shadow_mask=segmentation.shadow_mask,
        origin_x_m=image.origin_x_m,
        origin_y_m=image.origin_y_m,
        pixel_size_m=image.pixel_size_m,
    )
    mr_result = engine.map_arrays(arrays, map_fn, _concat)
    combined = mr_result.value
    result = AutoLabelResult(
        labels=combined["labels"],
        in_image=combined["in_image"],
        cloudy=combined["cloudy"],
        shadowed=combined["shadowed"],
    )
    return result, mr_result
