"""Map-reduce-parallel auto-labeling (the paper's Table II workload).

Auto-labeling is "highly data-parallel, albeit fine-grained" (paper
Section IV.B): every 2 m segment's label is an independent pixel lookup in
the segmented S2 image.  The job below partitions the segment arrays, maps
each partition through the overlay + cloud/shadow flagging, and reduces by
concatenation — the same structure as the paper's PySpark job.
"""

from __future__ import annotations

import numpy as np

from repro.config import CLASS_UNLABELED
from repro.distributed.mapreduce import MapReduceEngine, MapReduceResult
from repro.geodesy.grid import GridDefinition
from repro.labeling.autolabel import AutoLabelResult
from repro.resampling.window import SegmentArray
from repro.sentinel2.scene import S2Image
from repro.sentinel2.segmentation import SegmentationResult


class _AutoLabelMap:
    """Picklable per-partition label-transfer map function.

    The point -> pixel arithmetic goes through the shared
    :class:`~repro.geodesy.grid.GridDefinition` indexing helper (the same
    one backing ``S2Image.pixel_index`` and the Level-3 binning), so the
    parallel job cannot drift from the serial overlay's semantics.
    """

    def __init__(
        self,
        class_map: np.ndarray,
        cloud_mask: np.ndarray,
        shadow_mask: np.ndarray,
        grid: GridDefinition,
    ) -> None:
        self.class_map = class_map
        self.cloud_mask = cloud_mask
        self.shadow_mask = shadow_mask
        self.grid = grid

    def __call__(self, chunk: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        x = chunk["x_m"]
        y = chunk["y_m"]
        inside = self.grid.contains(x, y) & np.isfinite(x) & np.isfinite(y)
        labels = np.full(x.shape, CLASS_UNLABELED, dtype=np.int8)
        cloudy = np.zeros(x.shape, dtype=bool)
        shadowed = np.zeros(x.shape, dtype=bool)
        if inside.any():
            row, col = self.grid.cell_index(x[inside], y[inside], clip=True)
            labels[inside] = self.class_map[row, col]
            cloudy[inside] = self.cloud_mask[row, col]
            shadowed[inside] = self.shadow_mask[row, col]
        return {"labels": labels, "in_image": inside, "cloudy": cloudy, "shadowed": shadowed}


def _concat(parts: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    keys = parts[0].keys() if parts else ()
    return {k: np.concatenate([p[k] for p in parts]) if parts else np.empty(0) for k in keys}


def parallel_autolabel(
    segments: SegmentArray,
    image: S2Image,
    segmentation: SegmentationResult,
    engine: MapReduceEngine,
) -> tuple[AutoLabelResult, MapReduceResult]:
    """Auto-label 2 m segments with the map-reduce engine.

    Produces exactly the same :class:`AutoLabelResult` as the serial
    :func:`repro.labeling.auto_label_segments` (verified in tests), plus the
    per-stage map-reduce timings used by the Table II benchmark.
    """
    arrays = {"x_m": segments.x_m, "y_m": segments.y_m}
    map_fn = _AutoLabelMap(
        class_map=segmentation.class_map,
        cloud_mask=segmentation.cloud_mask,
        shadow_mask=segmentation.shadow_mask,
        grid=image.grid,
    )
    mr_result = engine.map_arrays(arrays, map_fn, _concat)
    combined = mr_result.value
    result = AutoLabelResult(
        labels=combined["labels"],
        in_image=combined["in_image"],
        cloudy=combined["cloudy"],
        shadowed=combined["shadowed"],
    )
    return result, mr_result
