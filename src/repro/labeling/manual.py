"""Correction of auto-labels in transition and cloud-contaminated regions.

The paper notes two systematic failure modes of the automatic label transfer:

* near the *transitions* between surface types the residual misalignment puts
  the boundary in slightly the wrong place, and
* under *thick cloud or shadow* the S2 segmentation itself is wrong.

The authors fix both manually.  This module provides the programmatic
equivalent used to build training data at scale:

* :func:`transition_mask` flags segments within a configurable distance of a
  label change;
* :func:`correct_labels` re-labels flagged segments using the elevation
  signature of the photon data itself (a low-elevation, low-roughness segment
  next to an open-water region is open water regardless of what the shifted
  image says), and drops labels that cannot be resolved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE, CLASS_UNLABELED
from repro.labeling.autolabel import AutoLabelResult
from repro.resampling.window import SegmentArray


def transition_mask(labels: np.ndarray, halo: int = 3) -> np.ndarray:
    """Flag segments within ``halo`` segments of a label transition.

    Unlabeled segments do not create transitions by themselves.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    if halo < 0:
        raise ValueError("halo must be non-negative")
    n = labels.shape[0]
    mask = np.zeros(n, dtype=bool)
    if n < 2:
        return mask
    valid = labels != CLASS_UNLABELED
    change = np.zeros(n, dtype=bool)
    change[1:] = (labels[1:] != labels[:-1]) & valid[1:] & valid[:-1]
    idx = np.flatnonzero(change)
    for i in idx:
        lo = max(i - halo, 0)
        hi = min(i + halo, n)
        mask[lo:hi] = True
    return mask


@dataclass
class CorrectionReport:
    """Summary of what the correction pass changed."""

    n_flagged_transition: int
    n_flagged_cloud: int
    n_relabelled: int
    n_dropped: int


def correct_labels(
    segments: SegmentArray,
    auto: AutoLabelResult,
    halo: int = 3,
    water_height_quantile: float = 0.15,
    thick_height_quantile: float = 0.60,
    roughness_threshold_m: float = 0.12,
) -> tuple[np.ndarray, CorrectionReport]:
    """Correct auto-transferred labels in transition and cloudy regions.

    Elevation-based relabelling uses per-track height quantiles: segments
    whose mean height is below the ``water_height_quantile`` of the track and
    whose height spread is small are open water; segments above the
    ``thick_height_quantile`` are thick ice; in-between, thin ice.  Only
    flagged segments are touched; flagged segments without enough photons to
    judge are dropped (set to :data:`CLASS_UNLABELED`).

    Returns the corrected labels and a :class:`CorrectionReport`.
    """
    if segments.n_segments != auto.n_segments:
        raise ValueError("segments and auto-label result have different lengths")
    if not 0.0 <= water_height_quantile < thick_height_quantile <= 1.0:
        raise ValueError("quantiles must satisfy 0 <= water < thick <= 1")

    labels = auto.labels.copy()
    trans = transition_mask(labels, halo=halo)
    cloudy = auto.cloudy | auto.shadowed
    flagged = (trans | cloudy) & auto.in_image

    heights = segments.height_mean_m
    stds = segments.height_std_m
    finite = np.isfinite(heights)
    if not finite.any():
        return labels, CorrectionReport(int(trans.sum()), int(cloudy.sum()), 0, 0)

    water_level = np.quantile(heights[finite], water_height_quantile)
    thick_level = np.quantile(heights[finite], thick_height_quantile)

    judgeable = flagged & finite & (segments.n_photons >= 2)
    relabel = np.full(labels.shape, CLASS_THIN_ICE, dtype=np.int8)
    relabel[(heights <= water_level) & (np.nan_to_num(stds, nan=np.inf) <= roughness_threshold_m)] = CLASS_OPEN_WATER
    relabel[heights >= thick_level] = CLASS_THICK_ICE

    n_relabelled = int(np.count_nonzero(judgeable & (relabel != labels)))
    labels[judgeable] = relabel[judgeable]

    dropped = flagged & ~judgeable
    labels[dropped] = CLASS_UNLABELED

    report = CorrectionReport(
        n_flagged_transition=int(trans.sum()),
        n_flagged_cloud=int(cloudy.sum()),
        n_relabelled=n_relabelled,
        n_dropped=int(dropped.sum()),
    )
    return labels, report
