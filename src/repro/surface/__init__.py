"""Ground-truth sea-ice surface model shared by the ATL03 and Sentinel-2 simulators.

The paper's input data are real ICESat-2 granules and Sentinel-2 scenes over
the Ross Sea.  Because both observe the *same* physical surface, this package
provides that shared surface: a 2-D scene of thick ice, thin ice and
open-water leads/polynyas in Antarctic polar stereographic coordinates, with
a smoothly varying local sea-surface height and a per-class freeboard field.
The ATL03 photon simulator samples surface heights along a track through the
scene, and the Sentinel-2 simulator renders multispectral reflectance of the
same scene — which is exactly the geometry that makes the paper's
auto-labeling (transfer S2 labels to IS2 photons) meaningful.
"""

from repro.surface.scene import IceScene, SceneConfig, generate_scene
from repro.surface.fields import gaussian_random_field, smooth_threshold_classes
from repro.surface.track import TrackSpec, generate_track, track_through_scene

__all__ = [
    "IceScene",
    "SceneConfig",
    "generate_scene",
    "gaussian_random_field",
    "smooth_threshold_classes",
    "TrackSpec",
    "generate_track",
    "track_through_scene",
]
