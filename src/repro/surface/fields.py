"""Random-field helpers used to synthesise sea-ice scenes.

The scene generator needs spatially correlated random fields (ice
concentration, freeboard texture, cloud optical depth).  A Gaussian random
field with a tunable correlation length is produced by filtering white noise
in the Fourier domain, which is fast (O(n log n)) and fully vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import default_rng


def gaussian_random_field(
    shape: tuple[int, int],
    correlation_length_px: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Generate a zero-mean, unit-variance correlated Gaussian random field.

    Parameters
    ----------
    shape:
        ``(ny, nx)`` grid shape.
    correlation_length_px:
        Approximate correlation length in pixels.  Larger values give
        smoother fields.
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Array of shape ``shape`` with approximately zero mean and unit
        variance.
    """
    if len(shape) != 2:
        raise ValueError("shape must be (ny, nx)")
    ny, nx = shape
    if ny <= 0 or nx <= 0:
        raise ValueError("shape entries must be positive")
    if correlation_length_px <= 0:
        raise ValueError("correlation_length_px must be positive")
    rng = default_rng(rng)

    white = rng.standard_normal((ny, nx))
    ky = np.fft.fftfreq(ny)[:, None]
    kx = np.fft.fftfreq(nx)[None, :]
    k2 = kx**2 + ky**2
    # Gaussian spectral filter: exp(-(k * L)^2 / 2) with L in pixels.
    filt = np.exp(-0.5 * k2 * (2.0 * np.pi * correlation_length_px) ** 2 / (2.0 * np.pi) ** 2 * (2.0 * np.pi) ** 2)
    filt = np.exp(-0.5 * k2 * (correlation_length_px * 2.0 * np.pi) ** 2)
    spec = np.fft.fft2(white) * np.sqrt(filt)
    field = np.real(np.fft.ifft2(spec))
    std = field.std()
    if std < 1e-12:
        return np.zeros(shape)
    return (field - field.mean()) / std


def smooth_threshold_classes(
    field: np.ndarray, fractions: tuple[float, ...]
) -> np.ndarray:
    """Quantise a continuous field into classes with prescribed area fractions.

    ``fractions`` gives the target area fraction of each class, ordered from
    the *lowest* field values to the highest.  Class ``i`` occupies
    approximately ``fractions[i]`` of the grid.

    Returns an integer array with values ``0 .. len(fractions) - 1``.
    """
    field = np.asarray(field, dtype=float)
    fracs = np.asarray(fractions, dtype=float)
    if fracs.ndim != 1 or fracs.size == 0:
        raise ValueError("fractions must be a non-empty 1-D sequence")
    if np.any(fracs < 0):
        raise ValueError("fractions must be non-negative")
    total = fracs.sum()
    if total <= 0:
        raise ValueError("fractions must sum to a positive value")
    fracs = fracs / total

    cum = np.cumsum(fracs)[:-1]
    thresholds = np.quantile(field, cum) if cum.size else np.empty(0)
    classes = np.digitize(field, thresholds)
    return classes.astype(np.int8)


def add_linear_leads(
    class_map: np.ndarray,
    n_leads: int,
    lead_class: int,
    width_px: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Carve elongated open-water leads into a class map.

    Leads in sea ice are long, narrow cracks; the ATL07/ATL10 algorithms (and
    the paper's sea-surface stage) rely on crossing them to find local sea
    level.  This draws ``n_leads`` straight segments of the given pixel width
    and stamps them with ``lead_class``.

    Returns a modified copy of ``class_map``.
    """
    if n_leads < 0:
        raise ValueError("n_leads must be non-negative")
    if width_px < 1:
        raise ValueError("width_px must be >= 1")
    rng = default_rng(rng)
    out = np.array(class_map, copy=True)
    ny, nx = out.shape
    yy, xx = np.mgrid[0:ny, 0:nx]
    for _ in range(n_leads):
        x0, y0 = rng.uniform(0, nx), rng.uniform(0, ny)
        angle = rng.uniform(0, np.pi)
        length = rng.uniform(0.3, 1.0) * max(nx, ny)
        dx, dy = np.cos(angle), np.sin(angle)
        # Signed distance of every pixel from the lead's centre line and the
        # projection of the pixel along the line (to bound the lead length).
        dist = np.abs((xx - x0) * dy - (yy - y0) * dx)
        along = (xx - x0) * dx + (yy - y0) * dy
        mask = (dist <= width_px / 2.0) & (np.abs(along) <= length / 2.0)
        out[mask] = lead_class
    return out
