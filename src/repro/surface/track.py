"""ICESat-2 reference ground tracks through a scene.

A track is the along-track sampling geometry of one beam: a straight line in
projected coordinates (ICESat-2 ground tracks are near-straight over the tens
of kilometres of a scene) described by a start point, azimuth and length.
The ATL03 simulator places laser shots every ~0.7 m along it; the labeling
stage projects those shots back onto the Sentinel-2 grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geodesy.projection import PolarStereographic, antarctic_polar_stereographic
from repro.surface.scene import IceScene
from repro.utils.random import default_rng


@dataclass(frozen=True)
class TrackSpec:
    """Geometry of one beam's ground track in projected coordinates."""

    start_x_m: float
    start_y_m: float
    azimuth_deg: float
    length_m: float
    name: str = "gt2r"

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ValueError("length_m must be positive")

    @property
    def direction(self) -> tuple[float, float]:
        """Unit vector of the track direction in (x, y)."""
        az = np.radians(self.azimuth_deg)
        return float(np.sin(az)), float(np.cos(az))

    def points(self, along_track_m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Projected (x, y) of points at the given along-track distances."""
        s = np.asarray(along_track_m, dtype=float)
        if np.any(s < 0) or np.any(s > self.length_m + 1e-6):
            raise ValueError("along-track distances must lie within [0, length_m]")
        dx, dy = self.direction
        return self.start_x_m + s * dx, self.start_y_m + s * dy


def generate_track(
    scene: IceScene,
    length_m: float | None = None,
    azimuth_deg: float | None = None,
    name: str = "gt2r",
    rng: np.random.Generator | int | None = None,
    margin_fraction: float = 0.1,
) -> TrackSpec:
    """Create a track that stays inside the scene for its whole length.

    The track is anchored near one edge of the scene and oriented roughly
    along the scene's long axis (ICESat-2 tracks cross the Ross Sea close to
    north-south), with a small random azimuth jitter.
    """
    rng = default_rng(rng)
    cfg = scene.config
    if length_m is None:
        length_m = 0.8 * cfg.height_m
    if length_m <= 0:
        raise ValueError("length_m must be positive")
    if length_m > min(cfg.width_m, cfg.height_m):
        raise ValueError("track length exceeds scene size; enlarge the scene or shorten the track")
    if azimuth_deg is None:
        azimuth_deg = float(rng.uniform(-8.0, 8.0))

    margin_x = margin_fraction * cfg.width_m
    start_x = float(rng.uniform(cfg.origin_x_m + margin_x, cfg.origin_x_m + cfg.width_m - margin_x))
    start_y = cfg.origin_y_m + 0.05 * cfg.height_m
    track = TrackSpec(start_x, start_y, azimuth_deg, length_m, name=name)

    # Verify the end point is still inside; if not, steer the azimuth inward.
    end_x, end_y = track.points(np.array([length_m]))
    if not bool(scene.contains(end_x, end_y)[0]):
        track = TrackSpec(start_x, start_y, 0.0, length_m, name=name)
        end_x, end_y = track.points(np.array([length_m]))
        if not bool(scene.contains(end_x, end_y)[0]):
            raise ValueError("could not fit a track of the requested length inside the scene")
    return track


def track_through_scene(
    scene: IceScene,
    track: TrackSpec,
    spacing_m: float,
    projection: PolarStereographic | None = None,
) -> dict[str, np.ndarray]:
    """Sample a track at fixed along-track spacing and query the scene.

    Returns a dictionary of flat arrays: along-track distance, projected x/y,
    geodetic latitude/longitude, true surface class, true freeboard, local
    sea level and the lidar surface height.  This is the "truth table" that
    tests and evaluation code compare pipeline outputs against.
    """
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    proj = projection if projection is not None else antarctic_polar_stereographic()
    s = np.arange(0.0, track.length_m + spacing_m * 0.5, spacing_m)
    x, y = track.points(s)
    lat, lon = proj.inverse(x, y)
    return {
        "along_track_m": s,
        "x_m": x,
        "y_m": y,
        "lat_deg": lat,
        "lon_deg": lon,
        "surface_class": scene.classify(x, y).astype(np.int8),
        "freeboard_m": scene.freeboard(x, y),
        "sea_level_m": scene.sea_level(x, y),
        "surface_height_m": scene.surface_height(x, y),
    }
