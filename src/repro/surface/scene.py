"""Synthetic Ross Sea ice scene: class map, freeboard and sea-surface fields.

An :class:`IceScene` is the single source of truth observed by both
simulated sensors.  It lives in Antarctic polar stereographic (EPSG:3976
style) coordinates and provides vectorised point queries:

* ``classify(x, y)`` — surface class (thick ice / thin ice / open water),
* ``freeboard(x, y)`` — ice surface height above the local sea surface,
* ``sea_level(x, y)`` — local sea-surface height relative to the ellipsoid
  (after geophysical corrections, i.e. what ATL03 heights are referenced to),
* ``surface_height(x, y)`` — what a lidar actually ranges to:
  ``sea_level + freeboard`` (open water has zero freeboard).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    CLASS_OPEN_WATER,
    CLASS_THICK_ICE,
    CLASS_THIN_ICE,
)
from repro.geodesy.grid import GridDefinition
from repro.surface.fields import (
    add_linear_leads,
    gaussian_random_field,
    smooth_threshold_classes,
)
from repro.utils.random import default_rng


@dataclass(frozen=True)
class SceneConfig:
    """Parameters of a synthetic sea-ice scene.

    The defaults produce a scene similar in character to the paper's Ross Sea
    November 2019 setting: mostly thick first-year ice, a band of thin ice,
    and a small fraction of open water concentrated in leads and polynyas.
    """

    width_m: float = 50_000.0
    height_m: float = 50_000.0
    pixel_size_m: float = 10.0
    origin_x_m: float = -350_000.0
    origin_y_m: float = -1_250_000.0
    thick_ice_fraction: float = 0.72
    thin_ice_fraction: float = 0.18
    open_water_fraction: float = 0.10
    n_leads: int = 12
    lead_width_m: float = 60.0
    ice_correlation_length_m: float = 2_500.0
    thick_ice_freeboard_mean_m: float = 0.35
    thick_ice_freeboard_std_m: float = 0.12
    thin_ice_freeboard_mean_m: float = 0.06
    thin_ice_freeboard_std_m: float = 0.03
    snow_depth_mean_m: float = 0.08
    ridge_fraction: float = 0.03
    ridge_height_m: float = 1.2
    sea_level_mean_m: float = 0.0
    sea_level_amplitude_m: float = 0.15
    sea_level_wavelength_m: float = 40_000.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.pixel_size_m <= 0:
            raise ValueError("pixel_size_m must be positive")
        if self.width_m < self.pixel_size_m or self.height_m < self.pixel_size_m:
            raise ValueError("scene must span at least one pixel")
        fractions = (
            self.thick_ice_fraction,
            self.thin_ice_fraction,
            self.open_water_fraction,
        )
        if any(f < 0 for f in fractions):
            raise ValueError("class fractions must be non-negative")
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError("class fractions must sum to 1")

    @property
    def nx(self) -> int:
        return max(int(round(self.width_m / self.pixel_size_m)), 1)

    @property
    def ny(self) -> int:
        return max(int(round(self.height_m / self.pixel_size_m)), 1)


class IceScene:
    """A rasterised sea-ice scene with vectorised point queries."""

    def __init__(
        self,
        config: SceneConfig,
        class_map: np.ndarray,
        freeboard_map: np.ndarray,
        sea_level_params: tuple[float, float, float, float],
    ) -> None:
        class_map = np.asarray(class_map)
        freeboard_map = np.asarray(freeboard_map, dtype=float)
        if class_map.shape != (config.ny, config.nx):
            raise ValueError(
                f"class_map shape {class_map.shape} does not match config grid "
                f"({config.ny}, {config.nx})"
            )
        if freeboard_map.shape != class_map.shape:
            raise ValueError("freeboard_map must have the same shape as class_map")
        self.config = config
        self.class_map = class_map
        self.freeboard_map = freeboard_map
        # (mean, amplitude, wavelength, phase) of the long-wavelength sea level.
        self._sea_level_params = sea_level_params

    # -- coordinate helpers --------------------------------------------------

    @property
    def grid(self) -> GridDefinition:
        """The scene's raster as the shared :class:`GridDefinition` helper."""
        cfg = self.config
        return GridDefinition(
            x_min_m=cfg.origin_x_m,
            y_min_m=cfg.origin_y_m,
            cell_size_m=cfg.pixel_size_m,
            nx=cfg.nx,
            ny=cfg.ny,
        )

    def _to_pixel(self, x_m: np.ndarray, y_m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Convert projected metres to integer pixel indices, clipped to the grid."""
        return self.grid.cell_index(x_m, y_m, clip=True)

    def contains(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """Boolean mask of points that fall inside the scene extent.

        Deliberately tests the *configured* extent (``width_m``/``height_m``),
        not the pixel grid's span: when the width is not an exact multiple of
        the pixel size the rounded raster covers slightly less (or more) than
        the configured extent, and track/granule generation validates against
        the latter.
        """
        cfg = self.config
        x = np.asarray(x_m, dtype=float)
        y = np.asarray(y_m, dtype=float)
        return (
            (x >= cfg.origin_x_m)
            & (x < cfg.origin_x_m + cfg.width_m)
            & (y >= cfg.origin_y_m)
            & (y < cfg.origin_y_m + cfg.height_m)
        )

    @property
    def extent(self) -> tuple[float, float, float, float]:
        """(x_min, x_max, y_min, y_max) of the scene in projected metres."""
        cfg = self.config
        return (
            cfg.origin_x_m,
            cfg.origin_x_m + cfg.width_m,
            cfg.origin_y_m,
            cfg.origin_y_m + cfg.height_m,
        )

    # -- point queries ---------------------------------------------------------

    def classify(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """Surface class at projected coordinates (nearest pixel)."""
        row, col = self._to_pixel(x_m, y_m)
        return self.class_map[row, col]

    def freeboard(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """True freeboard (ice + snow surface above local sea level), metres."""
        row, col = self._to_pixel(x_m, y_m)
        return self.freeboard_map[row, col]

    def sea_level(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """Local sea-surface height relative to the ellipsoid, metres."""
        mean, amp, wavelength, phase = self._sea_level_params
        x = np.asarray(x_m, dtype=float)
        y = np.asarray(y_m, dtype=float)
        k = 2.0 * np.pi / wavelength
        return (
            mean
            + amp * np.sin(k * x + phase)
            + 0.5 * amp * np.cos(k * 0.7 * y + 2.0 * phase)
        )

    def surface_height(self, x_m: np.ndarray, y_m: np.ndarray) -> np.ndarray:
        """Height of the surface a lidar ranges to: sea level plus freeboard."""
        return self.sea_level(x_m, y_m) + self.freeboard(x_m, y_m)

    # -- summaries -------------------------------------------------------------

    def class_fractions(self) -> dict[int, float]:
        """Observed area fraction of each surface class."""
        values, counts = np.unique(self.class_map, return_counts=True)
        total = float(self.class_map.size)
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        return (
            f"IceScene({cfg.nx}x{cfg.ny} px, pixel={cfg.pixel_size_m} m, "
            f"fractions={self.class_fractions()})"
        )


def generate_scene(config: SceneConfig | None = None, seed: int | None = None) -> IceScene:
    """Generate a synthetic Ross Sea ice scene.

    The class map is produced by thresholding a correlated Gaussian random
    field at the configured area fractions (open water in the lowest values,
    then thin ice, then thick ice), and then carving narrow linear leads of
    open water through the pack — the structures the sea-surface detection
    stage depends on.  The freeboard field combines a per-class base level,
    correlated texture, snow cover on thick ice and occasional pressure
    ridges.
    """
    cfg = config if config is not None else SceneConfig()
    if seed is not None:
        cfg = SceneConfig(**{**cfg.__dict__, "seed": seed})
    rng = default_rng(cfg.seed)

    corr_px = max(cfg.ice_correlation_length_m / cfg.pixel_size_m, 1.0)
    concentration = gaussian_random_field((cfg.ny, cfg.nx), corr_px, rng)

    # Classes ordered from the lowest field values upward:
    # open water, thin ice, thick ice.
    raw = smooth_threshold_classes(
        concentration,
        (cfg.open_water_fraction, cfg.thin_ice_fraction, cfg.thick_ice_fraction),
    )
    class_map = np.full(raw.shape, CLASS_THICK_ICE, dtype=np.int8)
    class_map[raw == 0] = CLASS_OPEN_WATER
    class_map[raw == 1] = CLASS_THIN_ICE
    class_map[raw == 2] = CLASS_THICK_ICE

    lead_width_px = max(int(round(cfg.lead_width_m / cfg.pixel_size_m)), 1)
    class_map = add_linear_leads(
        class_map, cfg.n_leads, CLASS_OPEN_WATER, lead_width_px, rng
    )

    # Freeboard field -------------------------------------------------------
    texture = gaussian_random_field((cfg.ny, cfg.nx), corr_px / 4.0, rng)
    freeboard = np.zeros((cfg.ny, cfg.nx), dtype=float)

    thick = class_map == CLASS_THICK_ICE
    thin = class_map == CLASS_THIN_ICE
    freeboard[thick] = (
        cfg.thick_ice_freeboard_mean_m
        + cfg.snow_depth_mean_m
        + cfg.thick_ice_freeboard_std_m * texture[thick]
    )
    freeboard[thin] = (
        cfg.thin_ice_freeboard_mean_m + cfg.thin_ice_freeboard_std_m * texture[thin]
    )
    # Pressure ridges: a sparse set of thick-ice pixels get a tall sail.
    if cfg.ridge_fraction > 0 and thick.any():
        ridge_field = gaussian_random_field((cfg.ny, cfg.nx), corr_px / 10.0, rng)
        ridge_threshold = np.quantile(ridge_field[thick], 1.0 - cfg.ridge_fraction)
        ridges = thick & (ridge_field > ridge_threshold)
        freeboard[ridges] += cfg.ridge_height_m * rng.uniform(0.5, 1.0, size=int(ridges.sum()))
    # Physical constraint: freeboard never negative, open water exactly zero.
    np.clip(freeboard, 0.0, None, out=freeboard)
    freeboard[class_map == CLASS_OPEN_WATER] = 0.0

    sea_level_params = (
        cfg.sea_level_mean_m,
        cfg.sea_level_amplitude_m,
        cfg.sea_level_wavelength_m,
        float(rng.uniform(0, 2.0 * np.pi)),
    )
    return IceScene(cfg, class_map, freeboard, sea_level_params)
