"""Campaign configuration: a scenario grid expanded into per-granule experiments.

A *campaign* runs the full Fig. 1 pipeline over a fleet of granules, one per
point of a scenario grid.  Each grid axis perturbs one knob of the base
:class:`~repro.workflow.end_to_end.ExperimentConfig` — scene size, season-like
surface composition, cloud fraction, S2 drift magnitude, beam count, … — and
the cartesian product of the axes (times ``replicates``) yields the granule
fleet.  Every granule gets its own deterministic seed derived from the
campaign seed and the granule index, so campaign results are reproducible and
independent of worker scheduling.

Axes are addressed either by a short alias (``"cloud_fraction"``,
``"season"``, ``"drift_m"``, ...) or by a dotted path into the nested
experiment config (``"s2.cloud.thin_cloud_fraction"``,
``"atl03.solar_elevation_deg"``) — any field of any nested frozen dataclass
is sweepable without campaign-layer changes, except the campaign-wide
training knobs (:data:`CAMPAIGN_LEVEL_FIELDS`), which the shared classifier
reads from ``base`` and which are therefore rejected as axes.

:func:`CampaignConfig.fingerprint` gives a stable content hash of everything
that affects the science output (base config, grid, replicates, seed).  It
deliberately excludes execution knobs (worker count, executor kind, cache
location) so a campaign resumed with a different level of parallelism still
hits the same cache entries.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, is_dataclass, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.config import SEASON_PRESETS
from repro.distributed.mapreduce import EXECUTORS
from repro.pipeline.fingerprint import canonical as _canonical
from repro.workflow.end_to_end import ExperimentConfig

#: Short names for commonly swept knobs, mapped to dotted config paths.
#: ``"season"``, ``"open_water_fraction"`` and scalar ``"drift_m"`` get
#: special handling in :func:`apply_scenario` instead of a plain path.
AXIS_ALIASES: dict[str, str] = {
    "scene_width_m": "scene.width_m",
    "scene_height_m": "scene.height_m",
    "n_leads": "scene.n_leads",
    "cloud_fraction": "s2.cloud.thin_cloud_fraction",
    "shadow_fraction": "s2.cloud.shadow_fraction",
    "solar_elevation_deg": "atl03.solar_elevation_deg",
}

#: ExperimentConfig fields that are campaign-wide by construction: one
#: classifier is trained on the pooled segments of every granule, so these
#: knobs are read from ``base`` only.  Sweeping them per granule would be
#: silently ignored (``model_kind``, ``epochs``, ``training``/``lstm``/
#: ``mlp``), break pooled concatenation (``window_length_m``), be
#: overwritten by the derived per-granule seed (``seed``), break the
#: Level-3 mosaic, which needs every granule on one shared grid (``l3``), or
#: break the serving layer, which builds one tile pyramid per fleet mosaic
#: (``serve``) — so they are rejected as grid axes.
CAMPAIGN_LEVEL_FIELDS = (
    "model_kind",
    "epochs",
    "training",
    "lstm",
    "mlp",
    "window_length_m",
    "seed",
    "l3",
    "serve",
)


def _replace_path(obj: Any, path: str, value: Any):
    """Return ``obj`` with the dataclass field at dotted ``path`` replaced."""
    head, _, rest = path.partition(".")
    if not is_dataclass(obj) or not hasattr(obj, head):
        raise ValueError(f"unknown scenario axis {path!r} for {type(obj).__name__}")
    if rest:
        return replace(obj, **{head: _replace_path(getattr(obj, head), rest, value)})
    if isinstance(value, list):
        value = tuple(value)
    return replace(obj, **{head: value})


def apply_scenario(base: ExperimentConfig, scenario: Mapping[str, Any]) -> ExperimentConfig:
    """Apply one scenario point (axis name -> value) to the base experiment.

    ``"season"`` maps through :data:`repro.config.SEASON_PRESETS` and sets all
    three surface-class fractions at once (they must sum to one, so sweeping
    one of them alone would always fail SceneConfig's validation).
    ``"open_water_fraction"`` likewise sets the requested open-water fraction
    and rescales the two ice fractions proportionally to keep the sum at one.
    A scalar ``"drift_m"`` is interpreted as the drift *magnitude* and
    decomposed into a fixed-ratio (0.6, 0.8) x/y offset whose Euclidean norm
    equals the requested value.
    """
    cfg = base
    for name, value in scenario.items():
        if name == "season":
            if value not in SEASON_PRESETS:
                raise ValueError(
                    f"unknown season {value!r}; expected one of {sorted(SEASON_PRESETS)}"
                )
            cfg = replace(cfg, scene=replace(cfg.scene, **SEASON_PRESETS[value]))
            continue
        if name == "open_water_fraction":
            value = float(value)
            if not 0.0 <= value < 1.0:
                raise ValueError("open_water_fraction must be in [0, 1)")
            scene = cfg.scene
            ice = scene.thick_ice_fraction + scene.thin_ice_fraction
            if ice <= 0.0:
                raise ValueError(
                    "cannot sweep open_water_fraction when the base scene has no ice"
                )
            scale = (1.0 - value) / ice
            cfg = replace(
                cfg,
                scene=replace(
                    scene,
                    open_water_fraction=value,
                    thick_ice_fraction=scene.thick_ice_fraction * scale,
                    thin_ice_fraction=scene.thin_ice_fraction * scale,
                ),
            )
            continue
        if name == "drift_m" and isinstance(value, (int, float)) and not isinstance(value, bool):
            value = (0.6 * float(value), 0.8 * float(value))
        cfg = _replace_path(cfg, AXIS_ALIASES.get(name, name), value)
    return cfg


def granule_seed(campaign_seed: int, index: int) -> int:
    """Deterministic per-granule seed: stable in (campaign seed, index) only."""
    seq = np.random.SeedSequence(entropy=campaign_seed, spawn_key=(index,))
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (tuple, list)):
        return "x".join(_format_value(v) for v in value)
    return str(value)


@dataclass(frozen=True)
class GranuleSpec:
    """One granule of a campaign: its identity, scenario point and experiment."""

    granule_id: str
    index: int
    replicate: int
    scenario: tuple[tuple[str, Any], ...]
    config: ExperimentConfig

    def scenario_dict(self) -> dict[str, Any]:
        return dict(self.scenario)


@dataclass(frozen=True)
class CampaignConfig:
    """A scenario grid over a base experiment, plus execution knobs.

    Parameters
    ----------
    base:
        The experiment every scenario point perturbs.
    grid:
        Mapping of axis name to the values it sweeps (also accepted in the
        canonical ``((name, (values...)), ...)`` tuple form).  An empty grid
        yields a single-granule campaign of the base config.
    replicates:
        Independent granules per grid point (distinct seeds).
    seed:
        Campaign seed; per-granule seeds and the pooled-training seed derive
        from it deterministically.
    n_workers / executor:
        Parallel fan-out width and executor kind for the curation and
        inference stages (``n_workers=1`` always runs serially).
    use_shm:
        Route process-executor fan-out payloads through shared memory
        (zero-copy array transport); execution knob only, excluded from the
        fingerprint like ``n_workers``/``executor``.
    cache_dir:
        Directory for the resumable on-disk result cache; ``None`` disables
        caching.
    """

    base: ExperimentConfig = field(default_factory=ExperimentConfig)
    grid: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    replicates: int = 1
    seed: int = 0
    n_workers: int = 1
    executor: str = "process"
    use_shm: bool = True
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        grid = self.grid
        if isinstance(grid, Mapping):
            grid = tuple((str(name), tuple(values)) for name, values in grid.items())
        else:
            grid = tuple((str(name), tuple(values)) for name, values in grid)
        for name, values in grid:
            if not values:
                raise ValueError(f"scenario axis {name!r} must have at least one value")
            if name != "season":
                head = AXIS_ALIASES.get(name, name).partition(".")[0]
                if head in CAMPAIGN_LEVEL_FIELDS:
                    raise ValueError(
                        f"scenario axis {name!r} targets the campaign-wide field "
                        f"{head!r}: the campaign trains one shared classifier, so "
                        "set it on `base` (use `replicates` to vary seeds)"
                    )
        object.__setattr__(self, "grid", grid)
        if self.replicates <= 0:
            raise ValueError("replicates must be positive")
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", str(self.cache_dir))

    # -- expansion -----------------------------------------------------------

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.grid)

    @property
    def n_granules(self) -> int:
        n = self.replicates
        for _, values in self.grid:
            n *= len(values)
        return n

    def scenarios(self) -> list[tuple[tuple[str, Any], ...]]:
        """All grid points in deterministic (row-major) order."""
        names = self.axis_names
        combos = itertools.product(*(values for _, values in self.grid))
        return [tuple(zip(names, combo)) for combo in combos]

    def expand(self) -> list[GranuleSpec]:
        """Expand the grid into per-granule specs with derived seeds.

        The expansion order (scenario-major, replicate-minor) defines the
        canonical granule order used for pooled training, so results are
        bit-for-bit identical however the fleet is scheduled.
        """
        specs: list[GranuleSpec] = []
        index = 0
        for scenario in self.scenarios():
            for replicate in range(self.replicates):
                cfg = apply_scenario(self.base, dict(scenario))
                cfg = replace(cfg, seed=granule_seed(self.seed, index))
                parts = [f"{name}={_format_value(value)}" for name, value in scenario]
                if self.replicates > 1:
                    parts.append(f"r{replicate}")
                suffix = ("-" + "-".join(parts)) if parts else ""
                specs.append(
                    GranuleSpec(
                        granule_id=f"g{index:03d}{suffix}",
                        index=index,
                        replicate=replicate,
                        scenario=scenario,
                        config=cfg,
                    )
                )
                index += 1
        _ensure_unique_granule_ids(specs)
        return specs

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable hash of the science-relevant configuration.

        Covers ``base``, ``grid``, ``replicates`` and ``seed``; excludes
        ``n_workers``/``executor``/``cache_dir`` so cache entries survive a
        change of parallelism or cache location.
        """
        payload = {
            "version": "campaign-v1",
            "base": _canonical(self.base),
            "grid": _canonical(self.grid),
            "replicates": self.replicates,
            "seed": self.seed,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        )
        return digest.hexdigest()[:16]


def _ensure_unique_granule_ids(specs: Sequence[GranuleSpec]) -> None:
    """Reject duplicate granule ids with a clear error.

    Granule ids key the campaign cache and result lookup, so a collision
    would silently overwrite one granule's artifacts with another's.  Ids
    embed the expansion index, so duplicates cannot arise from a well-formed
    expansion — this guards custom spec construction and future id schemes.
    """
    seen: dict[str, int] = {}
    for spec in specs:
        if spec.granule_id in seen:
            raise ValueError(
                f"duplicate granule_id {spec.granule_id!r} (indices "
                f"{seen[spec.granule_id]} and {spec.index}): granule ids key "
                "the campaign cache and results, so they must be unique"
            )
        seen[spec.granule_id] = spec.index
