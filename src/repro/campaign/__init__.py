"""Multi-granule campaign engine: scenario grids, parallel orchestration, caching.

The seed pipeline reproduces the paper's Fig. 1 workflow for one granule per
run; this package scales it to *fleets* of granules — the operating regime
the paper (and production altimetry processors such as pysiral) actually
target:

* :mod:`repro.campaign.config` — :class:`CampaignConfig` expands a scenario
  grid (season, cloud fraction, drift, scene size, beam count, any dotted
  config path) into per-granule experiment configs with derived seeds;
* :mod:`repro.campaign.runner` — :class:`CampaignRunner` curates all granules
  in parallel over a process pool, trains **one** classifier on the pooled
  labelled segments, then fans inference/freeboard/ATL07/ATL10 back out;
* :mod:`repro.campaign.cache` — a resumable on-disk artifact store keyed by
  the campaign's config fingerprint, so re-runs skip completed granules;
* :mod:`repro.campaign.metrics` — per-granule and pooled campaign metrics
  plus the cost-model-based simulated cluster scaling report.

Quick start::

    from repro.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        grid={"season": ("winter", "freeze_up"), "cloud_fraction": (0.1, 0.3, 0.5)},
        n_workers=2,
        cache_dir="./campaign-cache",
    )
    result = run_campaign(config)
    print(result.summary())
"""

from repro.campaign.cache import CampaignCache
from repro.campaign.config import (
    AXIS_ALIASES,
    CampaignConfig,
    GranuleSpec,
    apply_scenario,
    granule_seed,
)
from repro.campaign.metrics import (
    CampaignMetrics,
    CampaignScalingRow,
    GranuleMetrics,
    aggregate_metrics,
    campaign_scaling_table,
    granule_metrics,
)
from repro.campaign.runner import (
    CampaignL3Result,
    CampaignResult,
    CampaignRunner,
    CuratedGranule,
    GranuleResult,
    run_campaign,
)

__all__ = [
    "AXIS_ALIASES",
    "CampaignCache",
    "CampaignConfig",
    "CampaignL3Result",
    "CampaignMetrics",
    "CampaignResult",
    "CampaignRunner",
    "CampaignScalingRow",
    "CuratedGranule",
    "GranuleMetrics",
    "GranuleResult",
    "GranuleSpec",
    "aggregate_metrics",
    "apply_scenario",
    "campaign_scaling_table",
    "granule_metrics",
    "granule_seed",
    "run_campaign",
]
