"""Per-granule and campaign-level metrics, plus the simulated scaling report.

Each granule contributes a :class:`GranuleMetrics` (classification accuracy
against the simulator's ground truth, a 3x3 confusion matrix, class mix and
freeboard statistics).  :func:`aggregate_metrics` pools them into one
:class:`CampaignMetrics`: confusion matrices add, accuracies are recomputed
from the pooled matrix (not averaged), and freeboard moments combine via
count-weighted sums so the campaign numbers equal what a single concatenated
track would yield.

:func:`campaign_scaling_table` routes the measured per-stage serial times
through the calibrated :class:`~repro.distributed.cluster.ClusterCostModel`:
curation and inference are granule-parallel (the model's almost-perfectly
parallel "reduce" profile), pooled training is the serial fraction, so the
campaign as a whole follows Amdahl's law over the executor/core grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.classification.pipeline import ClassifiedTrack
from repro.config import CLASS_NAMES, ClusterConfig, DEFAULT_CLUSTER, N_CLASSES
from repro.distributed.cluster import ClusterCostModel
from repro.freeboard.freeboard import FreeboardResult
from repro.ml.metrics import confusion_matrix


@dataclass(frozen=True)
class GranuleMetrics:
    """Summary statistics of one granule's classification and freeboard."""

    granule_id: str
    scenario: tuple[tuple[str, Any], ...]
    n_segments: int
    n_truth_segments: int
    accuracy: float
    confusion: np.ndarray
    class_fractions: tuple[float, ...]
    n_ice_segments: int
    mean_freeboard_m: float
    freeboard_std_m: float

    def as_row(self) -> dict[str, object]:
        """One row of the per-granule campaign summary table."""
        row: dict[str, object] = {"Granule": self.granule_id}
        for name, value in self.scenario:
            row[name] = value
        row["Segments"] = self.n_segments
        row["Accuracy"] = round(self.accuracy, 4)
        for class_id, class_name in enumerate(CLASS_NAMES):
            row[f"% {class_name}"] = round(100.0 * self.class_fractions[class_id], 1)
        row["Freeboard (m)"] = round(self.mean_freeboard_m, 3)
        return row


def granule_metrics(
    granule_id: str,
    scenario: tuple[tuple[str, Any], ...],
    classified: Mapping[str, ClassifiedTrack],
    freeboard: Mapping[str, FreeboardResult],
) -> GranuleMetrics:
    """Compute one granule's metrics from its classified beams and freeboard."""
    predicted = np.concatenate([classified[name].labels for name in sorted(classified)])
    truth = np.concatenate(
        [classified[name].segments.truth_class for name in sorted(classified)]
    )
    valid = truth >= 0
    if valid.any():
        cm = confusion_matrix(
            truth[valid].astype(int), predicted[valid].astype(int), n_classes=N_CLASSES
        )
        accuracy = float(np.trace(cm)) / float(cm.sum())
    else:
        cm = np.zeros((N_CLASSES, N_CLASSES), dtype=np.int64)
        accuracy = float("nan")

    counts = np.bincount(predicted[predicted >= 0], minlength=N_CLASSES).astype(float)
    total = max(counts.sum(), 1.0)
    fractions = tuple(float(c) / total for c in counts[:N_CLASSES])

    ice_values = []
    for name in sorted(freeboard):
        fb = freeboard[name]
        ice = fb.ice_mask()
        if ice.any():
            ice_values.append(fb.freeboard_m[ice])
    if ice_values:
        pooled = np.concatenate(ice_values)
        mean_fb = float(pooled.mean())
        std_fb = float(pooled.std())
        n_ice = int(pooled.size)
    else:
        mean_fb, std_fb, n_ice = 0.0, 0.0, 0

    return GranuleMetrics(
        granule_id=granule_id,
        scenario=tuple(scenario),
        n_segments=int(predicted.size),
        n_truth_segments=int(valid.sum()),
        accuracy=accuracy,
        confusion=cm,
        class_fractions=fractions,
        n_ice_segments=n_ice,
        mean_freeboard_m=mean_fb,
        freeboard_std_m=std_fb,
    )


@dataclass(frozen=True)
class CampaignMetrics:
    """Campaign-level aggregation over every granule."""

    n_granules: int
    n_segments: int
    confusion: np.ndarray
    accuracy: float
    macro_f1: float
    n_ice_segments: int
    mean_freeboard_m: float
    freeboard_std_m: float

    def per_class_accuracy(self) -> dict[str, float]:
        """Row-normalised diagonal of the pooled confusion matrix (Fig. 4 style)."""
        row_sums = self.confusion.sum(axis=1).astype(float)
        out: dict[str, float] = {}
        for class_id, class_name in enumerate(CLASS_NAMES):
            denom = row_sums[class_id]
            out[class_name] = float(self.confusion[class_id, class_id] / denom) if denom else 0.0
        return out

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "Granules": self.n_granules,
            "Segments": self.n_segments,
            "Accuracy": round(self.accuracy, 4),
            "Macro F1": round(self.macro_f1, 4),
        }
        for class_name, value in self.per_class_accuracy().items():
            row[f"Acc {class_name}"] = round(value, 4)
        row["Freeboard (m)"] = round(self.mean_freeboard_m, 3)
        row["Freeboard std (m)"] = round(self.freeboard_std_m, 3)
        return row


def _macro_f1(cm: np.ndarray) -> float:
    tp = np.diag(cm).astype(float)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    precision = np.divide(tp, tp + fp, out=np.zeros_like(tp), where=(tp + fp) > 0)
    recall = np.divide(tp, tp + fn, out=np.zeros_like(tp), where=(tp + fn) > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom, out=np.zeros_like(tp), where=denom > 0)
    return float(f1.mean())


def aggregate_metrics(granules: Sequence[GranuleMetrics]) -> CampaignMetrics:
    """Pool per-granule metrics into campaign totals.

    Confusion matrices are summed and the campaign accuracy / macro-F1 are
    recomputed from the pooled matrix; freeboard mean and std combine through
    count-weighted first and second moments, so the result is identical to
    computing the statistics over all granules' ice segments at once.
    """
    if not granules:
        raise ValueError("cannot aggregate an empty campaign")
    confusion = np.zeros((N_CLASSES, N_CLASSES), dtype=np.int64)
    n_segments = 0
    n_ice = 0
    fb_sum = 0.0
    fb_sumsq = 0.0
    for gm in granules:
        confusion += gm.confusion
        n_segments += gm.n_segments
        n_ice += gm.n_ice_segments
        fb_sum += gm.n_ice_segments * gm.mean_freeboard_m
        fb_sumsq += gm.n_ice_segments * (
            gm.freeboard_std_m**2 + gm.mean_freeboard_m**2
        )
    total = confusion.sum()
    accuracy = float(np.trace(confusion)) / float(total) if total else float("nan")
    mean_fb = fb_sum / n_ice if n_ice else 0.0
    var_fb = max(fb_sumsq / n_ice - mean_fb**2, 0.0) if n_ice else 0.0
    return CampaignMetrics(
        n_granules=len(granules),
        n_segments=n_segments,
        confusion=confusion,
        accuracy=accuracy,
        macro_f1=_macro_f1(confusion),
        n_ice_segments=n_ice,
        mean_freeboard_m=mean_fb,
        freeboard_std_m=float(np.sqrt(var_fb)),
    )


@dataclass(frozen=True)
class CampaignScalingRow:
    """Predicted campaign wall time for one simulated cluster configuration."""

    executors: int
    cores: int
    curation_s: float
    training_s: float
    inference_s: float
    total_s: float
    speedup: float

    def as_dict(self) -> dict[str, float | int]:
        return {
            "Executors": self.executors,
            "Cores": self.cores,
            "Curation (s)": round(self.curation_s, 2),
            "Training (s)": round(self.training_s, 2),
            "Inference (s)": round(self.inference_s, 2),
            "Total (s)": round(self.total_s, 2),
            "Speedup": round(self.speedup, 2),
        }


def campaign_scaling_table(
    curation_serial_s: float,
    training_s: float,
    inference_serial_s: float,
    cost_model: ClusterCostModel | None = None,
    cluster: ClusterConfig = DEFAULT_CLUSTER,
) -> list[CampaignScalingRow]:
    """Predict campaign scaling on the simulated Dataproc-style cluster.

    ``curation_serial_s`` and ``inference_serial_s`` are serial-equivalent
    baselines (sum of per-granule stage times); ``training_s`` is the pooled
    classifier fit, which stays on the driver.  The parallel stages follow the
    cost model's reduce profile plus one scheduling overhead each; speedups
    are referenced to the first grid point.
    """
    model = cost_model if cost_model is not None else ClusterCostModel()

    def total(executors: int, cores: int) -> tuple[float, float, float]:
        curation = model.reduce_time(max(curation_serial_s, model.min_time_s), executors, cores)
        inference = model.reduce_time(max(inference_serial_s, model.min_time_s), executors, cores)
        overhead = 2.0 * model.map_time(executors, cores)
        return curation, inference, curation + inference + training_s + overhead

    ref_executors, ref_cores = cluster.executor_grid[0], cluster.cores_grid[0]
    _, _, ref_total = total(ref_executors, ref_cores)

    rows: list[CampaignScalingRow] = []
    for executors in cluster.executor_grid:
        for cores in cluster.cores_grid:
            curation, inference, total_s = total(executors, cores)
            rows.append(
                CampaignScalingRow(
                    executors=executors,
                    cores=cores,
                    curation_s=curation,
                    training_s=training_s,
                    inference_s=inference,
                    total_s=total_s,
                    speedup=ref_total / total_s,
                )
            )
    return rows
