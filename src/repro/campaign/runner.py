"""Campaign orchestration: parallel curation, one shared classifier, fan-out retrieval.

The runner executes the Fig. 1 workflow over a whole granule fleet in three
stages:

1. **Curation fan-out** — every granule's stage-1 pipeline (scene → ATL03 →
   S2 → segmentation → drift → resample → auto-label) runs independently.
   Granules are chunked over a :class:`~repro.distributed.mapreduce.MapReduceEngine`
   with the ``process`` executor (a ``ProcessPoolExecutor`` under the hood) —
   the same chunk/map/concatenate idiom as :mod:`repro.labeling.parallel` and
   :mod:`repro.freeboard.parallel`, lifted from segment level to granule level.
2. **Pooled training** — one classifier is trained on the labelled segments
   of *all* granules, concatenated in canonical expansion order.  Training
   stays on the driver, so campaign results are bit-for-bit independent of
   worker count and scheduling.
3. **Retrieval fan-out** — inference, sea-surface detection, freeboard and
   the ATL07/ATL10 baselines fan back out per granule through the same engine.

Every stage artifact is cached on disk keyed by the campaign fingerprint
(:mod:`repro.campaign.cache`), so an interrupted or repeated campaign resumes
from completed granules, and the measured per-stage serial times are routed
through the :class:`~repro.distributed.cluster.ClusterCostModel` into a
simulated cluster scaling report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.campaign.cache import CampaignCache
from repro.campaign.config import CampaignConfig, GranuleSpec
from repro.campaign.metrics import (
    CampaignMetrics,
    CampaignScalingRow,
    GranuleMetrics,
    aggregate_metrics,
    campaign_scaling_table,
    granule_metrics,
)
from repro.classification.pipeline import (
    InferencePipeline,
    TrainedClassifier,
    train_classifier,
)
from repro.config import ClusterConfig, DEFAULT_CLUSTER
from repro.distributed.cluster import ClusterCostModel
from repro.distributed.mapreduce import MapReduceEngine
from repro.evaluation.report import format_table
from repro.resampling.window import SegmentArray, concatenate_segments
from repro.utils.timing import Stopwatch, TimingRecord
from repro.workflow.end_to_end import (
    ExperimentData,
    InferenceProducts,
    prepare_experiment_data,
    run_inference_stage,
)


@dataclass
class CuratedGranule:
    """Stage-1 output of one granule, ready for pooled training.

    ``groups`` holds the per-beam group ids of the combined segments so
    pooled training can keep features and LSTM sequences from crossing beam
    boundaries as well as granule boundaries.
    """

    granule_id: str
    data: ExperimentData
    segments: SegmentArray
    labels: np.ndarray
    groups: np.ndarray
    seconds: float


@dataclass
class GranuleResult:
    """Final products and metrics of one campaign granule.

    Carries both stage times (``curation_seconds`` from stage 1,
    ``seconds`` from the retrieval stage) so a fully cached resume can
    rebuild the scaling report without deserialising the heavy per-granule
    curated artifacts.
    """

    granule_id: str
    scenario: dict[str, Any]
    seed: int
    products: InferenceProducts
    metrics: GranuleMetrics
    seconds: float
    curation_seconds: float = 0.0


@dataclass
class CampaignResult:
    """Everything a campaign produces, in canonical granule order."""

    fingerprint: str
    granules: list[GranuleResult]
    classifier: TrainedClassifier
    metrics: CampaignMetrics
    timing: TimingRecord
    scaling: list[CampaignScalingRow]
    #: Cache keys consulted this run (both empty when caching is disabled).
    cache_hits: tuple[str, ...] = ()
    cache_misses: tuple[str, ...] = ()

    @property
    def n_granules(self) -> int:
        return len(self.granules)

    def granule(self, granule_id: str) -> GranuleResult:
        for result in self.granules:
            if result.granule_id == granule_id:
                return result
        raise KeyError(f"no granule {granule_id!r} in this campaign")

    def summary(self) -> str:
        """Plain-text per-granule and campaign-level summary tables."""
        per_granule = format_table(
            [result.metrics.as_row() for result in self.granules],
            title=f"Campaign {self.fingerprint}: {self.n_granules} granules",
        )
        campaign = format_table([self.metrics.as_row()], title="Campaign aggregate")
        scaling = format_table(
            [row.as_dict() for row in self.scaling],
            title="Simulated cluster scaling (calibrated cost model)",
        )
        return "\n\n".join([per_granule, campaign, scaling])


class _CurateTask:
    """Picklable map function: curate one chunk of granule specs."""

    def __call__(self, specs: Sequence[GranuleSpec]) -> list[CuratedGranule]:
        out: list[CuratedGranule] = []
        for spec in specs:
            sw = Stopwatch().start()
            data = prepare_experiment_data(spec.config)
            segments, labels, groups = data.combined_training_arrays()
            out.append(
                CuratedGranule(
                    granule_id=spec.granule_id,
                    data=data,
                    segments=segments,
                    labels=labels,
                    groups=groups,
                    seconds=sw.stop(),
                )
            )
        return out


class _RetrieveTask:
    """Picklable map function: classify + retrieve one chunk of curated granules.

    Classification is pooled across the whole chunk: every granule's beams go
    through one ``predict_batched`` pass (the LSTM steps all sequences of all
    granules together), and the measured pooled time is attributed back to
    the granules proportionally to their segment counts so the scaling report
    stays meaningful.
    """

    def __init__(self, classifier: TrainedClassifier) -> None:
        self.classifier = classifier

    def __call__(
        self, items: Sequence[tuple[GranuleSpec, CuratedGranule]]
    ) -> list[GranuleResult]:
        pooled: dict[str, SegmentArray] = {}
        for spec, curated in items:
            for beam_name, segments in curated.data.segments.items():
                pooled[f"{spec.granule_id}/{beam_name}"] = segments

        sw_pool = Stopwatch().start()
        pipeline = InferencePipeline(self.classifier)
        classified_pool = pipeline.classify_segments_batched(pooled)
        pool_seconds = sw_pool.stop()
        total_segments = max(sum(t.n_segments for t in classified_pool.values()), 1)

        out: list[GranuleResult] = []
        for spec, curated in items:
            sw = Stopwatch().start()
            classified = {
                beam_name: classified_pool[f"{spec.granule_id}/{beam_name}"]
                for beam_name in curated.data.segments
            }
            products = run_inference_stage(
                curated.data, self.classifier, spec.config, classified=classified
            )
            metrics = granule_metrics(
                spec.granule_id, spec.scenario, products.classified, products.freeboard
            )
            granule_segments = sum(t.n_segments for t in classified.values())
            share = pool_seconds * granule_segments / total_segments
            out.append(
                GranuleResult(
                    granule_id=spec.granule_id,
                    scenario=spec.scenario_dict(),
                    seed=spec.config.seed,
                    products=products,
                    metrics=metrics,
                    seconds=sw.stop() + share,
                    curation_seconds=curated.seconds,
                )
            )
        return out


def _flatten(parts: list[list]) -> list:
    return [item for part in parts for item in part]


class CampaignRunner:
    """Execute a :class:`~repro.campaign.config.CampaignConfig` end to end."""

    def __init__(
        self,
        config: CampaignConfig,
        cost_model: ClusterCostModel | None = None,
        cluster: ClusterConfig = DEFAULT_CLUSTER,
    ) -> None:
        self.config = config
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.cluster = cluster
        self.fingerprint = config.fingerprint()
        self.cache: CampaignCache | None = (
            CampaignCache(config.cache_dir, self.fingerprint)
            if config.cache_dir is not None
            else None
        )

    # -- engine ----------------------------------------------------------------

    def _engine(self, n_items: int) -> MapReduceEngine:
        """Granule-chunking engine: one partition per worker, capped by items."""
        executor = self.config.executor if self.config.n_workers > 1 and n_items > 1 else "serial"
        n_partitions = max(min(self.config.n_workers, n_items), 1)
        return MapReduceEngine(
            n_partitions=n_partitions,
            executor=executor,
            max_workers=self.config.n_workers,
        )

    def _fan_out(self, items: list, task) -> list:
        """Run ``task`` over worker-count chunks of ``items``; order-preserving."""
        if not items:
            return []
        result = self._engine(len(items)).run(lambda: items, task, _flatten)
        return list(result.value)

    # -- cache helpers ---------------------------------------------------------

    def _cache_load(self, key: str, hits: list[str], misses: list[str]):
        """Load one artifact, recording the hit/miss; no-op without a cache."""
        if self.cache is None:
            return None
        value = self.cache.load(key)
        (hits if value is not None else misses).append(key)
        return value

    def _cache_store(self, key: str, value) -> None:
        if self.cache is not None:
            self.cache.store(key, value)

    # -- stages ----------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Run (or resume) the whole campaign and return aggregated results."""
        specs = self.config.expand()
        timing = TimingRecord()
        hits: list[str] = []
        misses: list[str] = []

        # Probe the cheap artifacts first: the shared classifier bundle and
        # per-granule results.  They determine which heavy curated artifacts
        # this run actually needs, so a fully cached resume never
        # deserialises any raw granule data.
        bundle = self._cache_load("classifier", hits, misses)
        if not isinstance(bundle, dict) or "classifier" not in bundle:
            bundle = None
        classifier: TrainedClassifier | None = (
            bundle["classifier"] if bundle is not None else None
        )
        training_seconds: float = bundle["training_seconds"] if bundle is not None else 0.0

        results: dict[str, GranuleResult] = {}
        to_retrieve_specs: list[GranuleSpec] = []
        for spec in specs:
            cached = self._cache_load(f"{spec.granule_id}.result", hits, misses)
            if cached is not None:
                results[spec.granule_id] = cached
            else:
                to_retrieve_specs.append(spec)

        # Stage 1: curation fan-out.  Training needs every granule curated;
        # with a cached classifier, only granules without a cached result do.
        sw = Stopwatch().start()
        needed = specs if classifier is None else to_retrieve_specs
        needed_ids = {spec.granule_id for spec in needed}
        curated: dict[str, CuratedGranule] = {}
        pending: list[GranuleSpec] = []
        for spec in specs:
            key = f"{spec.granule_id}.curated"
            if spec.granule_id in needed_ids:
                cached = self._cache_load(key, hits, misses)
                if cached is not None:
                    curated[spec.granule_id] = cached
                else:
                    pending.append(spec)
            elif self.cache is not None and self.cache.has(key):
                # Present but not needed this run: count it without reading.
                hits.append(key)
        for item in self._fan_out(pending, _CurateTask()):
            curated[item.granule_id] = item
            self._cache_store(f"{item.granule_id}.curated", item)
        timing.add("curation", sw.stop())

        # Stage 2: one classifier on the pooled labelled segments
        # (driver-side).  Granules are pooled in canonical expansion order;
        # LSTM sequence windows are grouped per granule so no training
        # sequence spans two unrelated scenes.
        sw = Stopwatch().start()
        if classifier is None:
            base = self.config.base
            pooled = [curated[spec.granule_id] for spec in specs]
            pooled_segments = concatenate_segments(
                [item.segments for item in pooled], beam_name="campaign"
            )
            pooled_labels = np.concatenate([item.labels for item in pooled])
            # Compose per-beam group ids across granules: offset each
            # granule's ids so every (granule, beam) track is distinct.
            group_parts: list[np.ndarray] = []
            offset = 0
            for item in pooled:
                group_parts.append(item.groups + offset)
                offset += int(item.groups.max()) + 1 if item.groups.size else 0
            groups = np.concatenate(group_parts)
            classifier = train_classifier(
                pooled_segments,
                pooled_labels,
                kind=base.model_kind,
                lstm_config=base.lstm,
                mlp_config=base.mlp,
                training=base.training,
                epochs=base.epochs,
                rng=self.config.seed,
                groups=groups,
            )
            training_seconds = sw.stop()
            timing.add("training", training_seconds)
            self._cache_store(
                "classifier",
                {"classifier": classifier, "training_seconds": training_seconds},
            )
        else:
            # Cache hit: the measured fit time comes from the bundle so the
            # scaling report is identical to the original run's.
            timing.add("training", sw.stop())

        # Stage 3: inference / freeboard / baseline fan-out.
        sw = Stopwatch().start()
        to_retrieve = [
            (spec, curated[spec.granule_id]) for spec in to_retrieve_specs
        ]
        for item in self._fan_out(to_retrieve, _RetrieveTask(classifier)):
            results[item.granule_id] = item
            self._cache_store(f"{item.granule_id}.result", item)
        timing.add("inference", sw.stop())

        # Aggregate + simulated cluster scaling from serial-equivalent times.
        sw = Stopwatch().start()
        ordered = [results[spec.granule_id] for spec in specs]
        metrics = aggregate_metrics([result.metrics for result in ordered])
        scaling = campaign_scaling_table(
            curation_serial_s=sum(result.curation_seconds for result in ordered),
            training_s=training_seconds,
            inference_serial_s=sum(result.seconds for result in ordered),
            cost_model=self.cost_model,
            cluster=self.cluster,
        )
        timing.add("aggregation", sw.stop())

        return CampaignResult(
            fingerprint=self.fingerprint,
            granules=ordered,
            classifier=classifier,
            metrics=metrics,
            timing=timing,
            scaling=scaling,
            cache_hits=tuple(hits),
            cache_misses=tuple(misses),
        )


def run_campaign(config: CampaignConfig, **kwargs) -> CampaignResult:
    """Convenience wrapper: ``CampaignRunner(config, **kwargs).run()``."""
    return CampaignRunner(config, **kwargs).run()
