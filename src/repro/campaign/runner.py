"""Campaign orchestration: the Fig. 1 stage graph fanned out over a granule fleet.

The runner executes the same :mod:`repro.pipeline` graph that powers
:func:`repro.workflow.end_to_end.run_end_to_end`, in three stages:

1. **Curation fan-out** — every granule's curation subgraph (scene → ATL03 →
   S2 → segmentation → drift → resample → auto-label) runs independently.
   Granules are chunked over a :class:`~repro.distributed.mapreduce.MapReduceEngine`
   with the ``process`` executor (a ``ProcessPoolExecutor`` under the hood) —
   the same chunk/map/concatenate idiom as :mod:`repro.labeling.parallel` and
   :mod:`repro.freeboard.parallel`, lifted from segment level to granule level.
2. **Pooled training** — the train stage is the campaign's barrier: one
   classifier is trained on the labelled segments of *all* granules,
   concatenated in canonical expansion order.  Training stays on the driver,
   so campaign results are bit-for-bit independent of worker count and
   scheduling.
3. **Retrieval fan-out** — inference, sea-surface detection, freeboard and
   the ATL07/ATL10 baselines fan back out per granule through the same
   engine, as graph executions with the curated artifacts and the shared
   classifier injected.

Caching is two-tier.  The *result tier* (:class:`~repro.campaign.cache.CampaignCache`)
keys whole-granule artifacts by the campaign fingerprint, so an interrupted
or repeated campaign resumes from completed granules.  The *stage tier*
(:class:`~repro.pipeline.cache.StageCache`, shared across campaign
fingerprints under the same cache root) keys every stage output by its
content fingerprint — so changing only the sea-surface config re-runs just
sea-surface → freeboard → ATL07/ATL10 → metrics, never curation or
training.  Measured per-stage serial times are routed through the
:class:`~repro.distributed.cluster.ClusterCostModel` into a simulated
cluster scaling report.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.campaign.cache import CampaignCache
from repro.campaign.config import CampaignConfig, GranuleSpec
from repro.campaign.metrics import (
    CampaignMetrics,
    CampaignScalingRow,
    GranuleMetrics,
    aggregate_metrics,
    campaign_scaling_table,
)
from repro.classification.pipeline import (
    InferencePipeline,
    TrainedClassifier,
    train_classifier,
)
from repro.config import ClusterConfig, DEFAULT_CLUSTER
from repro.distributed.cluster import ClusterCostModel
from repro.distributed.mapreduce import MapReduceEngine
from repro.evaluation.report import format_table
from repro.obs.core import Obs, default_obs
from repro.pipeline.artifact import external_artifact
from repro.pipeline.cache import MISS, StageCache
from repro.pipeline.fingerprint import config_slice, digest
from repro.pipeline.runner import GraphRunner
from repro.pipeline.stages import TRAIN_CONFIG_PATHS, default_graph
from repro.resampling.window import SegmentArray, concatenate_segments
from repro.utils.timing import Stopwatch, TimingRecord
from repro.workflow.end_to_end import ExperimentData, InferenceProducts

if TYPE_CHECKING:
    from repro.l3.product import Level3Grid

#: Stage-cache name of the campaign's pooled-training barrier.  It is not a
#: graph stage (it pools *across* granules), but it caches like one: the key
#: hashes the base training config, the campaign seed and every granule's
#: ``training_set`` fingerprint, so curation-irrelevant config changes
#: (e.g. sea-surface method) reuse the trained classifier.
POOLED_TRAIN_STAGE = "train-pooled"

#: Stage-cache name of the campaign's fleet-level Level-3 mosaic.  Like the
#: pooled-training barrier it pools *across* granules, so it is cached under
#: the graph stage's name with a composite fingerprint: the l3/scene config
#: slice, every granule's ``l3_granule`` fingerprint in canonical expansion
#: order, and the kernel backend.
MOSAIC_STAGE = "mosaic_campaign"

#: Retrieval-side artifacts materialised per granule by the graph.
_RETRIEVAL_TARGETS = ("freeboard", "atl07", "atl10", "granule_metrics")


@dataclass
class CuratedGranule:
    """Stage-1 output of one granule, ready for pooled training.

    ``groups`` holds the per-beam group ids of the combined segments so
    pooled training can keep features and LSTM sequences from crossing beam
    boundaries as well as granule boundaries.
    """

    granule_id: str
    data: ExperimentData
    segments: SegmentArray
    labels: np.ndarray
    groups: np.ndarray
    seconds: float
    #: Content fingerprint of the ``training_set`` artifact (covers every
    #: curation knob plus the kernel backend).  The result tier validates
    #: cached entries against the current config's fingerprint, so a
    #: backend or config change never serves stale curated data.
    fingerprint: str = ""


@dataclass
class GranuleResult:
    """Final products and metrics of one campaign granule.

    Carries both stage times (``curation_seconds`` from stage 1,
    ``seconds`` from the retrieval stage) so a fully cached resume can
    rebuild the scaling report without deserialising the heavy per-granule
    curated artifacts.
    """

    granule_id: str
    scenario: dict[str, Any]
    seed: int
    products: InferenceProducts
    metrics: GranuleMetrics
    seconds: float
    curation_seconds: float = 0.0
    #: Content fingerprint of the ``granule_metrics`` artifact — the deepest
    #: node of the retrieval subgraph, so it chains the curation config, the
    #: pooled classifier and the kernel backend.  Used to validate
    #: result-tier cache entries (see :class:`CuratedGranule`).
    fingerprint: str = ""


@dataclass
class CampaignResult:
    """Everything a campaign produces, in canonical granule order."""

    fingerprint: str
    granules: list[GranuleResult]
    classifier: TrainedClassifier
    metrics: CampaignMetrics
    timing: TimingRecord
    scaling: list[CampaignScalingRow]
    #: Result-tier cache keys consulted this run (both empty when caching is
    #: disabled).
    cache_hits: tuple[str, ...] = ()
    cache_misses: tuple[str, ...] = ()
    #: Stage-tier (content-addressed) cache keys touched this run.  Only
    #: stages that actually executed appear; a fully resumed campaign never
    #: touches the stage tier.
    stage_hits: tuple[str, ...] = ()
    stage_misses: tuple[str, ...] = ()

    @property
    def n_granules(self) -> int:
        return len(self.granules)

    @cached_property
    def _granules_by_id(self) -> dict[str, GranuleResult]:
        return {result.granule_id: result for result in self.granules}

    def granule(self, granule_id: str) -> GranuleResult:
        try:
            return self._granules_by_id[granule_id]
        except KeyError:
            raise KeyError(f"no granule {granule_id!r} in this campaign") from None

    def summary(self) -> str:
        """Plain-text per-granule and campaign-level summary tables."""
        per_granule = format_table(
            [result.metrics.as_row() for result in self.granules],
            title=f"Campaign {self.fingerprint}: {self.n_granules} granules",
        )
        campaign = format_table([self.metrics.as_row()], title="Campaign aggregate")
        scaling = format_table(
            [row.as_dict() for row in self.scaling],
            title="Simulated cluster scaling (calibrated cost model)",
        )
        return "\n\n".join([per_granule, campaign, scaling])


@dataclass
class CampaignL3Result:
    """The campaign's Level-3 products: per-granule grids plus the mosaic.

    ``granules`` preserves canonical expansion order.  ``stage_hits`` /
    ``stage_misses`` are the stage-tier keys touched while gridding — after
    a grid-resolution-only config change, only ``grid_granule-*`` and
    ``mosaic_campaign-*`` keys appear in ``stage_misses``.
    """

    mosaic: "Level3Grid"
    granules: dict[str, "Level3Grid"]
    #: Content fingerprint of the fleet mosaic ("" when caching is disabled).
    fingerprint: str = ""
    stage_hits: tuple[str, ...] = ()
    stage_misses: tuple[str, ...] = ()
    seconds: float = 0.0

    @property
    def n_granules(self) -> int:
        return len(self.granules)

    def summary(self) -> str:
        """Plain-text coverage table of the granule grids and the mosaic."""
        from repro.evaluation.tables import l3_coverage_table

        rows = l3_coverage_table([*self.granules.values(), self.mosaic])
        return format_table(rows, title=f"Level-3 products ({self.n_granules} granules)")


def _stage_cache(root: str | None) -> StageCache | None:
    return StageCache(root) if root is not None else None


class _CurateTask:
    """Picklable map function: curate one chunk of granule specs.

    Each granule is a graph execution targeting the curated artifacts; with
    a stage cache the per-stage fingerprints make re-curation after a
    downstream-only config change a pure cache read.  Returns
    ``(curated, stage_hits, stage_misses)`` triples so the driver can
    aggregate stage-tier bookkeeping without persisting it in the artifact.
    """

    def __init__(self, stage_root: str | None) -> None:
        self.stage_root = stage_root

    def __call__(
        self, specs: Sequence[GranuleSpec]
    ) -> list[tuple[CuratedGranule, tuple[str, ...], tuple[str, ...]]]:
        runner = GraphRunner(default_graph(), cache=_stage_cache(self.stage_root))
        out: list[tuple[CuratedGranule, tuple[str, ...], tuple[str, ...]]] = []
        for spec in specs:
            result = runner.run(
                spec.config,
                targets=("experiment_data", "training_set"),
                granule_id=spec.granule_id,
                scenario=spec.scenario,
            )
            data = result.value("experiment_data")
            training_set = result.value("training_set")
            curated = CuratedGranule(
                granule_id=spec.granule_id,
                data=data,
                segments=training_set.segments,
                labels=training_set.labels,
                groups=training_set.groups,
                # Serial-equivalent time: cache-served stages contribute the
                # seconds their original computation took (carried in the
                # bundles), so warm re-curation doesn't collapse the
                # cluster scaling report to ~0.
                seconds=sum(e.seconds for e in result.executions),
                fingerprint=result.artifacts["training_set"].fingerprint,
            )
            out.append((curated, result.cache_hits, result.cache_misses))
        return out


class _RetrieveTask:
    """Picklable map function: classify + retrieve one chunk of curated granules.

    Classification is pooled across the whole chunk: every granule's beams go
    through one ``predict_batched`` pass (the LSTM steps all sequences of all
    granules together), and the measured pooled time is attributed back to
    the granules proportionally to their segment counts so the scaling report
    stays meaningful.  Per granule, the remaining retrieval stages
    (sea-surface → freeboard → ATL07/ATL10 → metrics) run as a graph
    execution with the curated artifacts, the shared classifier and the
    pooled classification injected — stage-cached granules skip even the
    pooled pass.
    """

    def __init__(
        self, classifier: TrainedClassifier, classifier_fp: str, stage_root: str | None
    ) -> None:
        self.classifier = classifier
        self.classifier_fp = classifier_fp
        self.stage_root = stage_root

    def __call__(
        self, items: Sequence[tuple[GranuleSpec, CuratedGranule]]
    ) -> list[tuple[GranuleResult, tuple[str, ...], tuple[str, ...]]]:
        cache = _stage_cache(self.stage_root)
        runner = GraphRunner(default_graph(), cache=cache)
        hits: dict[str, list[str]] = {spec.granule_id: [] for spec, _ in items}
        misses: dict[str, list[str]] = {spec.granule_id: [] for spec, _ in items}

        fps = {
            spec.granule_id: runner.fingerprints(
                spec.config,
                granule_id=spec.granule_id,
                scenario=spec.scenario,
                precomputed={"classifier": self.classifier_fp},
            )
            for spec, _ in items
        }

        # Probe the stage tier for already-classified granules, then pool the
        # rest through one batched pass.
        cached_classified: dict[str, dict] = {}
        cached_share: dict[str, float] = {}
        pooled: dict[str, SegmentArray] = {}
        for spec, curated in items:
            gid = spec.granule_id
            if cache is not None:
                bundle = cache.load_stage("infer", fps[gid]["classified"])
                if bundle is not MISS:
                    cached_classified[gid] = bundle["outputs"]["classified"]
                    cached_share[gid] = bundle["seconds"]
                    hits[gid].append(f"infer-{fps[gid]['classified']}")
                    continue
            for beam_name, segments in curated.data.segments.items():
                pooled[f"{gid}/{beam_name}"] = segments

        pool_seconds = 0.0
        classified_pool: dict[str, Any] = {}
        if pooled:
            sw_pool = Stopwatch().start()
            pipeline = InferencePipeline(self.classifier)
            classified_pool = pipeline.classify_segments_batched(pooled)
            pool_seconds = sw_pool.stop()
        total_segments = max(sum(t.n_segments for t in classified_pool.values()), 1)

        out: list[tuple[GranuleResult, tuple[str, ...], tuple[str, ...]]] = []
        for spec, curated in items:
            gid = spec.granule_id
            infer_fp = fps[gid]["classified"]
            if gid in cached_classified:
                classified = cached_classified[gid]
                share = cached_share[gid]
            else:
                classified = {
                    beam_name: classified_pool[f"{gid}/{beam_name}"]
                    for beam_name in curated.data.segments
                }
                granule_segments = sum(t.n_segments for t in classified.values())
                share = pool_seconds * granule_segments / total_segments
                if cache is not None:
                    cache.store_stage("infer", infer_fp, {"classified": classified}, share)
                    misses[gid].append(f"infer-{infer_fp}")

            precomputed = {
                "granule": external_artifact(
                    "granule", curated.data.granule, fps[gid].get("granule")
                ),
                "segments": external_artifact(
                    "segments", curated.data.segments, fps[gid].get("segments")
                ),
                "classifier": external_artifact(
                    "classifier", self.classifier, self.classifier_fp
                ),
                "classified": external_artifact("classified", classified, infer_fp),
            }
            result = runner.run(
                spec.config,
                targets=_RETRIEVAL_TARGETS,
                precomputed=precomputed,
                granule_id=gid,
                scenario=spec.scenario,
            )
            hits[gid].extend(result.cache_hits)
            misses[gid].extend(result.cache_misses)
            products = InferenceProducts(
                classified=classified,
                freeboard=result.value("freeboard"),
                atl07=result.value("atl07"),
                atl10=result.value("atl10"),
            )
            out.append(
                (
                    GranuleResult(
                        granule_id=gid,
                        scenario=spec.scenario_dict(),
                        seed=spec.config.seed,
                        products=products,
                        metrics=result.value("granule_metrics"),
                        # Serial-equivalent retrieval time: stage seconds
                        # (original compute time for cache hits) plus this
                        # granule's share of the pooled classification pass.
                        seconds=sum(e.seconds for e in result.executions) + share,
                        curation_seconds=curated.seconds,
                        fingerprint=fps[gid].get("granule_metrics", ""),
                    ),
                    tuple(hits[gid]),
                    tuple(misses[gid]),
                )
            )
        return out


def _flatten(parts: list[list]) -> list:
    return [item for part in parts for item in part]


class CampaignRunner:
    """Execute a :class:`~repro.campaign.config.CampaignConfig` end to end."""

    def __init__(
        self,
        config: CampaignConfig,
        cost_model: ClusterCostModel | None = None,
        cluster: ClusterConfig = DEFAULT_CLUSTER,
        obs: Obs | None = None,
    ) -> None:
        self.config = config
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.cluster = cluster
        self.obs = obs if obs is not None else default_obs()
        self.fingerprint = config.fingerprint()
        self.cache: CampaignCache | None = (
            CampaignCache(config.cache_dir, self.fingerprint)
            if config.cache_dir is not None
            else None
        )
        #: Root of the stage tier, shared by every campaign fingerprint
        #: under the same cache directory.
        self.stage_root: str | None = config.cache_dir
        #: Memoized fingerprint maps per kernel backend (the only non-config
        #: input they depend on), so ``run()`` + ``to_l3()`` derive them once.
        self._fingerprint_memo: dict[str, tuple] = {}

    # -- engine ----------------------------------------------------------------

    @cached_property
    def engine(self) -> MapReduceEngine:
        """The runner's one persistent fan-out engine.

        Created lazily and reused across every fleet fan-out — the process
        pool spawns once per campaign, not once per job.  Width varies per
        fan-out via the ``n_partitions`` override; single-item fan-outs run
        inline in the engine, preserving the old serial-when-single
        semantics.
        """
        executor = self.config.executor if self.config.n_workers > 1 else "serial"
        return MapReduceEngine(
            n_partitions=self.config.n_workers,
            executor=executor,
            max_workers=self.config.n_workers,
            use_shm=self.config.use_shm,
            obs=self.obs,
        )

    def close(self) -> None:
        """Release the fan-out worker pool (idempotent; respawns on reuse)."""
        if "engine" in self.__dict__:
            self.engine.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _fan_out(self, items: list, task) -> list:
        """Run ``task`` over worker-count chunks of ``items``; order-preserving."""
        if not items:
            return []
        width = max(min(self.config.n_workers, len(items)), 1)
        result = self.engine.run(lambda: items, task, _flatten, n_partitions=width)
        return list(result.value)

    # -- cache helpers ---------------------------------------------------------

    def _cache_load(self, key: str, hits: list[str], misses: list[str], valid=None):
        """Load one result-tier artifact, recording the hit/miss.

        Returns the :data:`~repro.pipeline.cache.MISS` sentinel on a miss
        (or when caching is disabled), so a legitimately cached ``None`` is
        still distinguishable.  An entry that loads but fails the ``valid``
        predicate (wrong type, malformed bundle from another code version)
        is recorded — and returned — as a miss, so the hit/miss bookkeeping
        always matches what actually recomputed.
        """
        if self.cache is None:
            return MISS
        value = self.cache.load(key, MISS)
        if value is MISS or (valid is not None and not valid(value)):
            misses.append(key)
            self.obs.log.debug("campaign.cache_miss", key=key)
            return MISS
        hits.append(key)
        self.obs.log.debug("campaign.cache_hit", key=key)
        return value

    def _cache_store(self, key: str, value) -> None:
        if self.cache is not None:
            self.cache.store(key, value)

    def _spec_fingerprints(
        self, specs: Sequence[GranuleSpec]
    ) -> dict[str, dict[str, str]] | None:
        """Per-granule curation-subgraph fingerprints, or ``None`` uncached.

        Derived purely from config (no execution), these validate
        result-tier ``.curated`` entries: an entry written under a different
        kernel backend or curation config reads as a miss.
        """
        if self.stage_root is None:
            return None
        runner = GraphRunner(default_graph())
        return {
            spec.granule_id: runner.fingerprints(
                spec.config, granule_id=spec.granule_id, scenario=spec.scenario
            )
            for spec in specs
        }

    def _retrieval_fingerprints(
        self, specs: Sequence[GranuleSpec], pooled_fp: str | None
    ) -> dict[str, dict[str, str]] | None:
        """Per-granule retrieval fingerprints with the classifier injected.

        ``granule_metrics`` is the deepest retrieval artifact, so its
        fingerprint validates result-tier ``.result`` entries end to end.
        """
        if pooled_fp is None:
            return None
        runner = GraphRunner(default_graph())
        return {
            spec.granule_id: runner.fingerprints(
                spec.config,
                granule_id=spec.granule_id,
                scenario=spec.scenario,
                precomputed={"classifier": pooled_fp},
            )
            for spec in specs
        }

    def _pooled_train_fingerprint(
        self,
        specs: Sequence[GranuleSpec],
        spec_fps: dict[str, dict[str, str]] | None,
    ) -> str | None:
        """Content fingerprint of the pooled-training barrier, or ``None``.

        Hashes the campaign-wide training slice of ``base``, the campaign
        seed (which seeds pooled training) and every granule's
        ``training_set`` fingerprint in canonical expansion order — derived
        purely from config, so it is available before any curation runs.
        """
        if spec_fps is None:
            return None
        input_fps: list[str] = []
        for spec in specs:
            fps = spec_fps[spec.granule_id]
            if "training_set" not in fps:
                return None
            input_fps.append(fps["training_set"])
        from repro import kernels

        paths = tuple(path for path in TRAIN_CONFIG_PATHS if path != "seed")
        return digest(
            {
                "stage": POOLED_TRAIN_STAGE,
                "version": "1",
                "config": config_slice(self.config.base, paths),
                "seed": self.config.seed,
                "inputs": input_fps,
                # Training runs LSTM/MLP kernels: never share classifiers
                # across kernel backends (they agree only to ~1e-10).
                "kernel_backend": kernels.get_backend(),
            }
        )

    def _fingerprint_maps(
        self, specs: Sequence[GranuleSpec]
    ) -> tuple[
        dict[str, dict[str, str]] | None, str | None, dict[str, dict[str, str]] | None
    ]:
        """Memoized ``(spec_fps, pooled_fp, retrieval_fps)`` for this config.

        The maps are pure functions of the config and the active kernel
        backend, so they are derived once per backend and shared between
        :meth:`run` and :meth:`to_l3` instead of re-walking the graph.
        """
        from repro import kernels

        key = kernels.get_backend()
        cached = self._fingerprint_memo.get(key)
        if cached is None:
            spec_fps = self._spec_fingerprints(specs)
            pooled_fp = self._pooled_train_fingerprint(specs, spec_fps)
            retrieval_fps = self._retrieval_fingerprints(specs, pooled_fp)
            cached = (spec_fps, pooled_fp, retrieval_fps)
            self._fingerprint_memo[key] = cached
        return cached

    # -- stages ----------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Run (or resume) the whole campaign and return aggregated results.

        Telemetry: the whole run executes inside a ``campaign.run`` span —
        the fan-out engine's ``mapreduce.*`` spans nest under it — with one
        ``campaign.<stage>`` child per timing stage (curation, training,
        inference, aggregation) mirroring the :class:`TimingRecord`.
        """
        with self.obs.span("campaign.run", fingerprint=self.fingerprint) as span:
            result = self._run()
            span.set(
                n_granules=result.n_granules,
                cache_hits=len(result.cache_hits),
                stage_misses=len(result.stage_misses),
            )
        self.obs.counter("campaign_runs_total").inc()
        self.obs.counter("campaign_granules_total").inc(result.n_granules)
        return result

    def _run(self) -> CampaignResult:
        specs = self.config.expand()
        timing = TimingRecord()
        hits: list[str] = []
        misses: list[str] = []
        stage_hits: list[str] = []
        stage_misses: list[str] = []

        # Content fingerprints (derived purely from config, including the
        # kernel backend) both key the shared stage tier and validate every
        # result-tier entry — an artifact produced under a different backend
        # or stage version must never be reused just because the campaign
        # fingerprint matches.
        spec_fps, pooled_fp, retrieval_fps = self._fingerprint_maps(specs)

        # Probe the cheap result-tier artifacts first: the shared classifier
        # bundle and per-granule results.  They determine which heavy curated
        # artifacts this run actually needs, so a fully cached resume never
        # deserialises any raw granule data.
        bundle = self._cache_load(
            "classifier",
            hits,
            misses,
            valid=lambda v: isinstance(v, dict)
            and "classifier" in v
            and (pooled_fp is None or v.get("fingerprint") == pooled_fp),
        )
        classifier: TrainedClassifier | None = (
            bundle["classifier"] if bundle is not MISS else None
        )
        training_seconds: float = (
            bundle.get("training_seconds", 0.0) if bundle is not MISS else 0.0
        )

        results: dict[str, GranuleResult] = {}
        to_retrieve_specs: list[GranuleSpec] = []
        for spec in specs:
            expected = (
                retrieval_fps[spec.granule_id].get("granule_metrics")
                if retrieval_fps is not None
                else None
            )
            cached = self._cache_load(
                f"{spec.granule_id}.result",
                hits,
                misses,
                valid=lambda v, want=expected: isinstance(v, GranuleResult)
                and (want is None or getattr(v, "fingerprint", "") == want),
            )
            if cached is not MISS:
                results[spec.granule_id] = cached
            else:
                to_retrieve_specs.append(spec)

        # The pooled-training barrier is content-addressed in the stage tier,
        # shared across campaign fingerprints: a campaign differing from a
        # cached one only downstream of curation (e.g. sea-surface method)
        # reuses the trained classifier without curating anything extra.
        if classifier is None and pooled_fp is not None:
            stage_cache = _stage_cache(self.stage_root)
            train_bundle = stage_cache.load_stage(POOLED_TRAIN_STAGE, pooled_fp)
            if train_bundle is not MISS:
                classifier = train_bundle["outputs"]["classifier"]
                training_seconds = train_bundle["seconds"]
                stage_hits.append(f"{POOLED_TRAIN_STAGE}-{pooled_fp}")
                # Promote into this fingerprint's result tier so later
                # resumes stay result-tier-only.
                self._cache_store(
                    "classifier",
                    {
                        "classifier": classifier,
                        "training_seconds": training_seconds,
                        "fingerprint": pooled_fp,
                    },
                )

        # Stage 1: curation fan-out.  Training needs every granule curated;
        # with a cached classifier, only granules without a cached result do.
        sw = Stopwatch().start()
        needed = specs if classifier is None else to_retrieve_specs
        needed_ids = {spec.granule_id for spec in needed}
        curated: dict[str, CuratedGranule] = {}
        pending: list[GranuleSpec] = []
        for spec in specs:
            key = f"{spec.granule_id}.curated"
            if spec.granule_id in needed_ids:
                expected = (
                    spec_fps[spec.granule_id].get("training_set")
                    if spec_fps is not None
                    else None
                )
                cached = self._cache_load(
                    key,
                    hits,
                    misses,
                    valid=lambda v, want=expected: isinstance(v, CuratedGranule)
                    and (want is None or getattr(v, "fingerprint", "") == want),
                )
                if cached is not MISS:
                    curated[spec.granule_id] = cached
                else:
                    pending.append(spec)
            elif self.cache is not None and self.cache.has(key):
                # Present but not needed this run: count it without reading.
                hits.append(key)
        for item, item_hits, item_misses in self._fan_out(
            pending, _CurateTask(self.stage_root)
        ):
            curated[item.granule_id] = item
            stage_hits.extend(item_hits)
            stage_misses.extend(item_misses)
            self._cache_store(f"{item.granule_id}.curated", item)
        curation_s = sw.stop()
        timing.add("curation", curation_s)
        self.obs.record("campaign.curation", curation_s, n_pending=len(pending))

        # Stage 2: one classifier on the pooled labelled segments
        # (driver-side).  Granules are pooled in canonical expansion order;
        # LSTM sequence windows are grouped per granule so no training
        # sequence spans two unrelated scenes.
        sw = Stopwatch().start()
        if classifier is None:
            base = self.config.base
            pooled = [curated[spec.granule_id] for spec in specs]
            pooled_segments = concatenate_segments(
                [item.segments for item in pooled], beam_name="campaign"
            )
            pooled_labels = np.concatenate([item.labels for item in pooled])
            # Compose per-beam group ids across granules: offset each
            # granule's ids so every (granule, beam) track is distinct.
            group_parts: list[np.ndarray] = []
            offset = 0
            for item in pooled:
                group_parts.append(item.groups + offset)
                offset += int(item.groups.max()) + 1 if item.groups.size else 0
            groups = np.concatenate(group_parts)
            classifier = train_classifier(
                pooled_segments,
                pooled_labels,
                kind=base.model_kind,
                lstm_config=base.lstm,
                mlp_config=base.mlp,
                training=base.training,
                epochs=base.epochs,
                rng=self.config.seed,
                groups=groups,
            )
            training_seconds = sw.stop()
            timing.add("training", training_seconds)
            self.obs.record("campaign.training", training_seconds, cached=False)
            self._cache_store(
                "classifier",
                {
                    "classifier": classifier,
                    "training_seconds": training_seconds,
                    "fingerprint": pooled_fp,
                },
            )
            if pooled_fp is not None:
                _stage_cache(self.stage_root).store_stage(
                    POOLED_TRAIN_STAGE,
                    pooled_fp,
                    {"classifier": classifier},
                    training_seconds,
                )
                stage_misses.append(f"{POOLED_TRAIN_STAGE}-{pooled_fp}")
        else:
            # Cache hit: the measured fit time comes from the bundle so the
            # scaling report is identical to the original run's.
            cached_s = sw.stop()
            timing.add("training", cached_s)
            self.obs.record("campaign.training", cached_s, cached=True)

        # Stage 3: inference / freeboard / baseline fan-out.
        sw = Stopwatch().start()
        to_retrieve = [
            (spec, curated[spec.granule_id]) for spec in to_retrieve_specs
        ]
        classifier_fp = pooled_fp if pooled_fp is not None else "external:classifier"
        for item, item_hits, item_misses in self._fan_out(
            to_retrieve, _RetrieveTask(classifier, classifier_fp, self.stage_root)
        ):
            results[item.granule_id] = item
            stage_hits.extend(item_hits)
            stage_misses.extend(item_misses)
            self._cache_store(f"{item.granule_id}.result", item)
        inference_s = sw.stop()
        timing.add("inference", inference_s)
        self.obs.record("campaign.inference", inference_s, n_retrieved=len(to_retrieve))

        # Aggregate + simulated cluster scaling from serial-equivalent times.
        sw = Stopwatch().start()
        ordered = [results[spec.granule_id] for spec in specs]
        metrics = aggregate_metrics([result.metrics for result in ordered])
        scaling = campaign_scaling_table(
            curation_serial_s=sum(result.curation_seconds for result in ordered),
            training_s=training_seconds,
            inference_serial_s=sum(result.seconds for result in ordered),
            cost_model=self.cost_model,
            cluster=self.cluster,
        )
        aggregation_s = sw.stop()
        timing.add("aggregation", aggregation_s)
        self.obs.record("campaign.aggregation", aggregation_s)

        self.obs.log.info(
            "campaign.stage_cache",
            hits=len(hits),
            misses=len(misses),
            stage_hits=len(stage_hits),
            stage_misses=len(stage_misses),
        )
        return CampaignResult(
            fingerprint=self.fingerprint,
            granules=ordered,
            classifier=classifier,
            metrics=metrics,
            timing=timing,
            scaling=scaling,
            cache_hits=tuple(hits),
            cache_misses=tuple(misses),
            stage_hits=tuple(stage_hits),
            stage_misses=tuple(stage_misses),
        )

    # -- Level-3 products ------------------------------------------------------

    def to_l3(self, result: CampaignResult | None = None) -> CampaignL3Result:
        """Grid the campaign's retrieval output and mosaic the fleet.

        Every granule runs the ``grid_granule`` stage as a graph execution
        with its classified segments and freeboards injected (at their real
        content fingerprints, so the stage tier serves unchanged granules
        from cache — a grid-resolution-only config change re-executes just
        ``grid_granule`` and ``mosaic_campaign``).  The fleet mosaic pools
        all granule grids and is cached under the :data:`MOSAIC_STAGE` key
        like the pooled-training barrier.
        """
        from repro.l3.processor import Level3Processor

        if result is None:
            result = self.run()
        sw = Stopwatch().start()
        specs = self.config.expand()
        _, _, retrieval_fps = self._fingerprint_maps(specs)
        cache = _stage_cache(self.stage_root)
        runner = GraphRunner(default_graph(), cache=cache)

        hits: list[str] = []
        misses: list[str] = []
        grids: dict[str, Any] = {}
        for spec in specs:
            gid = spec.granule_id
            products = result.granule(gid).products
            fps = retrieval_fps[gid] if retrieval_fps is not None else {}
            precomputed = {
                "classified": external_artifact(
                    "classified", products.classified, fps.get("classified")
                ),
                "freeboard": external_artifact(
                    "freeboard", products.freeboard, fps.get("freeboard")
                ),
            }
            run = runner.run(
                spec.config,
                targets=("l3_granule",),
                precomputed=precomputed,
                granule_id=gid,
                scenario=spec.scenario,
            )
            product = run.value("l3_granule")
            product.metadata["fingerprint"] = run.artifacts["l3_granule"].fingerprint
            grids[gid] = product
            hits.extend(run.cache_hits)
            misses.extend(run.cache_misses)

        # Fleet mosaic: content-addressed across campaign fingerprints, so
        # two campaigns differing only upstream-irrelevantly share it.
        mosaic_fp = None
        if retrieval_fps is not None and all(
            "l3_granule" in retrieval_fps[spec.granule_id] for spec in specs
        ):
            from repro import kernels

            mosaic_fp = digest(
                {
                    "stage": MOSAIC_STAGE,
                    "version": "1",
                    "config": config_slice(self.config.base, ("l3", "scene")),
                    "inputs": [
                        retrieval_fps[spec.granule_id]["l3_granule"] for spec in specs
                    ],
                    "kernel_backend": kernels.get_backend(),
                }
            )

        mosaic = None
        if mosaic_fp is not None and cache is not None:
            bundle = cache.load_stage(MOSAIC_STAGE, mosaic_fp)
            if bundle is not MISS:
                mosaic = bundle["outputs"]["l3_mosaic"]
                hits.append(f"{MOSAIC_STAGE}-{mosaic_fp}")
        if mosaic is None:
            processor = Level3Processor.from_config(
                self.config.base.l3, scene=self.config.base.scene
            )
            sw_mosaic = Stopwatch().start()
            mosaic = processor.mosaic([grids[spec.granule_id] for spec in specs])
            mosaic_seconds = sw_mosaic.stop()
            mosaic.metadata["fingerprint"] = mosaic_fp or ""
            if mosaic_fp is not None and cache is not None:
                cache.store_stage(
                    MOSAIC_STAGE, mosaic_fp, {"l3_mosaic": mosaic}, mosaic_seconds
                )
                misses.append(f"{MOSAIC_STAGE}-{mosaic_fp}")

        return CampaignL3Result(
            mosaic=mosaic,
            granules=grids,
            fingerprint=mosaic_fp or "",
            stage_hits=tuple(hits),
            stage_misses=tuple(misses),
            seconds=sw.stop(),
        )

    def grid_new_granule(
        self, spec: GranuleSpec, result: CampaignResult | None = None
    ) -> "Level3Grid":
        """Grid one granule that was not part of the original fleet.

        The live-ingest entry point: runs the full curation → inference →
        retrieval → gridding graph for ``spec`` with the campaign's trained
        classifier injected at its content fingerprint, so every stage is
        served from the stage cache when the granule (or any prefix of its
        pipeline) was seen before.  Returns the per-granule Level-3 product
        with its content fingerprint in metadata, ready for
        :meth:`repro.ingest.IngestService.ingest`.
        """
        if result is None:
            result = self.run()
        _, pooled_fp, _ = self._fingerprint_maps(self.config.expand())
        classifier_fp = pooled_fp if pooled_fp is not None else "external:classifier"
        runner = GraphRunner(default_graph(), cache=_stage_cache(self.stage_root))
        run = runner.run(
            spec.config,
            targets=("l3_granule",),
            precomputed={
                "classifier": external_artifact(
                    "classifier", result.classifier, classifier_fp
                )
            },
            granule_id=spec.granule_id,
            scenario=spec.scenario,
        )
        product = run.value("l3_granule")
        product.metadata["fingerprint"] = run.artifacts["l3_granule"].fingerprint
        return product

    # -- serving ---------------------------------------------------------------

    def serve(
        self,
        products_dir: str,
        result: CampaignResult | None = None,
        l3: CampaignL3Result | None = None,
        n_workers: int | None = None,
        executor: str = "thread",
        router: bool | None = None,
    ):
        """Write the campaign's Level-3 products and return a serving handle.

        Convenience end of the data path: grids the fleet (via :meth:`to_l3`
        unless ``l3`` is given), writes the mosaic and every granule grid as
        self-describing products under ``products_dir``, registers exactly
        those files into a :class:`~repro.serve.catalog.ProductCatalog`
        (stale products from earlier campaigns or foreign files in the same
        directory are never picked up — use ``ProductCatalog.scan`` to serve
        a whole archive) and returns a
        :class:`~repro.serve.handle.ServeHandle` configured from the
        campaign's ``base.serve`` slice.  Chain builder steps onto the
        handle for the rest of the stack::

            handle = runner.serve(products_dir)          # bare query engine
            handle = runner.serve(products_dir).with_router()       # + router
            handle = runner.serve(products_dir).with_router().with_ingest()

        The handle queries through the thread executor by default — serving
        is decode-bound NumPy work that releases the GIL, and the tile
        caches live on the driver.  Its ``gridder`` hook is wired to
        :meth:`grid_new_granule`, so an attached ingest service can grid
        newly arrived granule specs through the cached pipeline stages.

        ``router`` is a **deprecated** boolean shim: ``router=True`` returns
        the raw :class:`~repro.serve.router.RequestRouter` and
        ``router=False`` the raw :class:`~repro.serve.query.QueryEngine`,
        as before this parameter was replaced by the builder — both under a
        ``DeprecationWarning``.
        """
        # Local imports: repro.serve sits downstream of the campaign layer,
        # mirroring to_l3's treatment of repro.l3.
        from repro.l3.writer import write_level3
        from repro.serve.catalog import ProductCatalog
        from repro.serve.handle import ServeHandle

        if l3 is None:
            l3 = self.to_l3(result)
        out_dir = Path(products_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        catalog = ProductCatalog()
        fmt = self.config.base.serve.product_format
        _, json_path = write_level3(l3.mosaic, out_dir / "mosaic", format=fmt)
        catalog.register(json_path)
        for granule_id, product in l3.granules.items():
            _, json_path = write_level3(product, out_dir / granule_id, format=fmt)
            catalog.register(json_path)
        workers = n_workers if n_workers is not None else self.config.n_workers

        campaign_result = result

        def gridder(spec: GranuleSpec) -> "Level3Grid":
            nonlocal campaign_result
            if campaign_result is None:
                # Resolved lazily, on the first spec ingest: with a stage
                # cache this replays from disk; without one it is a real run,
                # which only ingest-by-spec should ever pay for.
                campaign_result = self.run()
            return self.grid_new_granule(spec, result=campaign_result)

        handle = ServeHandle(
            catalog,
            serve=self.config.base.serve,
            products_dir=out_dir,
            n_workers=workers,
            executor=executor,
            gridder=gridder,
            seed_l3=l3,
            obs=self.obs,
        )
        if router is not None:
            warnings.warn(
                "CampaignRunner.serve(router=...) is deprecated: serve() now "
                "returns a ServeHandle — use serve(dir).with_router(...) for "
                "the service tier, or the bare handle for a query engine",
                DeprecationWarning,
                stacklevel=2,
            )
            if router:
                return handle.with_router().router
            return handle.engine
        return handle


def run_campaign(config: CampaignConfig, **kwargs) -> CampaignResult:
    """Convenience wrapper: ``CampaignRunner(config, **kwargs).run()``."""
    with CampaignRunner(config, **kwargs) as runner:
        return runner.run()
