"""Resumable on-disk cache for campaign artifacts.

Every campaign owns a directory named after its config fingerprint
(:meth:`repro.campaign.config.CampaignConfig.fingerprint`); artifacts are
pickled one file per key (``<granule_id>.curated``, ``classifier``,
``<granule_id>.result``).  Because the fingerprint covers everything that
affects the science output, a cache hit is always safe to reuse: a changed
config hashes to a different directory, and execution knobs (worker count,
executor) are excluded from the hash so a campaign can be resumed with a
different parallelism.

The storage mechanics (atomic temp-file + ``os.replace`` writes, corrupt
entries treated as misses, :data:`MISS`-sentinel loads) live in the generic
:class:`repro.pipeline.cache.ArtifactStore`; this class specialises it with
the campaign fingerprint as the namespace.  Alongside this *result tier*,
the campaign runner shares a content-addressed *stage tier*
(:class:`repro.pipeline.cache.StageCache`) across fingerprints, so a config
change invalidates only the stages downstream of it — see
:mod:`repro.campaign.runner`.
"""

from __future__ import annotations

from pathlib import Path

from repro.pipeline.cache import MISS, ArtifactStore

#: Sentinel distinguishing "no cached entry" from a legitimately cached
#: ``None`` — shared with the pipeline layer; kept importable here for
#: callers of :meth:`CampaignCache.load`.
_MISS = MISS


class CampaignCache(ArtifactStore):
    """Pickle store for one campaign, keyed by (fingerprint, artifact key)."""

    def __init__(self, root: str | Path, fingerprint: str) -> None:
        if not fingerprint:
            raise ValueError("fingerprint must be a non-empty string")
        super().__init__(root, fingerprint)
        self.fingerprint = fingerprint
