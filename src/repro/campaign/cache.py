"""Resumable on-disk cache for campaign artifacts.

Every campaign owns a directory named after its config fingerprint
(:meth:`repro.campaign.config.CampaignConfig.fingerprint`); artifacts are
pickled one file per key (``<granule_id>.curated``, ``classifier``,
``<granule_id>.result``).  Because the fingerprint covers everything that
affects the science output, a cache hit is always safe to reuse: a changed
config hashes to a different directory, and execution knobs (worker count,
executor) are excluded from the hash so a campaign can be resumed with a
different parallelism.

Writes are atomic (temp file + ``os.replace``) so an interrupted campaign
never leaves a truncated artifact behind; unreadable entries are treated as
misses and recomputed.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

#: Pickle protocol used for cached artifacts (NumPy-heavy, so protocol 4+).
_PICKLE_PROTOCOL = 4

_MISS = object()


class CampaignCache:
    """Pickle store for one campaign, keyed by (fingerprint, artifact key)."""

    def __init__(self, root: str | Path, fingerprint: str) -> None:
        if not fingerprint:
            raise ValueError("fingerprint must be a non-empty string")
        self.root = Path(root)
        self.fingerprint = fingerprint
        self.dir = self.root / fingerprint

    def path(self, key: str) -> Path:
        """Filesystem path of one artifact."""
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"invalid cache key {key!r}")
        return self.dir / f"{key}.pkl"

    def has(self, key: str) -> bool:
        return self.path(key).is_file()

    def load(self, key: str, default=None):
        """Return the cached artifact, or ``default`` on a miss.

        A corrupt or unreadable entry (interrupted write under a pre-atomic
        layout, disk error, unpicklable future version) counts as a miss.
        """
        path = self.path(key)
        if not path.is_file():
            return default
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return default

    def store(self, key: str, value) -> Path:
        """Atomically persist one artifact and return its path."""
        path = self.path(key)
        self.dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.dir, prefix=f".{key}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> list[str]:
        """Keys of all readable-looking artifacts currently on disk."""
        if not self.dir.is_dir():
            return []
        return sorted(
            p.name[: -len(".pkl")]
            for p in self.dir.iterdir()
            if p.suffix == ".pkl" and not p.name.startswith(".")
        )

    def clear(self) -> int:
        """Delete every artifact of this campaign; returns the number removed."""
        removed = 0
        if not self.dir.is_dir():
            return removed
        for p in list(self.dir.iterdir()):
            if p.suffix in (".pkl", ".tmp") or p.name.startswith("."):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
