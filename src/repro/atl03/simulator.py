"""Photon-counting lidar simulator producing ATL03-like beams.

Model
-----
ATLAS fires 10 kHz laser pulses; on the ground consecutive footprints are
~0.7 m apart.  For every shot the simulator:

1. queries the ground-truth :class:`~repro.surface.IceScene` for the surface
   height at the footprint centre,
2. draws a Poisson number of *signal* photons whose mean depends on the
   surface type (snow-covered thick ice is a strong diffuse reflector; open
   water is dark at 532 nm except for occasional specular glints; thin ice is
   intermediate),
3. places those photons at the surface height plus Gaussian ranging noise and
   a small surface-roughness term,
4. draws *background* photons from a Poisson process uniform over the
   telemetry height window, with a rate driven by the solar background field,
5. assigns each photon an ATL03-style signal-confidence value from the local
   photon density (see :mod:`repro.atl03.confidence`).

The per-class return rates follow the qualitative behaviour reported for
ICESat-2 sea-ice scenes (Kwok et al. 2019): a few signal photons per shot for
ice surfaces in strong beams, an order of magnitude fewer for open water.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone

import numpy as np

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE, N_STRONG_BEAMS
from repro.atl03.background import background_rate_per_shot
from repro.atl03.confidence import classify_confidence
from repro.atl03.granule import BeamData, Granule
from repro.geodesy.projection import PolarStereographic, antarctic_polar_stereographic
from repro.surface.scene import IceScene
from repro.surface.track import TrackSpec, generate_track
from repro.utils.random import default_rng, derive_rng


@dataclass(frozen=True)
class ATL03SimulatorConfig:
    """Tunable parameters of the photon simulator."""

    shot_spacing_m: float = 0.7
    ranging_noise_m: float = 0.10
    telemetry_window_m: float = 30.0
    signal_rate_thick_ice: float = 4.0
    signal_rate_thin_ice: float = 2.2
    signal_rate_open_water: float = 0.45
    specular_glint_probability: float = 0.02
    specular_glint_rate: float = 8.0
    background_rate_day_hz: float = 3.0e6
    background_rate_night_hz: float = 0.2e6
    solar_elevation_deg: float = 15.0
    ground_speed_m_s: float = 7000.0
    beam_offset_across_m: float = 3300.0

    def __post_init__(self) -> None:
        if self.shot_spacing_m <= 0:
            raise ValueError("shot_spacing_m must be positive")
        if self.telemetry_window_m <= 0:
            raise ValueError("telemetry_window_m must be positive")
        if self.ranging_noise_m < 0:
            raise ValueError("ranging_noise_m must be non-negative")
        for name in ("signal_rate_thick_ice", "signal_rate_thin_ice", "signal_rate_open_water"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def signal_rate_for_class(self, surface_class: np.ndarray) -> np.ndarray:
        """Mean signal photons per shot for each surface class."""
        rates = np.empty(np.asarray(surface_class).shape, dtype=float)
        cls = np.asarray(surface_class)
        rates[cls == CLASS_THICK_ICE] = self.signal_rate_thick_ice
        rates[cls == CLASS_THIN_ICE] = self.signal_rate_thin_ice
        rates[cls == CLASS_OPEN_WATER] = self.signal_rate_open_water
        return rates


def simulate_beam(
    scene: IceScene,
    track: TrackSpec,
    config: ATL03SimulatorConfig | None = None,
    rng: np.random.Generator | int | None = None,
    projection: PolarStereographic | None = None,
    start_time_s: float = 0.0,
) -> BeamData:
    """Simulate the photon cloud of one strong beam along ``track``.

    Returns a :class:`BeamData` whose photons are sorted by along-track
    distance, with ground-truth class and signal flags attached for
    evaluation.
    """
    cfg = config if config is not None else ATL03SimulatorConfig()
    rng = default_rng(rng)
    proj = projection if projection is not None else antarctic_polar_stereographic()

    # Laser shot geometry -----------------------------------------------------
    shot_s = np.arange(0.0, track.length_m, cfg.shot_spacing_m)
    n_shots = shot_s.shape[0]
    if n_shots == 0:
        raise ValueError("track too short for a single laser shot")
    shot_x, shot_y = track.points(shot_s)
    shot_class = scene.classify(shot_x, shot_y)
    shot_surface = scene.surface_height(shot_x, shot_y)
    shot_time = start_time_s + shot_s / cfg.ground_speed_m_s

    # Signal photons -----------------------------------------------------------
    rate = cfg.signal_rate_for_class(shot_class)
    # Occasional specular glints over open water give strong, flat returns.
    water = shot_class == CLASS_OPEN_WATER
    if cfg.specular_glint_probability > 0 and water.any():
        glint = water & (rng.random(n_shots) < cfg.specular_glint_probability)
        rate = np.where(glint, cfg.specular_glint_rate, rate)
    n_signal = rng.poisson(rate)

    signal_shot_idx = np.repeat(np.arange(n_shots), n_signal)
    n_signal_total = signal_shot_idx.shape[0]
    roughness = np.where(shot_class == CLASS_THICK_ICE, 0.05, 0.02)[signal_shot_idx]
    signal_height = (
        shot_surface[signal_shot_idx]
        + rng.normal(0.0, cfg.ranging_noise_m, n_signal_total)
        + rng.normal(0.0, 1.0, n_signal_total) * roughness
    )

    # Background photons --------------------------------------------------------
    bg_rate_hz = background_rate_per_shot(
        shot_time,
        solar_elevation_deg=cfg.solar_elevation_deg,
        day_rate_hz=cfg.background_rate_day_hz,
        night_rate_hz=cfg.background_rate_night_hz,
        rng=derive_rng(rng, 1),
    )
    # Expected background photons per shot inside the telemetry window:
    # rate [Hz] * window height [m] * 2/c  (two-way travel time per metre).
    two_way_s_per_m = 2.0 / 299_792_458.0
    bg_mean = bg_rate_hz * cfg.telemetry_window_m * two_way_s_per_m
    n_background = rng.poisson(bg_mean)
    bg_shot_idx = np.repeat(np.arange(n_shots), n_background)
    n_bg_total = bg_shot_idx.shape[0]
    bg_height = shot_surface[bg_shot_idx] + rng.uniform(
        -cfg.telemetry_window_m / 2.0, cfg.telemetry_window_m / 2.0, n_bg_total
    )

    # Combine and sort -----------------------------------------------------------
    shot_idx = np.concatenate([signal_shot_idx, bg_shot_idx])
    height = np.concatenate([signal_height, bg_height])
    is_signal = np.concatenate(
        [np.ones(n_signal_total, dtype=bool), np.zeros(n_bg_total, dtype=bool)]
    )
    order = np.argsort(shot_idx, kind="stable")
    shot_idx = shot_idx[order]
    height = height[order]
    is_signal = is_signal[order]

    along = shot_s[shot_idx]
    x = shot_x[shot_idx]
    y = shot_y[shot_idx]
    time = shot_time[shot_idx]
    lat, lon = proj.inverse(x, y)
    truth_class = shot_class[shot_idx].astype(np.int8)
    bg_rate_per_photon = bg_rate_hz[shot_idx]

    # ATL03-style signal confidence from local photon density.
    conf = classify_confidence(along, height)

    return BeamData(
        name=track.name,
        along_track_m=along,
        height_m=height,
        lat_deg=lat,
        lon_deg=lon,
        x_m=x,
        y_m=y,
        delta_time_s=time,
        signal_conf=conf,
        is_signal=is_signal,
        background_rate_hz=bg_rate_per_photon,
        truth_class=truth_class,
    )


def simulate_granule(
    scene: IceScene,
    granule_id: str = "ATL03_20191104195311_05940510",
    acquisition_time: datetime | None = None,
    n_beams: int = N_STRONG_BEAMS,
    track_length_m: float | None = None,
    config: ATL03SimulatorConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> Granule:
    """Simulate a granule containing ``n_beams`` parallel strong beams.

    Beams are offset across-track by ``config.beam_offset_across_m`` (the
    ~3.3 km strong-beam pair spacing of ATLAS), each with its own photon
    stream derived deterministically from the caller's seed.
    """
    if n_beams < 1:
        raise ValueError("n_beams must be >= 1")
    cfg = config if config is not None else ATL03SimulatorConfig()
    rng = default_rng(rng)
    if acquisition_time is None:
        acquisition_time = datetime(2019, 11, 4, 19, 53, 11, tzinfo=timezone.utc)

    base_track = generate_track(scene, length_m=track_length_m, rng=derive_rng(rng, 0))
    dx, dy = base_track.direction
    # Across-track unit vector (perpendicular to the direction of flight).
    across = (-dy, dx)

    beams: dict[str, BeamData] = {}
    beam_names = [f"gt{i + 1}r" for i in range(n_beams)]
    for i, name in enumerate(beam_names):
        offset = (i - (n_beams - 1) / 2.0) * cfg.beam_offset_across_m
        start_x = base_track.start_x_m + offset * across[0]
        start_y = base_track.start_y_m + offset * across[1]
        track = TrackSpec(start_x, start_y, base_track.azimuth_deg, base_track.length_m, name=name)
        # Clip the across-track offset if it pushes the beam outside the scene.
        end_x, end_y = track.points(np.array([track.length_m]))
        if not (scene.contains(np.array([start_x]), np.array([start_y]))[0] and scene.contains(end_x, end_y)[0]):
            track = TrackSpec(
                base_track.start_x_m, base_track.start_y_m, base_track.azimuth_deg,
                base_track.length_m, name=name,
            )
        beams[name] = simulate_beam(
            scene, track, config=cfg, rng=derive_rng(rng, 100 + i)
        )
    return Granule(granule_id=granule_id, acquisition_time=acquisition_time, beams=beams)
