"""In-memory containers for ATL03-like photon data.

The design follows a struct-of-arrays layout: every per-photon attribute is a
flat, contiguous NumPy array on a :class:`BeamData`.  A :class:`Granule`
groups the beams of one pass (the study uses the three strong beams) together
with acquisition metadata.  All downstream stages (resampling, labeling,
classification, freeboard) operate on these arrays, never on per-photon
Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone

import numpy as np

from repro.utils.validation import ensure_1d, ensure_same_length


#: Per-photon attribute names stored on a beam, in canonical order.
PHOTON_FIELDS = (
    "along_track_m",
    "height_m",
    "lat_deg",
    "lon_deg",
    "x_m",
    "y_m",
    "delta_time_s",
    "signal_conf",
    "is_signal",
    "background_rate_hz",
)


@dataclass
class BeamData:
    """Photon records of one beam.

    Attributes
    ----------
    name:
        Beam identifier, e.g. ``"gt1r"``, ``"gt2r"``, ``"gt3r"``.
    along_track_m:
        Along-track distance of each photon from the start of the track, m.
    height_m:
        Photon height relative to the (corrected) reference surface, m.
    lat_deg, lon_deg:
        Geodetic coordinates of each photon.
    x_m, y_m:
        Antarctic polar stereographic coordinates of each photon.
    delta_time_s:
        Time of each photon relative to the granule start, s.
    signal_conf:
        ATL03-style signal confidence, 0 (noise) .. 4 (high confidence).
    is_signal:
        Ground-truth flag from the simulator: True for surface returns.
    background_rate_hz:
        Estimated background photon rate at each photon's shot.
    truth_class:
        Ground-truth surface class per photon (simulator only; -1 when
        unknown).  Real granules do not carry this; it is used solely by
        tests and evaluation.
    """

    name: str
    along_track_m: np.ndarray
    height_m: np.ndarray
    lat_deg: np.ndarray
    lon_deg: np.ndarray
    x_m: np.ndarray
    y_m: np.ndarray
    delta_time_s: np.ndarray
    signal_conf: np.ndarray
    is_signal: np.ndarray
    background_rate_hz: np.ndarray
    truth_class: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        arrays = [
            self.along_track_m,
            self.height_m,
            self.lat_deg,
            self.lon_deg,
            self.x_m,
            self.y_m,
            self.delta_time_s,
            self.signal_conf,
            self.is_signal,
            self.background_rate_hz,
        ]
        arrays = [ensure_1d(a, name) for a, name in zip(arrays, PHOTON_FIELDS)]
        ensure_same_length(*arrays, names=PHOTON_FIELDS)
        (
            self.along_track_m,
            self.height_m,
            self.lat_deg,
            self.lon_deg,
            self.x_m,
            self.y_m,
            self.delta_time_s,
            self.signal_conf,
            self.is_signal,
            self.background_rate_hz,
        ) = (
            np.ascontiguousarray(arrays[0], dtype=np.float64),
            np.ascontiguousarray(arrays[1], dtype=np.float64),
            np.ascontiguousarray(arrays[2], dtype=np.float64),
            np.ascontiguousarray(arrays[3], dtype=np.float64),
            np.ascontiguousarray(arrays[4], dtype=np.float64),
            np.ascontiguousarray(arrays[5], dtype=np.float64),
            np.ascontiguousarray(arrays[6], dtype=np.float64),
            np.ascontiguousarray(arrays[7], dtype=np.int8),
            np.ascontiguousarray(arrays[8], dtype=bool),
            np.ascontiguousarray(arrays[9], dtype=np.float64),
        )
        if self.truth_class is None:
            self.truth_class = np.full(self.n_photons, -1, dtype=np.int8)
        else:
            self.truth_class = np.ascontiguousarray(ensure_1d(self.truth_class, "truth_class"), dtype=np.int8)
            if self.truth_class.shape[0] != self.n_photons:
                raise ValueError("truth_class must have one entry per photon")
        if not np.all(np.diff(self.along_track_m) >= 0):
            raise ValueError("photons must be sorted by along-track distance")

    @property
    def n_photons(self) -> int:
        return int(self.along_track_m.shape[0])

    @property
    def length_m(self) -> float:
        """Along-track extent covered by the beam's photons."""
        if self.n_photons == 0:
            return 0.0
        return float(self.along_track_m[-1] - self.along_track_m[0])

    def select(self, mask: np.ndarray) -> "BeamData":
        """Return a new beam containing only the photons where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self.n_photons,):
            raise ValueError("mask must be a boolean array with one entry per photon")
        return BeamData(
            name=self.name,
            along_track_m=self.along_track_m[mask],
            height_m=self.height_m[mask],
            lat_deg=self.lat_deg[mask],
            lon_deg=self.lon_deg[mask],
            x_m=self.x_m[mask],
            y_m=self.y_m[mask],
            delta_time_s=self.delta_time_s[mask],
            signal_conf=self.signal_conf[mask],
            is_signal=self.is_signal[mask],
            background_rate_hz=self.background_rate_hz[mask],
            truth_class=self.truth_class[mask],
        )

    def slice_along_track(self, start_m: float, stop_m: float) -> "BeamData":
        """Photons whose along-track distance lies in ``[start_m, stop_m)``.

        Uses ``searchsorted`` on the sorted along-track array so the slice is
        a view-backed O(log n) operation, not a full-array mask.
        """
        if stop_m < start_m:
            raise ValueError("stop_m must be >= start_m")
        lo = int(np.searchsorted(self.along_track_m, start_m, side="left"))
        hi = int(np.searchsorted(self.along_track_m, stop_m, side="left"))
        idx = np.zeros(self.n_photons, dtype=bool)
        idx[lo:hi] = True
        return self.select(idx)

    def signal_only(self, min_confidence: int = 3) -> "BeamData":
        """Photons whose ATL03 signal confidence is at least ``min_confidence``."""
        return self.select(self.signal_conf >= min_confidence)

    def as_dict(self) -> dict[str, np.ndarray]:
        """Flat dictionary of the photon arrays (used by the I/O layer)."""
        out = {name: getattr(self, name) for name in PHOTON_FIELDS}
        out["truth_class"] = self.truth_class
        return out


@dataclass
class Granule:
    """One simulated ATL03 granule: several beams plus acquisition metadata."""

    granule_id: str
    acquisition_time: datetime
    beams: dict[str, BeamData]
    release: str = "006"
    region: str = "ross_sea"

    def __post_init__(self) -> None:
        if not self.beams:
            raise ValueError("a granule must contain at least one beam")
        if self.acquisition_time.tzinfo is None:
            self.acquisition_time = self.acquisition_time.replace(tzinfo=timezone.utc)
        for key, beam in self.beams.items():
            if key != beam.name:
                raise ValueError(f"beam dict key {key!r} does not match beam name {beam.name!r}")

    @property
    def beam_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.beams))

    @property
    def n_photons(self) -> int:
        return int(sum(beam.n_photons for beam in self.beams.values()))

    def beam(self, name: str) -> BeamData:
        try:
            return self.beams[name]
        except KeyError:
            raise KeyError(
                f"granule {self.granule_id} has no beam {name!r}; available: {self.beam_names}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Granule({self.granule_id!r}, beams={list(self.beam_names)}, "
            f"n_photons={self.n_photons})"
        )
