"""ATL03-style signal-confidence classification.

The operational ATL03 algorithm assigns each photon a confidence level
(0 = likely noise .. 4 = high-confidence signal) using histogram-based
surface finding: photons concentrated in a narrow height band around the
dominant return are signal, isolated photons spread over the telemetry window
are background.  This module implements a vectorised equivalent: for each
along-track bin the modal height is located with a coarse histogram and
photons are graded by their distance from that mode.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import confidence as _kernels
from repro.utils.validation import ensure_1d, ensure_same_length

#: Confidence grades used by the pipeline (subset of ATL03's 0..4 scale).
SIGNAL_CONF_NOISE = 0
SIGNAL_CONF_LOW = 2
SIGNAL_CONF_MEDIUM = 3
SIGNAL_CONF_HIGH = 4


def _modal_height_per_bin(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    bin_edges: np.ndarray,
    height_resolution_m: float,
) -> np.ndarray:
    """Modal photon height for each along-track bin.

    Heights are histogrammed at ``height_resolution_m`` inside each bin and
    the centre of the most populated height cell (the first such cell on
    ties) is returned.  Degenerate bins are handled explicitly, in this
    order:

    * photons with non-finite heights are excluded from surface finding, so
      a NaN photon can never poison a bin's histogram range;
    * bins with no (finite) photons get NaN;
    * a bin with a single photon returns that photon's height directly and
      never reaches ``np.histogram`` (whose range would be zero-width);
    * a bin whose total height span is below ``height_resolution_m`` returns
      the median height — histogramming below the resolution cannot separate
      a mode.

    The heavy lifting is delegated to :mod:`repro.kernels.confidence`: one
    ``np.bincount`` over composite ``(bin, height-cell)`` keys under the
    default vectorized backend, or the original per-bin ``np.histogram``
    loop under the reference backend.
    """
    return _kernels.modal_height_per_bin(
        along_track_m, height_m, bin_edges, height_resolution_m
    )


def classify_confidence(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    surface_window_m: float = 0.5,
    bin_length_m: float = 20.0,
    height_resolution_m: float = 0.25,
) -> np.ndarray:
    """Assign an ATL03-like signal confidence to every photon.

    Parameters
    ----------
    along_track_m, height_m:
        Photon coordinates (must be the same length; along-track need not be
        sorted).
    surface_window_m:
        Photons within this distance of the local modal height are graded
        high confidence; within twice the distance, medium; within four
        times, low; otherwise noise.
    bin_length_m:
        Along-track extent of the histogramming bins.
    height_resolution_m:
        Vertical resolution of the surface-finding histogram.

    Returns
    -------
    numpy.ndarray
        ``int8`` array of confidence values (0, 2, 3 or 4).
    """
    along = ensure_1d(np.asarray(along_track_m, dtype=float), "along_track_m")
    height = ensure_1d(np.asarray(height_m, dtype=float), "height_m")
    ensure_same_length(along, height, names=("along_track_m", "height_m"))
    if surface_window_m <= 0 or bin_length_m <= 0 or height_resolution_m <= 0:
        raise ValueError("window, bin length and height resolution must be positive")
    if along.size == 0:
        return np.empty(0, dtype=np.int8)

    start = float(along.min())
    stop = float(along.max())
    n_bins = max(int(np.ceil((stop - start) / bin_length_m)), 1)
    bin_edges = start + np.arange(n_bins + 1) * bin_length_m

    modal = _modal_height_per_bin(along, height, bin_edges, height_resolution_m)
    bin_idx = np.clip(
        np.searchsorted(bin_edges, along, side="right") - 1, 0, n_bins - 1
    )
    local_mode = modal[bin_idx]
    # Bins that somehow have no modal height fall back to the global median
    # of the finite heights (photons with non-finite heights are excluded
    # from surface finding and always grade as noise).
    finite = np.isfinite(height)
    global_median = np.median(height[finite]) if finite.any() else np.nan
    local_mode = np.where(np.isnan(local_mode), global_median, local_mode)

    dist = np.abs(height - local_mode)
    conf = np.full(along.shape, SIGNAL_CONF_NOISE, dtype=np.int8)
    conf[dist <= 4.0 * surface_window_m] = SIGNAL_CONF_LOW
    conf[dist <= 2.0 * surface_window_m] = SIGNAL_CONF_MEDIUM
    conf[dist <= surface_window_m] = SIGNAL_CONF_HIGH
    return conf
