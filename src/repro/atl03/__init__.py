"""ATL03 substrate: photon-level data containers, simulator and I/O.

The real ATL03 product is an HDF5 granule of geolocated photons per beam.
This package provides an equivalent in-memory representation
(:class:`~repro.atl03.granule.BeamData`, :class:`~repro.atl03.granule.Granule`),
a physically-motivated photon simulator that produces those records from a
ground-truth :class:`~repro.surface.IceScene`, signal-confidence and
background-rate computation, and a compressed on-disk format so granules can
be written and reloaded by the parallel workflows.
"""

from repro.atl03.granule import BeamData, Granule
from repro.atl03.simulator import ATL03SimulatorConfig, simulate_beam, simulate_granule
from repro.atl03.confidence import SIGNAL_CONF_HIGH, SIGNAL_CONF_LOW, SIGNAL_CONF_MEDIUM, classify_confidence
from repro.atl03.background import background_rate_per_shot, estimate_background_factor
from repro.atl03.io import load_granule, save_granule

__all__ = [
    "BeamData",
    "Granule",
    "ATL03SimulatorConfig",
    "simulate_beam",
    "simulate_granule",
    "SIGNAL_CONF_HIGH",
    "SIGNAL_CONF_MEDIUM",
    "SIGNAL_CONF_LOW",
    "classify_confidence",
    "background_rate_per_shot",
    "estimate_background_factor",
    "load_granule",
    "save_granule",
]
