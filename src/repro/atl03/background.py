"""Background (solar) photon-rate modelling and estimation.

ATL03 reports, per shot, the background count rate inferred from photons far
from the surface.  The paper uses the background rate and its along-track
rate of change as classification features, so the simulator must generate a
plausible rate field and the preprocessing must be able to estimate it back
from the photon cloud.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import default_rng
from repro.utils.validation import ensure_1d, ensure_same_length


def background_rate_per_shot(
    shot_time_s: np.ndarray,
    solar_elevation_deg: float = 15.0,
    day_rate_hz: float = 3.0e6,
    night_rate_hz: float = 0.2e6,
    fluctuation: float = 0.15,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Synthetic background photon rate for each laser shot, in Hz.

    The rate scales with the sine of the solar elevation (fully dark below
    the horizon) and carries a slowly varying multiplicative fluctuation that
    mimics changing surface albedo and cloud cover along the track.
    """
    t = ensure_1d(np.asarray(shot_time_s, dtype=float), "shot_time_s")
    if day_rate_hz < 0 or night_rate_hz < 0:
        raise ValueError("background rates must be non-negative")
    if not 0 <= fluctuation < 1:
        raise ValueError("fluctuation must be in [0, 1)")
    rng = default_rng(rng)

    solar_factor = max(np.sin(np.radians(solar_elevation_deg)), 0.0)
    base = night_rate_hz + (day_rate_hz - night_rate_hz) * solar_factor
    if t.size == 0:
        return np.empty(0)
    # Slow sinusoidal drift plus a small random walk, both vectorised.
    duration = max(t[-1] - t[0], 1e-9)
    drift = 1.0 + fluctuation * np.sin(2.0 * np.pi * (t - t[0]) / duration * 2.0 + rng.uniform(0, 2 * np.pi))
    noise = 1.0 + fluctuation * 0.2 * rng.standard_normal(t.shape)
    return np.clip(base * drift * noise, 0.0, None)


def estimate_background_factor(
    along_track_m: np.ndarray,
    height_m: np.ndarray,
    signal_conf: np.ndarray,
    telemetry_window_m: float = 30.0,
    bin_length_m: float = 200.0,
    ground_speed_m_s: float = 7000.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Estimate the background photon rate from low-confidence photons.

    For each along-track bin, the photons graded as noise/low confidence are
    counted and converted to an equivalent rate in Hz using the telemetry
    window height and the time spent crossing the bin.

    Returns
    -------
    (bin_centres_m, rate_hz):
        Bin centres along the track and the estimated rate per bin.
    """
    along = ensure_1d(np.asarray(along_track_m, dtype=float), "along_track_m")
    height = ensure_1d(np.asarray(height_m, dtype=float), "height_m")
    conf = ensure_1d(np.asarray(signal_conf), "signal_conf")
    ensure_same_length(along, height, conf, names=("along_track_m", "height_m", "signal_conf"))
    if telemetry_window_m <= 0 or bin_length_m <= 0 or ground_speed_m_s <= 0:
        raise ValueError("telemetry window, bin length and ground speed must be positive")
    if along.size == 0:
        return np.empty(0), np.empty(0)

    start, stop = float(along.min()), float(along.max())
    n_bins = max(int(np.ceil((stop - start) / bin_length_m)), 1)
    edges = start + np.arange(n_bins + 1) * bin_length_m
    centres = 0.5 * (edges[:-1] + edges[1:])

    noise_mask = conf <= 2
    bin_idx = np.clip(np.searchsorted(edges, along[noise_mask], side="right") - 1, 0, n_bins - 1)
    counts = np.bincount(bin_idx, minlength=n_bins).astype(float)

    # Noise photons per bin -> rate: photons / (time of flight over the
    # window * number of shots in the bin).  Expressed directly:
    #   rate = counts / (bin_crossing_time * window_fraction)
    two_way_s_per_m = 2.0 / 299_792_458.0
    shots_per_bin = bin_length_m / 0.7
    exposure_s = shots_per_bin * telemetry_window_m * two_way_s_per_m
    rate = np.divide(counts, exposure_s, out=np.zeros_like(counts), where=exposure_s > 0)
    return centres, rate
