"""Granule persistence.

Real ATL03 granules are HDF5; h5py is not available offline, so granules are
stored as compressed ``.npz`` archives with the same logical layout
(`<beam>/<field>` datasets plus a small JSON metadata blob).  The format is
self-describing and versioned so the parallel loaders can stream granules
from disk exactly the way the paper's PySpark jobs read HDF5 from GCS.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path

import numpy as np

from repro.atl03.granule import PHOTON_FIELDS, BeamData, Granule

#: On-disk format version; bumped if the layout changes.
FORMAT_VERSION = 1


def save_granule(granule: Granule, path: str | Path) -> Path:
    """Write a granule to ``path`` (``.npz`` appended if missing).

    Returns the final path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays: dict[str, np.ndarray] = {}
    for name, beam in granule.beams.items():
        for field, values in beam.as_dict().items():
            arrays[f"{name}/{field}"] = values
    meta = {
        "format_version": FORMAT_VERSION,
        "granule_id": granule.granule_id,
        "acquisition_time": granule.acquisition_time.isoformat(),
        "release": granule.release,
        "region": granule.region,
        "beams": list(granule.beam_names),
    }
    arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_granule(path: str | Path) -> Granule:
    """Load a granule previously written by :func:`save_granule`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"granule file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        if "__meta__" not in data:
            raise ValueError(f"{path} is not a granule archive (missing metadata)")
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported granule format version {version!r} (expected {FORMAT_VERSION})"
            )
        beams: dict[str, BeamData] = {}
        for name in meta["beams"]:
            kwargs = {field: data[f"{name}/{field}"] for field in PHOTON_FIELDS}
            kwargs["truth_class"] = data[f"{name}/truth_class"]
            beams[name] = BeamData(name=name, **kwargs)
    return Granule(
        granule_id=meta["granule_id"],
        acquisition_time=datetime.fromisoformat(meta["acquisition_time"]),
        beams=beams,
        release=meta.get("release", "006"),
        region=meta.get("region", "ross_sea"),
    )
