"""Training and inference pipelines for the sea-ice classifiers (paper Fig. 3).

:func:`train_classifier` turns labelled 2 m segments into a trained
:class:`TrainedClassifier` (LSTM or MLP, with the feature normalisation
statistics captured so inference uses the same scaling).
:class:`InferencePipeline` runs the paper's Fig. 3 workflow on a raw beam:
preprocess → 2 m resample → feature extraction → (sequence construction for
the LSTM) → per-segment class prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atl03.granule import BeamData, Granule
from repro.config import (
    DEFAULT_LSTM,
    DEFAULT_MLP,
    DEFAULT_TRAINING,
    LSTMConfig,
    MLPConfig,
    N_CLASSES,
    RESAMPLE_WINDOW_M,
    TrainingConfig,
)
from repro.ml.dataset import Dataset, train_test_split
from repro.ml.losses import class_balanced_alpha
from repro.ml.metrics import ClassificationReport, classification_report
from repro.ml.model import Sequential, TrainingHistory
from repro.ml.models import build_lstm_classifier, build_mlp_classifier
from repro.resampling.features import (
    feature_matrix,
    grouped_sequence_windows,
    sequence_windows,
)
from repro.resampling.window import SegmentArray, resample_fixed_window
from repro.utils.random import default_rng


@dataclass
class TrainedClassifier:
    """A trained model plus everything needed to reuse it at inference time."""

    model: Sequential
    kind: str
    feature_stats: tuple[np.ndarray, np.ndarray]
    history: TrainingHistory
    report: ClassificationReport
    sequence_length: int = 1

    @property
    def accuracy(self) -> float:
        return self.report.accuracy


def _prepare_features(
    segments: SegmentArray,
    labels: np.ndarray,
    kind: str,
    sequence_length: int,
    stats: tuple[np.ndarray, np.ndarray] | None = None,
    groups: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Feature matrix (or sequence tensor) and filtered labels for training."""
    X, used_stats = feature_matrix(segments, normalize=True, stats=stats, groups=groups)
    if kind == "lstm":
        X = grouped_sequence_windows(X, sequence_length, groups)
    valid = labels >= 0
    return X[valid], labels[valid], used_stats


def train_classifier(
    segments: SegmentArray,
    labels: np.ndarray,
    kind: str = "lstm",
    lstm_config: LSTMConfig = DEFAULT_LSTM,
    mlp_config: MLPConfig = DEFAULT_MLP,
    training: TrainingConfig = DEFAULT_TRAINING,
    epochs: int | None = None,
    rng: np.random.Generator | int | None = None,
    groups: np.ndarray | None = None,
) -> TrainedClassifier:
    """Train the LSTM or MLP classifier on labelled 2 m segments.

    Parameters
    ----------
    segments:
        Resampled 2 m segments of one or more beams (concatenated).
    labels:
        Per-segment class labels; ``-1`` marks unlabeled segments, which are
        excluded from training and evaluation.
    kind:
        ``"lstm"`` or ``"mlp"``.
    epochs:
        Override of ``training.epochs`` (useful for quick tests).
    groups:
        Optional per-segment group ids marking contiguous independent tracks
        (e.g. the granules of a pooled campaign training set).  Along-track
        change features and LSTM sequences are computed within groups, so
        neither spans a boundary between unrelated tracks.

    Returns
    -------
    TrainedClassifier
        The fitted model with its held-out evaluation report (80/20 split as
        in the paper).
    """
    if kind not in ("lstm", "mlp"):
        raise ValueError("kind must be 'lstm' or 'mlp'")
    labels = np.asarray(labels)
    if labels.shape[0] != segments.n_segments:
        raise ValueError("labels must have one entry per segment")
    rng = default_rng(rng if rng is not None else training.seed)

    seq_len = lstm_config.sequence_length if kind == "lstm" else 1
    X, y, stats = _prepare_features(segments, labels, kind, seq_len, groups=groups)
    if X.shape[0] < 10:
        raise ValueError("not enough labelled segments to train a classifier")

    X_train, y_train, X_test, y_test = train_test_split(
        X, y, test_fraction=training.validation_fraction, stratify=True, rng=rng
    )
    alpha = class_balanced_alpha(y_train, N_CLASSES)

    if kind == "lstm":
        model = build_lstm_classifier(lstm_config, training, class_weights=alpha, rng=rng)
    else:
        model = build_mlp_classifier(mlp_config, training, class_weights=alpha, rng=rng)

    history = model.fit(
        Dataset(X_train, y_train),
        epochs=epochs if epochs is not None else training.epochs,
        batch_size=training.batch_size,
        validation=Dataset(X_test, y_test),
        rng=rng,
    )
    y_pred = model.predict(X_test)
    report = classification_report(y_test.astype(int), y_pred, n_classes=N_CLASSES)
    return TrainedClassifier(
        model=model,
        kind=kind,
        feature_stats=stats,
        history=history,
        report=report,
        sequence_length=seq_len,
    )


@dataclass
class ClassifiedTrack:
    """Per-segment classification of one beam (the pipeline output)."""

    segments: SegmentArray
    labels: np.ndarray
    probabilities: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.labels.shape[0])

    def class_fractions(self) -> dict[int, float]:
        values, counts = np.unique(self.labels, return_counts=True)
        total = float(self.labels.size)
        return {int(v): float(c) / total for v, c in zip(values, counts)}


class InferencePipeline:
    """The paper's Fig. 3 inference workflow for whole beams/granules."""

    def __init__(
        self,
        classifier: TrainedClassifier,
        window_length_m: float = RESAMPLE_WINDOW_M,
        min_confidence: int = 3,
    ) -> None:
        self.classifier = classifier
        self.window_length_m = window_length_m
        self.min_confidence = min_confidence

    def classify_beam(self, beam: BeamData) -> ClassifiedTrack:
        """Resample one beam to 2 m segments and classify every segment."""
        segments = resample_fixed_window(
            beam, window_length_m=self.window_length_m, min_confidence=self.min_confidence
        )
        return self.classify_segments(segments)

    def _feature_tensor(self, segments: SegmentArray) -> np.ndarray:
        """Normalised feature matrix (or LSTM sequence tensor) of one track."""
        X, _ = feature_matrix(segments, normalize=True, stats=self.classifier.feature_stats)
        if self.classifier.kind == "lstm":
            X = sequence_windows(X, self.classifier.sequence_length)
        return X

    def classify_segments(self, segments: SegmentArray) -> ClassifiedTrack:
        """Classify already-resampled segments."""
        probs = self.classifier.model.predict_proba(self._feature_tensor(segments))
        labels = np.argmax(probs, axis=1).astype(np.int8)
        return ClassifiedTrack(segments=segments, labels=labels, probabilities=probs)

    def classify_segments_batched(
        self, segments_by_name: "dict[str, SegmentArray]"
    ) -> dict[str, ClassifiedTrack]:
        """Classify several tracks with one pooled model pass.

        Feature tensors are built per track (sequences never cross track
        boundaries) and pushed through the model together via
        :meth:`repro.ml.model.Sequential.predict_batched`, so the LSTM runs
        one matmul per timestep across *all* tracks' sequences instead of a
        separate small forward pass per beam.
        """
        names = list(segments_by_name)
        tensors = [self._feature_tensor(segments_by_name[name]) for name in names]
        probs_list = self.classifier.model.predict_batched(tensors)
        return {
            name: ClassifiedTrack(
                segments=segments_by_name[name],
                labels=np.argmax(probs, axis=1).astype(np.int8),
                probabilities=probs,
            )
            for name, probs in zip(names, probs_list)
        }

    def classify_granule(self, granule: Granule) -> dict[str, ClassifiedTrack]:
        """Classify every beam of a granule with one pooled model pass."""
        segments = {
            name: resample_fixed_window(
                beam, window_length_m=self.window_length_m, min_confidence=self.min_confidence
            )
            for name, beam in granule.beams.items()
        }
        return self.classify_segments_batched(segments)
