"""Sea-ice surface classification: deep-learning pipeline and decision-tree baseline.

* :mod:`repro.classification.decision_tree` — the NASA-ATBD-style threshold
  cascade used by the operational ATL07 product (the paper's baseline);
* :mod:`repro.classification.pipeline` — the paper's inference workflow
  (Fig. 3): preprocess a granule, resample to 2 m, extract features, build
  LSTM sequences and classify every segment along the track.
"""

from repro.classification.decision_tree import DecisionTreeClassifier, DecisionTreeConfig
from repro.classification.pipeline import (
    ClassifiedTrack,
    InferencePipeline,
    TrainedClassifier,
    train_classifier,
)

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeConfig",
    "ClassifiedTrack",
    "InferencePipeline",
    "TrainedClassifier",
    "train_classifier",
]
