"""NASA-style decision-tree surface classifier (the ATL07 baseline).

The operational ATL07 algorithm classifies sea-ice segments with a hand-built
decision tree over segment height statistics and photon-rate features
(Kwok et al., ATL07/ATL10 ATBD).  The paper contrasts its deep-learning
models against that approach.  This module implements an equivalent
threshold cascade over the same six features used by the neural models, plus
a small utility to *fit* the thresholds from labelled data (so the baseline
is given the same information as the learned models in the accuracy
comparison).

Decision logic (per segment, after threshold fitting):

1. very low relative height, low height spread and low photon rate →
   **open water** (dark lead);
2. high photon rate with near-zero spread (specular return) → **open water**
   (specular lead);
3. relative height below the thin-ice threshold → **thin ice**;
4. otherwise → **thick / snow-covered ice**.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE
from repro.resampling.features import FEATURE_NAMES


@dataclass
class DecisionTreeConfig:
    """Thresholds of the cascade (in *raw*, unnormalised feature units)."""

    water_height_max_m: float = 0.08
    water_std_max_m: float = 0.12
    specular_rate_min: float = 6.0
    specular_std_max_m: float = 0.05
    thin_ice_height_max_m: float = 0.15

    def __post_init__(self) -> None:
        if self.water_height_max_m >= self.thin_ice_height_max_m:
            raise ValueError("water height threshold must be below the thin-ice threshold")
        if self.water_std_max_m <= 0 or self.specular_std_max_m <= 0:
            raise ValueError("spread thresholds must be positive")


class DecisionTreeClassifier:
    """Threshold cascade over the per-segment features.

    The classifier consumes the *raw* feature matrix in the canonical
    :data:`~repro.resampling.features.FEATURE_NAMES` order (heights in
    metres).  Heights are interpreted relative to the track's low-water
    reference (the 5th percentile of segment heights), which the classifier
    computes internally, mirroring how the ATBD uses height relative to a
    local sea-surface estimate.
    """

    def __init__(self, config: DecisionTreeConfig | None = None) -> None:
        self.config = config if config is not None else DecisionTreeConfig()
        self._height_reference: float = 0.0
        self._fitted = False

    # -- fitting ----------------------------------------------------------------

    def fit(self, X_raw: np.ndarray, y: np.ndarray | None = None) -> "DecisionTreeClassifier":
        """Fit the height reference (and optionally tune thresholds).

        With labels, the water/thin-ice height thresholds are re-estimated
        from the labelled class-conditional height distributions; without
        labels only the height reference (5th percentile) is set.
        """
        X_raw = self._validate(X_raw)
        heights = X_raw[:, 0]
        finite = np.isfinite(heights)
        if not finite.any():
            raise ValueError("feature matrix contains no finite heights")
        # Unsupervised reference: the lowest half-percent of segment heights
        # approximates the local sea surface even when open water covers only
        # a few percent of the track.
        self._height_reference = float(np.quantile(heights[finite], 0.005))

        if y is not None:
            y = np.asarray(y)
            if y.shape[0] != X_raw.shape[0]:
                raise ValueError("X_raw and y must have the same length")
            labelled_water = (y == CLASS_OPEN_WATER) & finite
            if labelled_water.sum() >= 3:
                # With labels, anchor the reference on the labelled open water
                # directly (the ATBD's "use the local sea surface" behaviour).
                self._height_reference = float(np.median(heights[labelled_water]))
            rel = heights - self._height_reference
            water = rel[(y == CLASS_OPEN_WATER) & finite]
            thin = rel[(y == CLASS_THIN_ICE) & finite]
            thick = rel[(y == CLASS_THICK_ICE) & finite]
            cfg = self.config
            if water.size >= 5 and thin.size >= 5:
                cfg.water_height_max_m = float(
                    0.5 * (np.quantile(water, 0.85) + np.quantile(thin, 0.15))
                )
            if thin.size >= 5 and thick.size >= 5:
                cfg.thin_ice_height_max_m = float(
                    max(0.5 * (np.quantile(thin, 0.85) + np.quantile(thick, 0.15)),
                        cfg.water_height_max_m + 1e-3)
                )
        self._fitted = True
        return self

    # -- prediction ----------------------------------------------------------------

    def predict(self, X_raw: np.ndarray) -> np.ndarray:
        """Classify segments; returns integer class labels."""
        X_raw = self._validate(X_raw)
        if not self._fitted:
            self.fit(X_raw)
        cfg = self.config
        height = X_raw[:, 0] - self._height_reference
        height_std = X_raw[:, 1]
        n_high_conf = X_raw[:, 2]
        # Photon rate per shot recovered from the high-confidence count over
        # a 2 m window (~2.86 shots).
        photon_rate = n_high_conf / (2.0 / 0.7)

        labels = np.full(X_raw.shape[0], CLASS_THICK_ICE, dtype=np.int8)
        labels[height <= cfg.thin_ice_height_max_m] = CLASS_THIN_ICE

        dark_lead = (
            (height <= cfg.water_height_max_m)
            & (height_std <= cfg.water_std_max_m)
        )
        specular_lead = (photon_rate >= cfg.specular_rate_min) & (
            height_std <= cfg.specular_std_max_m
        ) & (height <= cfg.thin_ice_height_max_m)
        labels[dark_lead | specular_lead] = CLASS_OPEN_WATER
        return labels

    def fit_predict(self, X_raw: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Fit and classify in one call."""
        return self.fit(X_raw, y).predict(X_raw)

    @staticmethod
    def _validate(X_raw: np.ndarray) -> np.ndarray:
        X_raw = np.asarray(X_raw, dtype=float)
        if X_raw.ndim != 2 or X_raw.shape[1] != len(FEATURE_NAMES):
            raise ValueError(
                f"expected feature matrix with {len(FEATURE_NAMES)} columns "
                f"({FEATURE_NAMES}), got shape {X_raw.shape}"
            )
        return X_raw
