"""The query engine: resolve (bbox, variable, zoom) requests to tiles.

Serving path, in order of decreasing cheapness:

1. **Tile cache** — every served tile lands in a fingerprint-keyed LRU
   (``(product key, variable, zoom, row, col)``), so a repeated region
   query is answered without touching the filesystem at all: the engine
   resolves the request to tile addresses from catalog metadata alone
   (shared geometry helpers in :mod:`repro.serve.pyramid`), then copies the
   cached arrays out.
2. **Batched decode** — cache-missing tiles are grouped *per product*, so
   however many concurrent requests hit one mosaic, its npz is decoded and
   its pyramid built exactly once per batch.
3. **Fan-out** — independent products of one batch fan across the existing
   :class:`~repro.distributed.mapreduce.MapReduceEngine` executors
   (serial/thread/process), the same substrate the campaign fleet uses.

The loader is pluggable and instrumented (``n_loads``, ``loaded``): tests
and the traffic simulator can assert exactly which requests caused a
decode, which is the whole point of the cache.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.config import DEFAULT_SERVE, ServeConfig
from repro.distributed.mapreduce import EXECUTORS, MapReduceEngine
from repro.l3.writer import read_level3
from repro.obs.core import Obs, default_obs
from repro.serve.catalog import CatalogEntry, ProductCatalog
from repro.serve.pyramid import (
    TilePyramid,
    build_pyramid,
    cut_tile,
    n_levels_for,
    tiles_for_bbox,
)
from repro.utils.timing import Stopwatch

#: Cache key of one tile: (product key, variable, zoom, row, col).
TileKey = tuple[str, str, int, int, int]

#: Auto-assigned ``engine=eN`` metric labels for engines constructed without
#: explicit ``obs_labels`` (keeps independent engines' counters separate).
_ENGINE_IDS = itertools.count(1)


@dataclass(frozen=True)
class TileRequest:
    """One client request: a projected-metre region, a variable, a zoom."""

    bbox: tuple[float, float, float, float]
    variable: str = "freeboard_mean"
    zoom: int = 0

    def __post_init__(self) -> None:
        box = tuple(float(v) for v in self.bbox)
        object.__setattr__(self, "bbox", box)
        if box[2] <= box[0] or box[3] <= box[1]:
            raise ValueError(f"bbox must have positive width and height, got {box}")
        if self.zoom < 0:
            raise ValueError("zoom must be >= 0")
        if not self.variable:
            raise ValueError("variable must be a non-empty name")


@dataclass
class TileResponse:
    """One served request — the single response shape of the serve tier.

    Both :meth:`QueryEngine.query` and
    :meth:`repro.serve.router.RequestRouter.query` return this dataclass:
    the tiles, per-tile provenance fingerprints, cache accounting
    (``n_cached``/``n_computed``), and the service-tier flags the router
    fills in (``coalesced``, ``queue_wait_s``, ``shard``).  ``stale`` marks
    a response served from the previous product revision while a live
    ingest rebuild is in flight (stale-while-revalidate).
    """

    request: TileRequest
    product: str
    zoom: int
    tiles: dict[tuple[int, int], np.ndarray]
    n_cached: int
    n_computed: int
    seconds: float
    #: Per-tile provenance: ``(row, col) -> tile-region fingerprint``.
    fingerprints: dict[tuple[int, int], str] = field(default_factory=dict)
    #: Served from the previous revision while a rebuild is in flight.
    stale: bool = False
    #: Router flags: joined an identical in-flight execution / time spent
    #: waiting on it / the shard that served the request (``None`` when the
    #: response came straight from an engine, not through the router).
    coalesced: bool = False
    queue_wait_s: float = 0.0
    shard: int | None = None

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def from_cache(self) -> bool:
        """True when every tile came from the LRU (no decode, no filesystem)."""
        return self.n_computed == 0

    @property
    def service_s(self) -> float:
        """Execution time of the underlying engine work."""
        return self.seconds

    @property
    def latency_s(self) -> float:
        """End-to-end request latency: queue wait plus service time."""
        return self.queue_wait_s + self.seconds

    @property
    def response(self) -> "TileResponse":
        """Self — compatibility with the pre-unification ``RoutedResponse``
        wrapper, whose consumers reached the engine payload via
        ``routed.response``.  New code should use the fields directly."""
        return self

    def mosaic_array(self) -> np.ndarray:
        """The response's tiles stitched into one array (row-major window)."""
        if not self.tiles:
            return np.empty((0, 0))
        rows = sorted({row for row, _ in self.tiles})
        cols = sorted({col for _, col in self.tiles})
        sample = next(iter(self.tiles.values()))
        ts = sample.shape[0]
        out = np.full((len(rows) * ts, len(cols) * ts), np.nan)
        for (row, col), tile in self.tiles.items():
            i, j = rows.index(row), cols.index(col)
            out[i * ts : (i + 1) * ts, j * ts : (j + 1) * ts] = tile
        return out


@dataclass
class QueryStats:
    """Cumulative engine counters (across every batch served).

    A plain *snapshot* dataclass: :attr:`QueryEngine.stats` assembles one
    from the registry-backed ``serve_*`` counters on every access, so the
    numbers survive engine/loader reconstruction (the counters live in the
    obs registry, keyed by name and labels, not on the engine).
    """

    requests: int = 0
    batches: int = 0
    tile_hits: int = 0
    tile_misses: int = 0
    loads: int = 0
    seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.tile_hits + self.tile_misses
        return self.tile_hits / total if total else 0.0


class ProductLoader:
    """Instrumented product decoder: npz -> :class:`TilePyramid`.

    ``n_loads`` / ``loaded`` record every decode, so tests can assert that
    the LRU actually prevented filesystem reads.  The counters are guarded
    by a lock: the engine's thread executor calls :meth:`load` from
    concurrent workers, and an unsynchronized ``+=`` would undercount.
    Subclass and override :meth:`decode` to serve from other storage.
    """

    def __init__(
        self,
        serve: ServeConfig = DEFAULT_SERVE,
        backend: str | None = None,
        obs: Obs | None = None,
    ) -> None:
        self.serve = serve
        self.backend = backend
        self.n_loads = 0
        self.loaded: list[str] = []
        self._lock = threading.Lock()
        self._obs = obs

    @property
    def obs(self) -> Obs:
        """The telemetry handle (the owning engine wires its own in)."""
        return self._obs if self._obs is not None else default_obs()

    def __getstate__(self) -> dict[str, Any]:
        # Locks cannot cross process boundaries; worker-side copies get a
        # fresh one (their counters live and die in the worker anyway).
        # The obs handle stays behind too — its tracer holds a contextvar —
        # so worker-side fetches fall back to the worker's default obs.
        state = self.__dict__.copy()
        del state["_lock"]
        state["_obs"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def decode(self, entry: CatalogEntry) -> TilePyramid:
        product = read_level3(entry.base_path)
        return build_pyramid(product, serve=self.serve, backend=self.backend)

    def load(self, entry: CatalogEntry) -> TilePyramid:
        with self._lock:
            self.n_loads += 1
            self.loaded.append(entry.key)
        return self.decode(entry)

    def fetch(
        self, entry: CatalogEntry, needed: Sequence[TileKey]
    ) -> dict[TileKey, np.ndarray]:
        """The requested tiles of one product, decoding only what's required.

        Counts as exactly one load either way.  Base-resolution requests
        against raw-format products take the **windowed read** fast path:
        the blob is memory-mapped and each tile is a read-only view of its
        own window, so the decode touches one tile's worth of pages — no
        archive inflation, no pyramid build.  Everything else (npz
        products, overview zooms, live in-memory products) decodes the full
        pyramid as before.
        """
        with self.obs.span(
            "loader.fetch", product=entry.key, n_tiles=len(needed)
        ) as span:
            tiles = self._window_tiles(entry, needed)
            if tiles is not None:
                with self._lock:
                    self.n_loads += 1
                    self.loaded.append(entry.key)
                span.set(windowed=True)
                return tiles
            pyramid = self.load(entry)
            span.set(windowed=False)
            return {
                key: pyramid.tile(key[1], key[2], key[3], key[4]) for key in needed
            }

    def _window_tiles(
        self, entry: CatalogEntry, needed: Sequence[TileKey]
    ) -> dict[TileKey, np.ndarray] | None:
        """Zoom-0 window reads for raw products; ``None`` -> full decode.

        Bit-identical to ``pyramid.tile`` at zoom 0: the base level's value
        layers are ``asarray(variable, dtype=float)`` windows, and tiles go
        through the same :func:`~repro.serve.pyramid.cut_tile` NaN-padding.
        Only applies when every needed tile is base resolution — overview
        tiles need the reduction kernels, hence the full pyramid.
        """
        if entry.storage != "raw" or any(key[2] != 0 for key in needed):
            return None
        product = read_level3(entry.base_path)
        ts = self.serve.tile_size
        tiles: dict[TileKey, np.ndarray] = {}
        for key in needed:
            _, variable, _, row, col = key
            layer = product.variables[variable]
            window = np.asarray(
                layer[row * ts : (row + 1) * ts, col * ts : (col + 1) * ts],
                dtype=float,
            )
            tiles[key] = cut_tile(window, ts)
        return tiles

    def tile_fingerprint(self, key: TileKey) -> str:
        """Provenance fingerprint of one tile region.

        For immutable (batch-written) products the product key *is* the
        content fingerprint, so the tile region is fully identified by
        appending its address.  Live loaders
        (:class:`repro.serve.live.LivePyramidLoader`) refine this with a
        per-region revision that advances only when an ingest actually
        rebuilt that tile.
        """
        product, variable, zoom, row, col = key
        return f"{product}/{variable}@z{zoom}/{row},{col}"

    def is_stale(self, product_key: str) -> bool:
        """Whether a product is mid-rebuild (stale-while-revalidate flag).

        Batch products are immutable, hence never stale; the live loader
        overrides this during an in-flight ingest.
        """
        return False


class _LRUCache:
    """A size-bounded LRU mapping (the tile cache)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Any | None:
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def pop(self, key: Hashable) -> bool:
        """Drop one entry; True when it was resident (targeted invalidation)."""
        return self._data.pop(key, None) is not None


class _ProductFetchTask:
    """Picklable map function: decode one chunk of products, cut their tiles.

    Each item is ``(entry, needed)`` with ``needed`` the sorted tile keys to
    extract.  Returns ``(key, tiles, n_loads)`` triples so the driver can
    fold worker-side loads into its own accounting even under the process
    executor (where loader counters live and die in the worker).  Every
    ``fetch()`` call is exactly one decode, so the count is the constant 1 —
    never a delta of the shared loader's counter, which concurrent thread
    partitions would race on.
    """

    def __init__(self, loader: ProductLoader) -> None:
        self.loader = loader

    def __call__(
        self, items: Sequence[tuple[CatalogEntry, tuple[TileKey, ...]]]
    ) -> list[tuple[str, dict[TileKey, np.ndarray], int]]:
        out: list[tuple[str, dict[TileKey, np.ndarray], int]] = []
        for entry, needed in items:
            out.append((entry.key, self.loader.fetch(entry, needed), 1))
        return out


def _merge_fetches(
    chunks: list[list[tuple[str, dict[TileKey, np.ndarray], int]]],
) -> list[tuple[str, dict[TileKey, np.ndarray], int]]:
    return [item for chunk in chunks for item in chunk]


@dataclass
class _RequestPlan:
    """One request resolved to a product and concrete tile addresses."""

    request: TileRequest
    entry: CatalogEntry
    zoom: int
    tile_keys: tuple[TileKey, ...]


def select_entry(candidates: Sequence[CatalogEntry], request: TileRequest) -> CatalogEntry:
    """The resolution policy: which of the matching products serves a request.

    Shared by :class:`QueryEngine` and the sharded router, so a sharded
    deployment resolves every request to exactly the product the unsharded
    engine would pick.  Mosaics win over per-granule grids (they composite
    the whole fleet); ties break towards the most recently registered
    product.  Raises ``LookupError`` when nothing matches — and *before*
    any decode when the variable exists in products but is not a servable
    pyramid layer (count layers are reduction weights).
    """
    if not candidates:
        raise LookupError(
            f"no catalogued product with variable {request.variable!r} "
            f"intersects bbox {request.bbox}"
        )
    servable = [e for e in candidates if request.variable in e.servable]
    if not servable:
        raise LookupError(
            f"variable {request.variable!r} exists in matching products but "
            "is not a servable pyramid layer (count/coverage layers are "
            f"reduction weights); servable here: {sorted(candidates[-1].servable)}"
        )
    mosaics = [entry for entry in servable if entry.kind == "mosaic"]
    pool = mosaics if mosaics else servable
    return pool[-1]


def plan_request(entry: CatalogEntry, request: TileRequest, serve: ServeConfig) -> _RequestPlan:
    """Resolve one request against one product to concrete tile addresses.

    Pure geometry from catalog metadata — no decode.  The zoom is clamped
    to the product's pyramid depth; the resulting ``tile_keys`` are the
    fingerprint-based cache keys, which double as the router's
    single-flight identity (two requests whose bboxes cover the same tiles
    of the same product coalesce even if the bboxes differ).
    """
    levels = n_levels_for(entry.shape, serve.tile_size, serve.max_levels)
    zoom = max(0, min(request.zoom, levels - 1))
    addresses = tiles_for_bbox(
        request.bbox,
        (entry.x_min_m, entry.y_min_m),
        entry.cell_size_m,
        entry.shape,
        zoom,
        serve.tile_size,
    )
    keys = tuple(
        (entry.key, request.variable, zoom, row, col) for row, col in addresses
    )
    return _RequestPlan(request=request, entry=entry, zoom=zoom, tile_keys=keys)


class QueryEngine:
    """Serve tile requests over a :class:`~repro.serve.catalog.ProductCatalog`.

    Telemetry: every batch runs inside an ``engine.query_batch`` span and
    feeds the registry-backed ``serve_*`` counters (labelled with
    ``obs_labels``, e.g. the owning router shard).  Because the counters
    live in the obs registry rather than on the engine, :attr:`stats`
    survives engine reconstruction — a quarantine re-route that rebuilds a
    shard's engine keeps accumulating into the same counters.
    """

    def __init__(
        self,
        catalog: ProductCatalog,
        loader: ProductLoader | None = None,
        serve: ServeConfig = DEFAULT_SERVE,
        n_workers: int = 1,
        executor: str = "serial",
        obs: Obs | None = None,
        obs_labels: Mapping[str, str] | None = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.catalog = catalog
        self.serve = serve
        self.loader = loader if loader is not None else ProductLoader(serve)
        # The engine plans tile addresses from ITS serve config before any
        # decode; a loader building pyramids with different tile geometry
        # would serve mis-georeferenced tiles (or IndexError) silently.
        loader_serve = getattr(self.loader, "serve", None)
        if loader_serve is not None:
            for field_name in ("tile_size", "max_levels", "weight_variable"):
                if getattr(loader_serve, field_name) != getattr(serve, field_name):
                    raise ValueError(
                        f"loader/engine ServeConfig mismatch on {field_name!r}: "
                        f"{getattr(loader_serve, field_name)!r} vs "
                        f"{getattr(serve, field_name)!r} — the loader must build "
                        "pyramids with the engine's tile geometry"
                    )
        self.n_workers = n_workers
        self.executor = executor
        self.tile_cache = _LRUCache(serve.tile_cache_size)
        self.obs = obs if obs is not None else default_obs()
        if isinstance(self.loader, ProductLoader) and self.loader._obs is None:
            self.loader._obs = self.obs
        # Explicit obs_labels name a *shared* counter series (the router
        # passes its shard index, so a rebuilt engine re-attaches to the
        # same counters and stats survive quarantine re-routes).  Without
        # them each engine gets a private series, so two engines on one
        # process-default registry never double-count each other.
        if obs_labels is None:
            labels: dict[str, Any] = {"engine": f"e{next(_ENGINE_IDS)}"}
        else:
            labels = dict(obs_labels)
        registry = self.obs.registry
        self._c_requests = registry.counter("serve_requests_total", **labels)
        self._c_batches = registry.counter("serve_batches_total", **labels)
        self._c_tile_hits = registry.counter("serve_tile_hits_total", **labels)
        self._c_tile_misses = registry.counter("serve_tile_misses_total", **labels)
        self._c_loads = registry.counter("serve_loads_total", **labels)
        self._c_seconds = registry.counter("serve_batch_seconds_total", **labels)
        self._h_batch = registry.histogram("serve_batch_seconds", **labels)
        # One persistent fan-out engine for the engine's lifetime: the worker
        # pool spawns once, not once per batch.  Width adapts per batch via
        # the n_partitions override; single-product batches run inline.
        self._engine = MapReduceEngine(
            n_partitions=n_workers,
            executor=executor if n_workers > 1 else "serial",
            max_workers=n_workers,
            obs=self.obs,
        )

    @property
    def stats(self) -> QueryStats:
        """Snapshot of the registry-backed counters as a :class:`QueryStats`."""
        return QueryStats(
            requests=int(self._c_requests.value),
            batches=int(self._c_batches.value),
            tile_hits=int(self._c_tile_hits.value),
            tile_misses=int(self._c_tile_misses.value),
            loads=int(self._c_loads.value),
            seconds=self._c_seconds.value,
        )

    def close(self) -> None:
        """Release the fan-out worker pool (idempotent; respawns on reuse)."""
        self._engine.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- resolution --------------------------------------------------------

    def resolve(self, request: TileRequest) -> CatalogEntry:
        """The product that serves one request (:func:`select_entry` policy)."""
        candidates = self.catalog.query(bbox=request.bbox, variable=request.variable)
        return select_entry(candidates, request)

    def _plan(self, request: TileRequest) -> _RequestPlan:
        return plan_request(self.resolve(request), request, self.serve)

    # -- serving -----------------------------------------------------------

    def query(self, request: TileRequest) -> TileResponse:
        """Serve one request (a batch of one)."""
        return self.query_batch([request])[0]

    def invalidate_tiles(self, keys: Iterable[TileKey]) -> int:
        """Drop exactly the given tiles from the LRU; return how many were
        resident.  The live-ingest tier calls this with the dirty tiles of
        one merge, so every *untouched* cached tile stays warm across an
        ingest — the point of dirty-tile accounting."""
        return sum(1 for key in keys if self.tile_cache.pop(key))

    def query_batch(self, requests: Sequence[TileRequest]) -> list[TileResponse]:
        """Serve many concurrent requests with per-product decode batching.

        Tiles already in the LRU are copied out without touching any file;
        the remaining tiles are grouped by product — one decode per product
        per batch, however many requests need it — and independent products
        fan across the map-reduce engine.
        """
        with self.obs.span(
            "engine.query_batch", n_requests=len(requests)
        ) as span:
            return self._query_batch(requests, span)

    def _query_batch(
        self, requests: Sequence[TileRequest], span: Any
    ) -> list[TileResponse]:
        sw = Stopwatch().start()
        plans = [self._plan(request) for request in requests]

        # 1. Probe the tile cache; collect the missing tiles per product.
        served: dict[TileKey, np.ndarray] = {}
        needed: dict[str, set[TileKey]] = {}
        entries: dict[str, CatalogEntry] = {}
        for plan in plans:
            for key in plan.tile_keys:
                if key in served:
                    continue
                cached = self.tile_cache.get(key)
                if cached is not None:
                    served[key] = cached
                else:
                    entries[plan.entry.key] = plan.entry
                    needed.setdefault(plan.entry.key, set()).add(key)

        # 2. One decode per product with cache-missing tiles; independent
        #    products fan across the executors.
        if needed:
            work = [
                (entries[product_key], tuple(sorted(keys)))
                for product_key, keys in sorted(needed.items())
            ]
            fetched = self._engine.run(
                lambda: work,
                _ProductFetchTask(self.loader),
                _merge_fetches,
                n_partitions=max(min(self.n_workers, len(work)), 1),
            )
            for _, tiles, n_loads in fetched.value:
                self._c_loads.inc(n_loads)
                for key, tile in tiles.items():
                    # Tiles that crossed a process boundary unpickled as
                    # fresh writeable arrays; freeze so every cached/served
                    # tile is immutable whatever the executor.
                    tile.flags.writeable = False
                    served[key] = tile
                    self.tile_cache.put(key, tile)

        # 3. Assemble responses.  Cache accounting is per request against the
        #    LRU state at batch start: a tile decoded in this batch counts as
        #    *computed* for every request of the batch that needed it (two
        #    identical requests in one batch share the decode — that is the
        #    batching, not the cache); only tiles already resident count as
        #    cached.
        seconds = sw.stop()
        responses: list[TileResponse] = []
        computed_keys = {key for keys in needed.values() for key in keys}
        for plan in plans:
            n_computed = sum(1 for key in plan.tile_keys if key in computed_keys)
            responses.append(
                TileResponse(
                    request=plan.request,
                    product=plan.entry.key,
                    zoom=plan.zoom,
                    # Read-only views, shared with the LRU — never copies.
                    # Consumers that need scratch space copy at the mutation
                    # site (mosaic_array() already writes into its own array).
                    tiles={
                        (key[3], key[4]): served[key] for key in plan.tile_keys
                    },
                    n_cached=len(plan.tile_keys) - n_computed,
                    n_computed=n_computed,
                    seconds=seconds,
                    fingerprints={
                        (key[3], key[4]): self.loader.tile_fingerprint(key)
                        for key in plan.tile_keys
                    },
                    stale=self.loader.is_stale(plan.entry.key),
                )
            )
            self._c_tile_hits.inc(len(plan.tile_keys) - n_computed)
            self._c_tile_misses.inc(n_computed)
        self._c_requests.inc(len(requests))
        self._c_batches.inc()
        self._c_seconds.inc(seconds)
        self._h_batch.observe(seconds)
        span.set(
            n_cached=sum(r.n_cached for r in responses),
            n_computed=sum(r.n_computed for r in responses),
        )
        return responses
