"""Product serving: catalog, tile pyramids, and a high-throughput query engine.

Level-3 products (:mod:`repro.l3`) end the paper's data path at files on
disk; this package is the layer that *serves* them — the step from an
archive of mosaics to a system answering region queries under load, the
ROADMAP's "heavy traffic" regime:

* :mod:`repro.serve.catalog` — :class:`ProductCatalog` indexes written
  products from their JSON sidecars alone (campaign, granules, variables,
  bounding box, fingerprint) and answers region + variable queries without
  opening a single npz;
* :mod:`repro.serve.pyramid` — :class:`TilePyramid` /
  :func:`build_pyramid`: power-of-two overview levels built by the
  :mod:`repro.kernels.pyramid` kernels (NaN-aware count-weighted means,
  coverage fractions) with fixed-size, NaN-padded tile addressing; also a
  registered ``build_pyramid`` pipeline stage, so pyramids are
  content-addressed and cached like every other artifact;
* :mod:`repro.serve.query` — :class:`QueryEngine` resolves
  ``(bbox, variable, zoom)`` requests to tiles through a fingerprint-keyed
  LRU tile cache, decodes each product at most once per batch however many
  requests hit it, and fans independent products across the
  :class:`~repro.distributed.mapreduce.MapReduceEngine` executors;
* :mod:`repro.serve.traffic` — :class:`TrafficSimulator` drives the engine
  with Zipf-distributed region traffic and emits a throughput/latency
  report in the :class:`~repro.distributed.cluster.ClusterCostModel`
  scaling-table style.

Quick start (serving a campaign)::

    from repro.campaign import CampaignConfig, CampaignRunner
    from repro.serve import TileRequest, TrafficSimulator

    runner = CampaignRunner(CampaignConfig(grid={"cloud_fraction": (0.1, 0.4)}))
    engine = runner.serve("products/")          # write products + catalog them
    response = engine.query(TileRequest(bbox=(0, 0, 10_000, 10_000), zoom=1))
    report = TrafficSimulator(engine).scaling_report()
"""

from repro.serve.catalog import CatalogEntry, ProductCatalog
from repro.serve.pyramid import (
    PyramidLevel,
    TilePyramid,
    build_pyramid,
    default_pyramid_variables,
    n_levels_for,
    tiles_for_bbox,
)
from repro.serve.query import (
    ProductLoader,
    QueryEngine,
    QueryStats,
    TileRequest,
    TileResponse,
)
from repro.serve.traffic import (
    TrafficConfig,
    TrafficResult,
    TrafficSimulator,
    scaling_rows,
)

__all__ = [
    "CatalogEntry",
    "ProductCatalog",
    "ProductLoader",
    "PyramidLevel",
    "QueryEngine",
    "QueryStats",
    "TilePyramid",
    "TileRequest",
    "TileResponse",
    "TrafficConfig",
    "TrafficResult",
    "TrafficSimulator",
    "build_pyramid",
    "default_pyramid_variables",
    "n_levels_for",
    "scaling_rows",
    "tiles_for_bbox",
]
