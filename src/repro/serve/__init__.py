"""Product serving: catalog, tile pyramids, and a high-throughput query engine.

Level-3 products (:mod:`repro.l3`) end the paper's data path at files on
disk; this package is the layer that *serves* them — the step from an
archive of mosaics to a system answering region queries under load, the
ROADMAP's "heavy traffic" regime:

* :mod:`repro.serve.catalog` — :class:`ProductCatalog` indexes written
  products from their JSON sidecars alone (campaign, granules, variables,
  bounding box, fingerprint) and answers region + variable queries without
  opening a single npz;
* :mod:`repro.serve.pyramid` — :class:`TilePyramid` /
  :func:`build_pyramid`: power-of-two overview levels built by the
  :mod:`repro.kernels.pyramid` kernels (NaN-aware count-weighted means,
  coverage fractions) with fixed-size, NaN-padded tile addressing; also a
  registered ``build_pyramid`` pipeline stage, so pyramids are
  content-addressed and cached like every other artifact;
* :mod:`repro.serve.query` — :class:`QueryEngine` resolves
  ``(bbox, variable, zoom)`` requests to tiles through a fingerprint-keyed
  LRU tile cache, decodes each product at most once per batch however many
  requests hit it, and fans independent products across the
  :class:`~repro.distributed.mapreduce.MapReduceEngine` executors;
* :mod:`repro.serve.shard` — :class:`ShardedCatalog` hash-partitions the
  archive by product footprint (:func:`shard_index`, bit-stable across
  rebuilds) into shards that share nothing, while queries merge back into
  global registration order so resolution is identical to the unsharded
  catalog;
* :mod:`repro.serve.router` — :class:`RequestRouter`, the async service
  tier over the shards: single-flight coalescing of identical in-flight
  queries, admission control with fast load-shedding
  (:class:`RouterOverloadedError` carries the ``Retry-After`` hint),
  popularity-driven hot-tile prefetching, and per-shard quarantine on
  repeated product errors;
* :mod:`repro.serve.handle` — :class:`ServeHandle`, the single
  construction surface: ``runner.serve(dir)`` returns a handle owning the
  catalog/engine/router/ingest lifecycle, with chainable builder steps
  (``.with_router(...)``, ``.with_ingest(...)``) and a unified
  :class:`TileResponse` query surface whichever front serves;
* :mod:`repro.serve.live` — the live-product seam under
  :mod:`repro.ingest`: :class:`IncrementalPyramidBuilder` rebuilds only
  the pyramid tiles whose footprint a new granule touched (byte-identical
  to a full rebuild), and :class:`LivePyramidLoader` serves installed
  in-memory pyramids with per-tile-region revision fingerprints and the
  stale-while-revalidate flag;
* :mod:`repro.serve.clock` — the pluggable time source
  (:class:`MonotonicClock` for production, :class:`VirtualClock` for
  deterministic concurrency tests and simulated open-loop runs);
* :mod:`repro.serve.traffic` — :class:`TrafficSimulator` drives the engine
  closed-loop with Zipf-distributed region traffic, or a router open-loop
  on a Poisson arrival process, and emits throughput/latency reports in
  the :class:`~repro.distributed.cluster.ClusterCostModel` scaling-table
  style.

Quick start (serving a campaign)::

    from repro.campaign import CampaignConfig, CampaignRunner
    from repro.serve import TileRequest, TrafficSimulator

    runner = CampaignRunner(CampaignConfig(grid={"cloud_fraction": (0.1, 0.4)}))
    handle = runner.serve("products/")          # write products + catalog them
    response = handle.query(TileRequest(bbox=(0, 0, 10_000, 10_000), zoom=1))
    report = TrafficSimulator(handle.engine).scaling_report()

    live = runner.serve("products/").with_router().with_ingest()
    live.ingest(new_granule_spec)               # merged + served, no restart
    routed = live.query_batch([TileRequest(bbox=(0, 0, 10_000, 10_000), zoom=1)])
"""

from repro.serve.catalog import CatalogEntry, ProductCatalog
from repro.serve.clock import MonotonicClock, VirtualClock
from repro.serve.handle import ServeHandle
from repro.serve.live import IncrementalPyramidBuilder, LivePyramidLoader
from repro.serve.pyramid import (
    PyramidLevel,
    TilePyramid,
    build_pyramid,
    default_pyramid_variables,
    n_levels_for,
    tiles_for_bbox,
    tiles_for_cells,
)
from repro.serve.query import (
    ProductLoader,
    QueryEngine,
    QueryStats,
    TileRequest,
    TileResponse,
    plan_request,
    select_entry,
)
from repro.serve.router import (
    RequestRouter,
    RoutedResponse,
    RouterOverloadedError,
    RouterStats,
    Shard,
)
from repro.serve.shard import ShardedCatalog, shard_index
from repro.serve.traffic import (
    OpenLoopResult,
    TrafficConfig,
    TrafficResult,
    TrafficSimulator,
    router_scaling_rows,
    scaling_rows,
)

__all__ = [
    "CatalogEntry",
    "IncrementalPyramidBuilder",
    "LivePyramidLoader",
    "MonotonicClock",
    "OpenLoopResult",
    "ProductCatalog",
    "ProductLoader",
    "PyramidLevel",
    "QueryEngine",
    "QueryStats",
    "RequestRouter",
    "RoutedResponse",
    "RouterOverloadedError",
    "RouterStats",
    "ServeHandle",
    "Shard",
    "ShardedCatalog",
    "TilePyramid",
    "TileRequest",
    "TileResponse",
    "TrafficConfig",
    "TrafficResult",
    "TrafficSimulator",
    "VirtualClock",
    "build_pyramid",
    "default_pyramid_variables",
    "n_levels_for",
    "plan_request",
    "router_scaling_rows",
    "scaling_rows",
    "select_entry",
    "shard_index",
    "tiles_for_bbox",
    "tiles_for_cells",
]
