"""Tile pyramids: power-of-two overview levels over a Level-3 grid.

A :class:`TilePyramid` is the serving-side form of a
:class:`~repro.l3.product.Level3Grid`: the base grid plus a stack of
overview levels, each one a 2x2 reduction of the level below built by the
:mod:`repro.kernels.pyramid` kernels — count-weighted means for the value
layers (freeboard/thickness layers weight by ``n_freeboard_segments``,
everything else by the configured weight variable) and area-mean coverage
fractions.  Levels are built until the whole grid fits in a single
``tile_size`` x ``tile_size`` tile (or the configured level cap).

Tiles are fixed-size square windows of one level, addressed by
``(zoom, tile_row, tile_col)`` with zoom 0 the base resolution; edge tiles
are NaN-padded to full size so every served tile has the same shape.  The
pure geometry helpers (:func:`level_shape`, :func:`n_levels_for`,
:func:`tile_grid`, :func:`tiles_for_bbox`) are shared with the query
engine, which must resolve a request to tile addresses *before* deciding
whether anything has to be decoded at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.config import DEFAULT_SERVE, ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.kernels import resolve_backend
from repro.kernels.pyramid import reduce_coverage, reduce_mean
from repro.l3.product import Level3Grid

#: Value layers whose natural reduction weight is the freeboard-segment
#: count rather than the total segment count.
_FREEBOARD_WEIGHTED_PREFIXES = ("freeboard_", "thickness_")


# ---------------------------------------------------------------------------
# Pure pyramid geometry (shared with the query engine)
# ---------------------------------------------------------------------------


def level_shape(base_shape: tuple[int, int], zoom: int) -> tuple[int, int]:
    """(ny, nx) of overview level ``zoom`` (0 = base), ceil-halving per level."""
    if zoom < 0:
        raise ValueError("zoom must be >= 0")
    ny, nx = int(base_shape[0]), int(base_shape[1])
    for _ in range(zoom):
        ny = (ny + 1) // 2
        nx = (nx + 1) // 2
    return ny, nx


def n_levels_for(
    base_shape: tuple[int, int], tile_size: int, max_levels: int | None = None
) -> int:
    """Number of pyramid levels (incl. the base) for a grid and tile size.

    Levels are added until the coarsest fits in one tile or is a single
    cell; ``max_levels`` caps the number of overview levels above the base.
    Deterministic in the inputs, so the query engine can enumerate a
    product's levels from its catalog entry without decoding it.
    """
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    n = 1
    ny, nx = int(base_shape[0]), int(base_shape[1])
    while max(ny, nx) > tile_size and (ny, nx) != (1, 1):
        if max_levels is not None and n > max_levels:
            break
        ny = (ny + 1) // 2
        nx = (nx + 1) // 2
        n += 1
    return n


def tile_grid(shape: tuple[int, int], tile_size: int) -> tuple[int, int]:
    """(tile_rows, tile_cols) covering a level of the given shape."""
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    ny, nx = shape
    return (ny + tile_size - 1) // tile_size, (nx + tile_size - 1) // tile_size


def tiles_for_bbox(
    bbox: Sequence[float],
    origin: tuple[float, float],
    base_cell_size_m: float,
    base_shape: tuple[int, int],
    zoom: int,
    tile_size: int,
) -> list[tuple[int, int]]:
    """Tile (row, col) addresses of one level intersecting a projected bbox.

    ``bbox`` is ``(x_min, y_min, x_max, y_max)`` in projected metres; the
    result is row-major ordered and clamped to the level's tile grid.  An
    empty list means the bbox misses the grid footprint entirely.
    """
    x_min, y_min, x_max, y_max = (float(v) for v in bbox)
    if not all(math.isfinite(v) for v in (x_min, y_min, x_max, y_max)):
        raise ValueError(f"bbox must be finite, got {tuple(bbox)!r}")
    if x_max <= x_min or y_max <= y_min:
        raise ValueError(f"bbox must have positive width and height, got {tuple(bbox)!r}")
    shape = level_shape(base_shape, zoom)
    rows, cols = tile_grid(shape, tile_size)
    span = base_cell_size_m * (2**zoom) * tile_size  # metres per tile side
    ox, oy = origin
    col_lo = int(math.floor((x_min - ox) / span))
    col_hi = int(math.ceil((x_max - ox) / span))  # exclusive
    row_lo = int(math.floor((y_min - oy) / span))
    row_hi = int(math.ceil((y_max - oy) / span))
    col_lo, col_hi = max(col_lo, 0), min(col_hi, cols)
    row_lo, row_hi = max(row_lo, 0), min(row_hi, rows)
    return [
        (row, col) for row in range(row_lo, row_hi) for col in range(col_lo, col_hi)
    ]


def tiles_for_cells(
    cells: np.ndarray | Sequence[int],
    base_shape: tuple[int, int],
    zoom: int,
    tile_size: int,
) -> list[tuple[int, int]]:
    """Tile (row, col) addresses of one level touched by base-grid cells.

    ``cells`` are flat row-major indices into the *base* grid — e.g. the
    dirty set reported by :meth:`repro.l3.merge.MosaicAccumulator.add`.
    Under ceil-halving, base cell ``(r, c)`` lands in level-``zoom`` cell
    ``(r >> zoom, c >> zoom)``, hence in tile
    ``(r >> zoom // tile_size, c >> zoom // tile_size)``.  The result is
    row-major sorted and deduplicated; an empty input returns no tiles.
    This is how the ingest tier turns dirty cells into the exact set of
    pyramid tiles to rebuild (and cache entries to invalidate).
    """
    flat = np.asarray(cells, dtype=np.int64).ravel()
    if flat.size == 0:
        return []
    ny, nx = int(base_shape[0]), int(base_shape[1])
    if flat.min() < 0 or flat.max() >= ny * nx:
        raise ValueError(
            f"cell indices must lie in [0, {ny * nx}) for base shape {base_shape}"
        )
    shape = level_shape(base_shape, zoom)  # also validates zoom >= 0
    _, tile_cols = tile_grid(shape, tile_size)
    level_rows = (flat // nx) >> zoom
    level_cols = (flat % nx) >> zoom
    keys = np.unique((level_rows // tile_size) * tile_cols + (level_cols // tile_size))
    return [(int(key // tile_cols), int(key % tile_cols)) for key in keys]


def cut_tile(window: np.ndarray, tile_size: int) -> np.ndarray:
    """Turn one layer window into a read-only ``tile_size``-square tile.

    Interior windows come back as **zero-copy read-only views** of the
    layer; only edge windows (short of a full tile) allocate, NaN-padded to
    size.  Every tile the serve tier hands out flows through here, so the
    no-copy hot path and the immutability contract live in one place —
    consumers that need scratch space copy at the mutation site.
    """
    if window.shape == (tile_size, tile_size):
        if window.flags.writeable:
            window = window.view()
            window.flags.writeable = False
        return window
    padded = np.full((tile_size, tile_size), np.nan)
    padded[: window.shape[0], : window.shape[1]] = window
    padded.flags.writeable = False
    return padded


# ---------------------------------------------------------------------------
# The pyramid product
# ---------------------------------------------------------------------------


@dataclass
class PyramidLevel:
    """One resolution level: a grid plus value/weight/coverage layers."""

    zoom: int
    grid: GridDefinition
    variables: dict[str, np.ndarray]
    weights: dict[str, np.ndarray]
    coverage: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.grid.shape


@dataclass
class TilePyramid:
    """Overview levels plus tile addressing over one Level-3 product.

    ``levels[0]`` is the base resolution; ``levels[k]`` halves (ceil) the
    rows and columns of ``levels[k-1]``.  ``metadata`` carries the source
    product's provenance (granule ids, fingerprint, kernel backend) plus the
    pyramid build parameters.
    """

    tile_size: int
    levels: tuple[PyramidLevel, ...]
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a pyramid must have at least its base level")

    @property
    def base_grid(self) -> GridDefinition:
        return self.levels[0].grid

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self.levels[0].variables)

    @property
    def fingerprint(self) -> str:
        return str(self.metadata.get("fingerprint", ""))

    def level(self, zoom: int) -> PyramidLevel:
        if not 0 <= zoom < self.n_levels:
            raise IndexError(
                f"zoom {zoom} out of range: this pyramid has levels 0..{self.n_levels - 1}"
            )
        return self.levels[zoom]

    def clamp_zoom(self, zoom: int) -> int:
        """Nearest available zoom (requests may over-ask on shallow pyramids)."""
        return max(0, min(int(zoom), self.n_levels - 1))

    def n_tiles(self, zoom: int) -> tuple[int, int]:
        """(tile_rows, tile_cols) of one level."""
        return tile_grid(self.level(zoom).shape, self.tile_size)

    def tile(self, variable: str, zoom: int, row: int, col: int) -> np.ndarray:
        """One NaN-padded ``tile_size`` x ``tile_size`` tile of a value layer."""
        level = self.level(zoom)
        rows, cols = self.n_tiles(zoom)
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(
                f"tile ({row}, {col}) out of range: level {zoom} has "
                f"{rows} x {cols} tiles"
            )
        try:
            layer = level.variables[variable]
        except KeyError:
            raise KeyError(
                f"no variable {variable!r} in this pyramid; available: "
                f"{sorted(level.variables)}"
            ) from None
        ts = self.tile_size
        window = layer[row * ts : (row + 1) * ts, col * ts : (col + 1) * ts]
        return cut_tile(window, ts)

    def tile_bbox(self, zoom: int, row: int, col: int) -> tuple[float, float, float, float]:
        """Projected-metre ``(x_min, y_min, x_max, y_max)`` of one tile."""
        level = self.level(zoom)
        span = level.grid.cell_size_m * self.tile_size
        x0 = level.grid.x_min_m + col * span
        y0 = level.grid.y_min_m + row * span
        return (x0, y0, x0 + span, y0 + span)

    def tiles_for_bbox(self, bbox: Sequence[float], zoom: int) -> list[tuple[int, int]]:
        """Tile addresses of one level intersecting a projected bbox.

        ``zoom`` must be a real level of this pyramid (``IndexError``
        otherwise, like :meth:`tile` / :meth:`tile_bbox` — silently clamping
        here would hand back addresses that are only valid at a *different*
        zoom).  Callers wanting best-effort resolution clamp explicitly with
        :meth:`clamp_zoom` first, the way the query engine does.
        """
        self.level(zoom)  # validate, same contract as tile()/tile_bbox()
        base = self.base_grid
        return tiles_for_bbox(
            bbox,
            (base.x_min_m, base.y_min_m),
            base.cell_size_m,
            base.shape,
            zoom,
            self.tile_size,
        )


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------


def _weight_layer(product: Level3Grid, variable: str, default: str) -> np.ndarray:
    """The count layer that weights one variable's reduction."""
    name = default
    if (
        variable.startswith(_FREEBOARD_WEIGHTED_PREFIXES)
        and "n_freeboard_segments" in product.variables
    ):
        name = "n_freeboard_segments"
    try:
        return np.asarray(product.variables[name], dtype=float)
    except KeyError:
        raise ValueError(
            f"weight variable {name!r} is not in the product; available: "
            f"{sorted(product.variables)}"
        ) from None


def _level_grid(base: GridDefinition, zoom: int) -> GridDefinition:
    """The coarsened grid of one level (same origin, doubled cell size)."""
    ny, nx = level_shape(base.shape, zoom)
    return GridDefinition(
        x_min_m=base.x_min_m,
        y_min_m=base.y_min_m,
        cell_size_m=base.cell_size_m * (2**zoom),
        nx=nx,
        ny=ny,
        projection=base.projection,
    )


def is_pyramid_variable(name: str, dtype: Any) -> bool:
    """Whether a product layer is served as a pyramid value layer.

    Count layers are reduction *weights*, not values, and the mosaic's
    ``coverage_fraction`` is superseded by the pyramid's own coverage
    reduction — so only the other float layers are servable.  The catalog
    applies the same rule from sidecar dtypes, so the query engine can
    reject a non-servable variable before decoding anything.
    """
    try:
        servable = np.issubdtype(np.dtype(dtype), np.floating)
    except TypeError:
        return False
    return servable and name != "coverage_fraction"


def default_pyramid_variables(product: Level3Grid) -> tuple[str, ...]:
    """The float-valued layers of a product (counts are weights, not values)."""
    return tuple(
        name
        for name, value in product.variables.items()
        if is_pyramid_variable(name, np.asarray(value).dtype)
    )


def build_pyramid(
    product: Level3Grid,
    variables: Iterable[str] | None = None,
    serve: ServeConfig = DEFAULT_SERVE,
    backend: str | None = None,
) -> TilePyramid:
    """Build the tile pyramid of one Level-3 product.

    ``variables`` defaults to every float-valued layer of the product.  The
    base level's contributing weights mask non-finite values out, so a cell
    that reports NaN at full resolution (empty or below the ``min_segments``
    floor) never contributes to any overview.
    """
    backend = resolve_backend(backend)
    names = tuple(variables) if variables is not None else default_pyramid_variables(product)
    if not names:
        raise ValueError("cannot build a pyramid with no variables")
    missing = sorted(set(names) - set(product.variables))
    if missing:
        raise ValueError(
            f"variables not in the product: {missing}; available: "
            f"{sorted(product.variables)}"
        )

    values: dict[str, np.ndarray] = {}
    weights: dict[str, np.ndarray] = {}
    for name in names:
        layer = np.asarray(product.variables[name], dtype=float)
        weight = _weight_layer(product, name, serve.weight_variable)
        values[name] = layer
        weights[name] = np.where(np.isfinite(layer), weight, 0.0)
    base_weight = _weight_layer(product, serve.weight_variable, serve.weight_variable)
    coverage = (base_weight > 0).astype(float)

    base = product.grid
    levels = [
        PyramidLevel(
            zoom=0,
            grid=base,
            variables=values,
            weights=weights,
            coverage=coverage,
        )
    ]
    total_levels = n_levels_for(base.shape, serve.tile_size, serve.max_levels)
    for zoom in range(1, total_levels):
        prev = levels[-1]
        reduced_values: dict[str, np.ndarray] = {}
        reduced_weights: dict[str, np.ndarray] = {}
        for name in names:
            out_values, out_weights = reduce_mean(
                prev.variables[name], prev.weights[name], backend=backend
            )
            reduced_values[name] = out_values
            reduced_weights[name] = out_weights
        levels.append(
            PyramidLevel(
                zoom=zoom,
                grid=_level_grid(base, zoom),
                variables=reduced_values,
                weights=reduced_weights,
                coverage=reduce_coverage(prev.coverage, backend=backend),
            )
        )

    metadata = dict(product.metadata)
    metadata.update(
        {
            "tile_size": serve.tile_size,
            "weight_variable": serve.weight_variable,
            "pyramid_variables": list(names),
            "n_levels": total_levels,
            "kernel_backend": backend,
        }
    )
    return TilePyramid(tile_size=serve.tile_size, levels=tuple(levels), metadata=metadata)
