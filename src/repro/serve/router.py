"""The async service tier: sharding, single-flight, admission control, prefetch.

:class:`RequestRouter` is the layer that turns the synchronous in-process
:class:`~repro.serve.query.QueryEngine` into a service able to face heavy
traffic.  Request path, in order:

1. **Global resolution** — the request is resolved against the whole
   :class:`~repro.serve.shard.ShardedCatalog` with the *same* policy as
   the unsharded engine (:func:`~repro.serve.query.select_entry`, with
   quarantined shards excluded), so sharding never changes which product
   serves a request; the winning product names its owning shard.
2. **Single-flight coalescing** — the request's planned tile keys (the
   tile fingerprints) are its flight identity: if an identical query is
   already executing, the new request parks on the same future and shares
   the one underlying tile build.  K identical concurrent queries cost
   exactly one decode, however large K is.
3. **Admission control** — distinct (non-coalescable) executions are
   bounded by a queue-depth watermark; beyond it requests are shed
   *immediately* with :class:`RouterOverloadedError` carrying a
   ``Retry-After`` hint, instead of queueing into latency collapse.
   Coalesced joiners never count against the watermark — they add no work.
4. **Sharded execution** — the owning shard's engine serves the request
   from its private LRU tile cache / product loader.  A shard whose loader
   keeps raising :class:`~repro.l3.writer.Level3ProductError` is
   **quarantined**: resolution routes around it (another product serves
   the region when one exists) and :meth:`RequestRouter.health` reports it.

A background **prefetcher** watches the observed popularity distribution
(the Zipf head the traffic simulator models) and periodically re-executes
the hottest flight keys, keeping their tiles warm in the shard caches;
client requests arriving mid-refresh coalesce onto the refresh.

Everything time-dependent goes through the pluggable clock
(:mod:`repro.serve.clock`), and the underlying execution is an injectable
async hook — which is how the deterministic concurrency tests drive
thousands of concurrent requests through a real event loop with zero real
sleeps.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Awaitable, Callable, Hashable, Sequence

from repro.config import DEFAULT_SERVE, RouterConfig, ServeConfig
from repro.l3.writer import Level3ProductError
from repro.obs.core import Obs, default_obs
from repro.serve.catalog import CatalogEntry, ProductCatalog
from repro.serve.clock import MonotonicClock, VirtualClock
from repro.serve.query import (
    ProductLoader,
    QueryEngine,
    TileKey,
    TileRequest,
    TileResponse,
    plan_request,
    select_entry,
)
from repro.serve.shard import ShardedCatalog

__all__ = [
    "ExecuteHook",
    "RequestRouter",
    "RoutedResponse",
    "RouterOverloadedError",
    "RouterStats",
    "Shard",
]

#: Async execution hook: ``(shard, request) -> TileResponse``.  The default
#: calls the shard engine synchronously on the event loop; tests inject
#: virtual-clock implementations to model service time deterministically.
ExecuteHook = Callable[["Shard", TileRequest], Awaitable[TileResponse]]

#: Auto-assigned ``router=rN`` metric labels keeping independent routers'
#: counter series separate on a shared (process-default) registry.
_ROUTER_IDS = itertools.count(1)


class RouterOverloadedError(RuntimeError):
    """Fast 503-style rejection: the router is past its queue watermark.

    Carries the ``Retry-After`` hint a fronting HTTP layer would serialize;
    shedding is *immediate* (no queue time is spent before rejection).
    """

    def __init__(self, depth: int, max_queue_depth: int, retry_after_s: float) -> None:
        super().__init__(
            f"router overloaded: {depth} executions in flight "
            f"(watermark {max_queue_depth}); Retry-After: {retry_after_s:.3f}s"
        )
        self.depth = depth
        self.max_queue_depth = max_queue_depth
        self.retry_after_s = retry_after_s


@dataclass
class Shard:
    """One serving shard: a sub-catalog, its engine, and health state."""

    index: int
    catalog: ProductCatalog
    engine: QueryEngine
    errors: int = 0
    quarantined: bool = False

    def health_row(self) -> dict[str, object]:
        return {
            "shard": self.index,
            "products": len(self.catalog),
            "errors": self.errors,
            "quarantined": self.quarantined,
            "cached_tiles": len(self.engine.tile_cache),
            "loads": self.engine.loader.n_loads,
        }


@dataclass
class RouterStats:
    """Cumulative router counters (the service-tier view, not the engine's).

    A *snapshot* dataclass: :attr:`RequestRouter.stats` assembles one from
    the registry-backed ``router_*_total`` counters on every access.
    """

    requests: int = 0
    shed: int = 0
    coalesced: int = 0
    executions: int = 0
    prefetch_refreshes: int = 0
    errors: int = 0

    @property
    def admitted(self) -> int:
        return self.requests - self.shed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def coalescing_ratio(self) -> float:
        """Fraction of admitted requests that shared another request's work."""
        return self.coalesced / self.admitted if self.admitted else 0.0

    def snapshot(self) -> "RouterStats":
        return replace(self)


#: The router returns the same unified :class:`TileResponse` the engine
#: does, with the service-tier fields (``shard``, ``coalesced``,
#: ``queue_wait_s``) filled in.  ``RoutedResponse`` survives as an alias of
#: the pre-unification wrapper name; its old attribute surface
#: (``.response``, ``.service_s``, ``.latency_s``) lives on as properties
#: of :class:`TileResponse`.  Coalesced joiners get their own response
#: object but *share* the executing request's tiles dict — treat it
#: read-only.
RoutedResponse = TileResponse


@dataclass
class _Flight:
    """One in-flight execution; identical requests park on the future."""

    future: asyncio.Future
    shard: int
    prefetch: bool = False
    started: float = 0.0


@dataclass
class _PrefetchState:
    """Popularity accounting feeding the hot-tile prefetcher."""

    popularity: Counter = field(default_factory=Counter)
    requests: dict[Hashable, TileRequest] = field(default_factory=dict)


class RequestRouter:
    """Route tile requests across shards with coalescing and admission control."""

    def __init__(
        self,
        catalog: ShardedCatalog | ProductCatalog,
        serve: ServeConfig = DEFAULT_SERVE,
        config: RouterConfig | None = None,
        loader_factory: Callable[[int], ProductLoader] | None = None,
        n_workers: int = 1,
        executor: str = "serial",
        clock: MonotonicClock | VirtualClock | None = None,
        execute: ExecuteHook | None = None,
        obs: Obs | None = None,
    ) -> None:
        self.config = config if config is not None else serve.router
        if isinstance(catalog, ProductCatalog):
            catalog = ShardedCatalog.from_catalog(catalog, self.config.n_shards)
        elif catalog.n_shards != self.config.n_shards:
            # The physical partition wins: a config written for a different
            # shard count must not silently mis-route.
            self.config = replace(self.config, n_shards=catalog.n_shards)
        self.catalog = catalog
        self.serve_config = serve
        self.clock = clock if clock is not None else MonotonicClock()
        self._execute: ExecuteHook = execute if execute is not None else self._engine_execute
        self.obs = obs if obs is not None else default_obs()
        self._labels = {"router": f"r{next(_ROUTER_IDS)}"}
        self._loader_factory = loader_factory
        self._n_workers = n_workers
        self._executor = executor
        self.shards = tuple(
            Shard(index=index, catalog=sub, engine=self._build_engine(index, sub))
            for index, sub in enumerate(catalog.shards)
        )
        registry = self.obs.registry
        self._c_requests = registry.counter("router_requests_total", **self._labels)
        self._c_shed = registry.counter("router_shed_total", **self._labels)
        self._c_coalesced = registry.counter("router_coalesced_total", **self._labels)
        self._c_executions = registry.counter("router_executions_total", **self._labels)
        self._c_prefetch = registry.counter(
            "router_prefetch_refreshes_total", **self._labels
        )
        self._c_errors = registry.counter("router_errors_total", **self._labels)
        self._h_latency = registry.histogram(
            "router_request_latency_seconds", **self._labels
        )
        self._h_queue_wait = registry.histogram(
            "router_queue_wait_seconds", **self._labels
        )
        self._g_depth = registry.gauge("router_depth", **self._labels)
        self._flights: dict[Hashable, _Flight] = {}
        self._depth = 0
        self._prefetch = _PrefetchState()
        self._prefetch_task: asyncio.Task | None = None

    def _build_engine(self, index: int, sub: ProductCatalog) -> QueryEngine:
        """One shard engine, its metrics labelled ``{router, shard}``.

        The labels are the stats-survival contract: a rebuilt engine
        (:meth:`rebuild_shard`) re-requests the same counters from the
        registry and keeps accumulating where its predecessor stopped.
        """
        return QueryEngine(
            sub,
            loader=(
                self._loader_factory(index)
                if self._loader_factory is not None
                else ProductLoader(self.serve_config)
            ),
            serve=self.serve_config,
            n_workers=self._n_workers,
            executor=self._executor,
            obs=self.obs,
            obs_labels={**self._labels, "shard": str(index)},
        )

    def rebuild_shard(self, index: int) -> Shard:
        """Replace one shard's engine and loader in place (quarantine repair).

        Closes the old engine's worker pool, builds a fresh engine (and, via
        ``loader_factory``, a fresh loader), and clears the shard's error /
        quarantine state so resolution routes to it again.  The shard's
        ``serve_*`` metric series carries over unchanged — the counters live
        in the obs registry keyed by ``{router, shard}``, not on the engine —
        so :attr:`Shard.engine`'s ``stats`` survives the swap.
        """
        shard = self.shards[index]
        shard.engine.close()
        shard.engine = self._build_engine(index, shard.catalog)
        shard.errors = 0
        shard.quarantined = False
        self.obs.log.info("router.shard_rebuilt", shard=index, **self._labels)
        return shard

    @property
    def stats(self) -> RouterStats:
        """Snapshot of the registry-backed counters as a :class:`RouterStats`."""
        return RouterStats(
            requests=int(self._c_requests.value),
            shed=int(self._c_shed.value),
            coalesced=int(self._c_coalesced.value),
            executions=int(self._c_executions.value),
            prefetch_refreshes=int(self._c_prefetch.value),
            errors=int(self._c_errors.value),
        )

    # -- resolution --------------------------------------------------------

    @property
    def quarantined_shards(self) -> tuple[int, ...]:
        return tuple(shard.index for shard in self.shards if shard.quarantined)

    def resolve(self, request: TileRequest) -> tuple[int, CatalogEntry]:
        """The (shard, product) serving one request, skipping quarantine.

        Identical policy to the unsharded engine
        (:func:`~repro.serve.query.select_entry` over global registration
        order) — except that products on quarantined shards are invisible,
        so a region covered by more than one product keeps being served
        when one shard degrades.
        """
        excluded = frozenset(self.quarantined_shards)
        candidates = self.catalog.query(
            bbox=request.bbox, variable=request.variable, exclude_shards=excluded
        )
        try:
            entry = select_entry(candidates, request)
        except LookupError:
            if excluded:
                raise LookupError(
                    f"no healthy product serves variable {request.variable!r} over "
                    f"bbox {request.bbox}: shards {sorted(excluded)} are quarantined"
                ) from None
            raise
        return self.catalog.shard_of(entry.key), entry

    def flight_key(self, request: TileRequest) -> tuple[int, Hashable]:
        """The (shard, single-flight identity) of one request.

        The identity is the planned tile-fingerprint set — two requests
        whose bboxes cover the same tiles of the same product at the same
        zoom coalesce even when the bboxes differ.
        """
        shard, entry = self.resolve(request)
        plan = plan_request(entry, request, self.serve_config)
        if plan.tile_keys:
            return shard, plan.tile_keys
        return shard, (entry.key, request.variable, plan.zoom, request.bbox)

    # -- serving -----------------------------------------------------------

    async def _engine_execute(self, shard: Shard, request: TileRequest) -> TileResponse:
        return shard.engine.query(request)

    async def query(self, request: TileRequest) -> TileResponse:
        """Serve one request through the service tier.

        Returns the unified :class:`TileResponse` with the service-tier
        fields (``shard``, ``coalesced``, ``queue_wait_s``) filled in.
        Raises :class:`RouterOverloadedError` when shed, ``LookupError``
        when no healthy product matches, and propagates the underlying
        engine error (to every coalesced waiter) when execution fails.

        Every request runs inside a ``router.request`` span (attributes:
        shard, coalesced, outcome ``served``/``shed``/``unroutable``) whose
        children are the shard engine's ``engine.query_batch`` span and,
        below it, the loader's ``loader.fetch`` — the end-to-end trace.
        """
        with self.obs.span(
            "router.request", variable=request.variable, zoom=request.zoom
        ) as span:
            return await self._query(request, span)

    async def _query(self, request: TileRequest, span) -> TileResponse:
        arrived = self.clock.now()
        self._c_requests.inc()
        try:
            shard_id, key = self.flight_key(request)
        except LookupError:
            self._c_errors.inc()
            span.set(outcome="unroutable")
            raise
        self._prefetch.popularity[key] += 1
        self._prefetch.requests[key] = request

        flight = self._flights.get(key)
        if flight is not None:
            self._c_coalesced.inc()
            span.set(shard=flight.shard, coalesced=True, outcome="served")
            response = await asyncio.shield(flight.future)
            return self._routed(request, response, flight.shard, arrived, coalesced=True)

        if self._depth >= self.config.max_queue_depth:
            self._c_shed.inc()
            span.set(outcome="shed", depth=self._depth)
            # Dedup keeps an overload burst to one ring slot per window.
            self.obs.log.warning(
                "router.shed",
                depth=self._depth,
                max_queue_depth=self.config.max_queue_depth,
                **self._labels,
            )
            raise RouterOverloadedError(
                depth=self._depth,
                max_queue_depth=self.config.max_queue_depth,
                retry_after_s=self.config.retry_after_s,
            )

        span.set(shard=shard_id, coalesced=False, outcome="served")
        response = await self._fly(key, shard_id, request, prefetch=False)
        return self._routed(request, response, shard_id, arrived, coalesced=False)

    async def _fly(
        self, key: Hashable, shard_id: int, request: TileRequest, prefetch: bool
    ) -> TileResponse:
        """Run one underlying execution with the flight registered under ``key``."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # Retrieve the exception even when nobody coalesced onto the flight,
        # so a failed execution never logs "exception was never retrieved".
        future.add_done_callback(
            lambda fut: fut.exception() if not fut.cancelled() else None
        )
        shard = self.shards[shard_id]
        self._flights[key] = _Flight(
            future=future, shard=shard_id, prefetch=prefetch, started=self.clock.now()
        )
        self._depth += 1
        self._g_depth.set(self._depth)
        try:
            response = await self._execute(shard, request)
        except BaseException as exc:
            self._note_failure(shard, exc)
            if not future.done():
                future.set_exception(exc)
            raise
        else:
            self._c_executions.inc()
            if prefetch:
                self._c_prefetch.inc()
            if not future.done():
                future.set_result(response)
            return response
        finally:
            del self._flights[key]
            self._depth -= 1
            self._g_depth.set(self._depth)

    def _note_failure(self, shard: Shard, exc: BaseException) -> None:
        self._c_errors.inc()
        if isinstance(exc, Level3ProductError):
            shard.errors += 1
            if shard.errors >= self.config.quarantine_errors and not shard.quarantined:
                shard.quarantined = True
                self.obs.log.error(
                    "router.shard_quarantined",
                    shard=shard.index,
                    errors=shard.errors,
                    cause=type(exc).__name__,
                    **self._labels,
                )

    def _routed(
        self,
        request: TileRequest,
        response: TileResponse,
        shard: int,
        arrived: float,
        coalesced: bool,
    ) -> TileResponse:
        elapsed = self.clock.now() - arrived
        service = response.seconds
        queue_wait = max(elapsed - service, 0.0)
        self._h_latency.observe(elapsed)
        self._h_queue_wait.observe(queue_wait)
        # Each caller (including every coalesced joiner) gets its own
        # response object with its own timing, sharing the executing
        # request's tiles/fingerprints dicts.
        return replace(
            response,
            request=request,
            shard=shard,
            coalesced=coalesced,
            queue_wait_s=queue_wait,
        )

    def serve(self, requests: Sequence[TileRequest]) -> list[TileResponse]:
        """Synchronous convenience: serve a batch concurrently on a fresh loop.

        Shed requests propagate their :class:`RouterOverloadedError`; use
        :meth:`query` directly (with ``asyncio.gather(...,
        return_exceptions=True)``) to collect partial results under load.
        """

        async def _run() -> list[TileResponse]:
            return list(await asyncio.gather(*(self.query(req) for req in requests)))

        return asyncio.run(_run())

    # -- live invalidation ---------------------------------------------------

    def invalidate_tiles(self, keys: Sequence[TileKey]) -> int:
        """Drop exactly the given tiles from the owning shards' LRU caches.

        Keys are grouped by product and routed to the shard that owns each
        product (unknown products are ignored — the tile cannot be cached
        anywhere).  Returns how many tiles were actually resident.  This is
        the router half of the ingest tier's dirty-tile invalidation:
        untouched tiles on every shard stay warm.
        """
        dropped = 0
        by_shard: dict[int, list[TileKey]] = {}
        for key in keys:
            try:
                shard_id = self.catalog.shard_of(key[0])
            except KeyError:
                continue
            by_shard.setdefault(shard_id, []).append(key)
        for shard_id, shard_keys in by_shard.items():
            dropped += self.shards[shard_id].engine.invalidate_tiles(shard_keys)
        return dropped

    # -- prefetch ----------------------------------------------------------

    async def prefetch_once(self) -> int:
        """Refresh the hottest flight keys; returns how many were refreshed.

        Skips keys already in flight (clients coalesce onto those anyway)
        and keys whose resolution changed since they were recorded (the
        popularity entry is stale).  Prefetch executions bypass admission —
        they are background work and never steal a client's slot — and do
        not count as requests, but clients arriving mid-refresh coalesce
        onto the refresh future like onto any other flight.
        """
        if self.config.prefetch_top_k < 1:
            return 0
        refreshed = 0
        for key, _ in self._prefetch.popularity.most_common(self.config.prefetch_top_k):
            if key in self._flights:
                continue
            request = self._prefetch.requests.get(key)
            if request is None:
                continue
            try:
                shard_id, current_key = self.flight_key(request)
            except LookupError:
                continue
            if current_key != key:
                self._prefetch.popularity.pop(key, None)
                self._prefetch.requests.pop(key, None)
                continue
            try:
                await self._fly(key, shard_id, request, prefetch=True)
            except Exception:
                continue  # failure already recorded by _note_failure
            refreshed += 1
        return refreshed

    def start_prefetcher(self) -> asyncio.Task:
        """Start the background refresh loop (requires a running loop)."""
        if self._prefetch_task is not None and not self._prefetch_task.done():
            return self._prefetch_task

        async def _loop() -> None:
            while True:
                await self.clock.sleep(self.config.prefetch_interval_s)
                await self.prefetch_once()

        self._prefetch_task = asyncio.get_running_loop().create_task(_loop())
        return self._prefetch_task

    async def stop_prefetcher(self) -> None:
        task, self._prefetch_task = self._prefetch_task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "RequestRouter":
        self.start_prefetcher()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop_prefetcher()

    # -- health ------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Distinct executions currently in flight (prefetch included)."""
        return self._depth

    def health(self) -> dict[str, object]:
        """The router health summary: per-shard state plus tier counters."""
        stats = self.stats
        return {
            "shards": [shard.health_row() for shard in self.shards],
            "quarantined": list(self.quarantined_shards),
            "healthy_shards": sum(1 for shard in self.shards if not shard.quarantined),
            "depth": self._depth,
            "requests": stats.requests,
            "shed": stats.shed,
            "shed_rate": round(stats.shed_rate, 4),
            "coalesced": stats.coalesced,
            "coalescing_ratio": round(stats.coalescing_ratio, 4),
            "executions": stats.executions,
            "prefetch_refreshes": stats.prefetch_refreshes,
            "errors": stats.errors,
        }
