"""Live products: in-place pyramid updates and in-memory serving.

Two pieces the ingest tier (:mod:`repro.ingest`) builds on:

* :class:`IncrementalPyramidBuilder` keeps one :class:`~repro.serve.pyramid.TilePyramid`
  current as its source mosaic evolves, rebuilding **only** the tiles whose
  footprint contains a dirty base cell.  Identity argument: the 2x2
  reduction kernels (:mod:`repro.kernels.pyramid`) are strictly local —
  output cell ``(i, j)`` reads children ``(2i..2i+1, 2j..2j+1)`` only — so
  running the real kernel on the even-aligned parent slice of one tile
  produces bit-for-bit the block a full-array reduction would.  After an
  update the pyramid equals a from-scratch :func:`~repro.serve.pyramid.build_pyramid`
  of the new mosaic, byte for byte, at a cost proportional to the dirty
  footprint rather than the grid.
* :class:`LivePyramidLoader` serves installed in-memory pyramids (falling
  back to npz decode for everything else), refines tile provenance with
  per-tile-region **revisions** (a tile's fingerprint advances only when an
  ingest actually rebuilt it), and carries the stale-while-revalidate flag
  the engine stamps onto responses while a rebuild is in flight.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_SERVE, ServeConfig
from repro.kernels import resolve_backend
from repro.kernels.pyramid import reduce_coverage, reduce_mean
from repro.l3.product import Level3Grid
from repro.serve.catalog import CatalogEntry
from repro.serve.pyramid import TilePyramid, _weight_layer, tiles_for_cells
from repro.serve.query import ProductLoader, TileKey

__all__ = ["IncrementalPyramidBuilder", "LivePyramidLoader", "TileAddress"]

#: Address of one pyramid tile: (zoom, tile_row, tile_col).
TileAddress = tuple[int, int, int]


class IncrementalPyramidBuilder:
    """Keep a tile pyramid current by rebuilding only its dirty tiles.

    Owns (and mutates in place) the pyramid passed in — build it once from
    the seed mosaic with :func:`~repro.serve.pyramid.build_pyramid`, then
    call :meth:`update` with each refreshed mosaic snapshot and the dirty
    flat cell indices reported by
    :meth:`repro.l3.merge.MosaicAccumulator.add`.

    ``revisions`` maps every rebuilt tile address to the number of times it
    was rebuilt; :class:`LivePyramidLoader` folds it into the per-tile
    provenance fingerprints.  ``last_rebuilt`` records the addresses of the
    most recent update, so tests can assert *exactly* which tiles were
    touched.
    """

    def __init__(
        self,
        pyramid: TilePyramid,
        serve: ServeConfig = DEFAULT_SERVE,
        backend: str | None = None,
    ) -> None:
        if pyramid.tile_size != serve.tile_size:
            raise ValueError(
                f"pyramid tile_size {pyramid.tile_size} does not match the "
                f"serve config tile_size {serve.tile_size}"
            )
        self.pyramid = pyramid
        self.serve = serve
        self.backend = resolve_backend(backend)
        self.revisions: dict[TileAddress, int] = {}
        self.last_rebuilt: tuple[TileAddress, ...] = ()
        self.n_updates = 0

    def update(self, product: Level3Grid, dirty_cells: np.ndarray) -> list[TileAddress]:
        """Fold one refreshed mosaic into the pyramid; return rebuilt tiles.

        ``product`` is the full new snapshot (cells outside ``dirty_cells``
        must be unchanged — the :class:`~repro.l3.merge.MosaicAccumulator`
        contract); ``dirty_cells`` are flat row-major base-grid indices.
        Every level's tiles overlapping the dirty footprint are recomputed
        with the real reduction kernels on even-aligned parent slices, so
        the result is byte-identical to a full rebuild.  Returns the
        rebuilt tile addresses across all levels (zoom 0 included — its
        tiles changed by direct value writes).
        """
        base = self.pyramid.levels[0]
        if product.grid != base.grid:
            raise ValueError("product grid does not match the pyramid base grid")
        dirty = np.asarray(dirty_cells, dtype=np.int64).ravel()
        if dirty.size == 0:
            self.last_rebuilt = ()
            self.n_updates += 1
            self._refresh_metadata(product)
            return []

        ts = self.pyramid.tile_size
        base_shape = base.grid.shape
        names = tuple(base.variables)

        # Level 0: write the dirty cells of every value/weight layer and of
        # the coverage mask straight from the new snapshot (same conversion
        # path as build_pyramid, restricted to the dirty indices).
        for name in names:
            layer = np.asarray(product.variables[name], dtype=float).ravel()[dirty]
            weight = _weight_layer(product, name, self.serve.weight_variable).ravel()[dirty]
            base.variables[name].ravel()[dirty] = layer
            base.weights[name].ravel()[dirty] = np.where(np.isfinite(layer), weight, 0.0)
        base_weight = _weight_layer(
            product, self.serve.weight_variable, self.serve.weight_variable
        ).ravel()[dirty]
        base.coverage.ravel()[dirty] = (base_weight > 0).astype(float)

        rebuilt: list[TileAddress] = [
            (0, row, col) for row, col in tiles_for_cells(dirty, base_shape, 0, ts)
        ]

        # Overview levels: per dirty tile, run the real 2x2 kernels on the
        # even-aligned parent slice.  The slice starts at 2*ts*row (always
        # even), so its reduction is the corresponding block of the
        # full-array reduction, bit for bit; odd slice edges only occur at
        # the grid boundary, exactly where the full-array kernel pads too.
        for zoom in range(1, self.pyramid.n_levels):
            prev = self.pyramid.levels[zoom - 1]
            level = self.pyramid.levels[zoom]
            for row, col in tiles_for_cells(dirty, base_shape, zoom, ts):
                r0, r1 = 2 * ts * row, 2 * ts * (row + 1)
                c0, c1 = 2 * ts * col, 2 * ts * (col + 1)
                for name in names:
                    values, weights = reduce_mean(
                        prev.variables[name][r0:r1, c0:c1],
                        prev.weights[name][r0:r1, c0:c1],
                        backend=self.backend,
                    )
                    out_rows, out_cols = values.shape
                    level.variables[name][
                        ts * row : ts * row + out_rows, ts * col : ts * col + out_cols
                    ] = values
                    level.weights[name][
                        ts * row : ts * row + out_rows, ts * col : ts * col + out_cols
                    ] = weights
                coverage = reduce_coverage(prev.coverage[r0:r1, c0:c1], backend=self.backend)
                level.coverage[
                    ts * row : ts * row + coverage.shape[0],
                    ts * col : ts * col + coverage.shape[1],
                ] = coverage
                rebuilt.append((zoom, row, col))

        for address in rebuilt:
            self.revisions[address] = self.revisions.get(address, 0) + 1
        self.last_rebuilt = tuple(rebuilt)
        self.n_updates += 1
        self._refresh_metadata(product)
        return rebuilt

    def _refresh_metadata(self, product: Level3Grid) -> None:
        """Mirror build_pyramid's metadata for the refreshed source product."""
        metadata = dict(product.metadata)
        metadata.update(
            {
                "tile_size": self.pyramid.tile_size,
                "weight_variable": self.serve.weight_variable,
                "pyramid_variables": list(self.pyramid.levels[0].variables),
                "n_levels": self.pyramid.n_levels,
                "kernel_backend": self.backend,
            }
        )
        self.pyramid.metadata = metadata


class LivePyramidLoader(ProductLoader):
    """A product loader that can serve installed in-memory pyramids.

    Behaves exactly like :class:`~repro.serve.query.ProductLoader` for
    batch products; for keys installed via :meth:`install` it serves the
    live pyramid object without touching the filesystem, appends the
    per-tile-region revision to tile fingerprints, and reports the
    stale-while-revalidate flag while the ingest tier is mid-rebuild.
    """

    def __init__(self, serve: ServeConfig = DEFAULT_SERVE, backend: str | None = None) -> None:
        super().__init__(serve, backend)
        self._live: dict[str, TilePyramid] = {}
        self._revisions: dict[str, dict[TileAddress, int]] = {}
        self._stale: set[str] = set()

    def install(
        self,
        key: str,
        pyramid: TilePyramid,
        revisions: dict[TileAddress, int] | None = None,
    ) -> None:
        """Serve ``key`` from an in-memory pyramid from now on.

        ``revisions`` may be the live dict of an
        :class:`IncrementalPyramidBuilder` — it is read at fingerprint time,
        so later in-place updates are picked up without re-installing.
        """
        self._live[key] = pyramid
        if revisions is not None:
            self._revisions[key] = revisions
        self._stale.discard(key)

    def installed(self, key: str) -> bool:
        return key in self._live

    def decode(self, entry: CatalogEntry) -> TilePyramid:
        live = self._live.get(entry.key)
        if live is not None:
            return live
        return super().decode(entry)

    def _window_tiles(self, entry, needed):
        # Installed keys serve from the in-memory pyramid (which the ingest
        # tier mutates in place); the on-disk blob may be a revision behind,
        # so the raw windowed-read fast path must not bypass it.
        if entry.key in self._live:
            return None
        return super()._window_tiles(entry, needed)

    def tile_fingerprint(self, key: TileKey) -> str:
        base = super().tile_fingerprint(key)
        revisions = self._revisions.get(key[0])
        if revisions is None:
            return base
        return f"{base}#r{revisions.get((key[2], key[3], key[4]), 0)}"

    # -- stale-while-revalidate ---------------------------------------------

    def is_stale(self, product_key: str) -> bool:
        return product_key in self._stale

    def mark_stale(self, product_key: str) -> None:
        """Flag a product as mid-rebuild: responses carry ``stale=True``."""
        self._stale.add(product_key)

    def clear_stale(self, product_key: str) -> None:
        self._stale.discard(product_key)
