"""Clocks for the async service tier: wall time and a deterministic virtual clock.

Everything time-dependent in :mod:`repro.serve.router` — latency
measurement, prefetch pacing, open-loop arrival generation — goes through a
tiny clock interface (``now()`` / ``sleep()`` / ``advance()``) instead of
``time`` and ``asyncio.sleep`` directly.  Production code uses
:class:`MonotonicClock`; tests and large simulated traffic runs use
:class:`VirtualClock`, which never touches real time: sleepers park on
futures and :meth:`VirtualClock.advance` wakes them **in deadline order**,
draining the event loop between wake-ups so a woken task runs to its next
await before a later deadline fires.  That is what makes the router's
concurrency tests reproducible (no real sleeps, no scheduler races) and
lets the open-loop simulator push millions of Poisson arrivals through the
router in seconds of real time.
"""

from __future__ import annotations

import asyncio
import heapq
import time


class MonotonicClock:
    """The real clock: ``time.monotonic`` plus ``asyncio.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(max(seconds, 0.0))

    async def advance(self, seconds: float) -> None:
        """Pacing hook: on the real clock, advancing *is* sleeping."""
        await asyncio.sleep(max(seconds, 0.0))


class VirtualClock:
    """A manually advanced clock for deterministic asyncio tests.

    ``sleep(dt)`` parks the caller on a future; ``advance(dt)`` moves
    virtual time forward, resolving due sleepers one at a time in deadline
    order (ties break by sleep order) and yielding to the event loop after
    each wake-up, so a woken coroutine runs up to its next suspension
    before the next deadline fires.  ``now()`` is exact — no real time
    passes, ever — which makes latency arithmetic in tests bit-exact.
    """

    #: Event-loop yields after each wake-up; enough for a woken task to
    #: chain through several plain awaits (future results propagate via
    #: ``call_soon``) before the clock moves again.
    _DRAIN_ROUNDS = 25

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._seq = 0
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []

    def now(self) -> float:
        return self._now

    @property
    def n_sleepers(self) -> int:
        """Parked sleepers (cancelled ones are excluded lazily on wake)."""
        return sum(1 for _, _, fut in self._sleepers if not fut.done())

    def next_delay(self) -> float | None:
        """Seconds until the earliest pending sleeper, or ``None``."""
        pending = [d for d, _, fut in self._sleepers if not fut.done()]
        if not pending:
            return None
        return max(min(pending) - self._now, 0.0)

    def tick(self, seconds: float) -> float:
        """Advance time *synchronously* without waking sleepers.

        Models synchronous service time inside otherwise-async tests: a
        handler that ``tick(0.004)``s mid-request makes every ``now()``
        delta — span durations, latency arithmetic — exactly 0.004 with no
        event-loop round trip.  Sleepers whose deadlines pass stay parked
        until the next :meth:`advance`/:meth:`advance_to_next` (which wake
        them immediately, their deadlines being already due).
        """
        if seconds < 0:
            raise ValueError("cannot tick a clock backwards")
        self._now += float(seconds)
        return self._now

    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        heapq.heappush(self._sleepers, (self._now + float(seconds), self._seq, fut))
        self._seq += 1
        await fut

    async def advance(self, seconds: float) -> None:
        """Move virtual time forward, waking due sleepers in deadline order."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        target = self._now + float(seconds)
        while self._sleepers and self._sleepers[0][0] <= target:
            deadline, _, fut = heapq.heappop(self._sleepers)
            self._now = max(self._now, deadline)
            if not fut.done():  # skip sleepers whose task was cancelled
                fut.set_result(None)
                await self._drain()
        self._now = target
        await self._drain()

    async def advance_to_next(self) -> bool:
        """Advance exactly to the earliest pending deadline (if any)."""
        delay = self.next_delay()
        if delay is None:
            await self._drain()
            return False
        await self.advance(delay)
        return True

    async def _drain(self) -> None:
        for _ in range(self._DRAIN_ROUNDS):
            await asyncio.sleep(0)
