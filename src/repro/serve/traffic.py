"""Zipf-distributed traffic over the serving tier, with scaling reports.

Real map-tile traffic is heavy-tailed: a few popular regions take most of
the requests.  :class:`TrafficSimulator` reproduces that shape — it carves
the catalog's footprint into candidate regions, ranks them with a Zipf law
(``p(rank) ∝ rank^-s``), and mixes variables and zoom levels per the
configured request mix.  The heavy tail is exactly what makes the LRU tile
cache and the router's prefetcher pay: the hot regions are served from
memory while the cold tail does the decoding.

Two load-generation modes:

* **closed loop** (:meth:`TrafficSimulator.run`) drives a
  :class:`~repro.serve.query.QueryEngine` in batches of concurrent
  requests — the next batch is only submitted when the previous one
  finishes.  Per-request latency is reported split into **queue wait**
  (time spent behind earlier batches of the run) and **service** (the
  request's own batch execution), because conflating the two hides
  queueing collapse behind a flat "latency" number.
* **open loop** (:meth:`TrafficSimulator.run_open_loop`) fires requests at
  a :class:`~repro.serve.router.RequestRouter` on a Poisson arrival
  process at a configured offered rate, independent of completions — the
  regime where admission control matters.  On a
  :class:`~repro.serve.clock.VirtualClock` the arrivals are simulated
  (deterministically) up to millions of requests in seconds of real time;
  the report carries p50/p95/p99 latency, shed rate and coalescing ratio.

The emitted reports follow the repo's simulated-cluster convention (the
:class:`~repro.distributed.cluster.ClusterCostModel` scaling-table style of
Tables II/V): the *measured* serving behaviour is routed through the
calibrated cost model to predict throughput and latency across executor or
shard counts, with speedups referenced to the first grid point.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.distributed.cluster import ClusterCostModel
from repro.serve.query import QueryEngine, QueryStats, TileRequest, TileResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serve.router import RequestRouter, RouterStats

#: Per-configuration dispatch overhead of the serving scaling table.  The
#: Table II/V default (0.3 s) models Spark *job submission*; tile serving
#: dispatches in-process tasks, so its scheduling cost is milliseconds —
#: with the Spark constant a sub-second traffic run would flatten to ~1x.
SERVE_DISPATCH_OVERHEAD_S = 0.005


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one simulated traffic run (region mix, volume, batching)."""

    #: Total number of tile requests to issue.
    n_requests: int = 256
    #: Concurrent requests per batch (the engine batches decodes within one).
    batch_size: int = 16
    #: Number of candidate regions carved out of the catalog footprint.
    n_regions: int = 12
    #: Zipf exponent of the region popularity ranking (larger = hotter head).
    zipf_exponent: float = 1.1
    #: Linear size of each region as a fraction of the catalog extent.
    region_fraction: float = 0.3
    #: Variables in the request mix, with optional weights (uniform default).
    variables: tuple[str, ...] = ("freeboard_mean",)
    variable_weights: tuple[float, ...] | None = None
    #: Zoom levels in the request mix (clamped per product by the engine).
    zoom_levels: tuple[int, ...] = (0, 1)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if not 0.0 < self.region_fraction <= 1.0:
            raise ValueError("region_fraction must be in (0, 1]")
        if not self.variables:
            raise ValueError("variables must name at least one layer")
        if self.variable_weights is not None and (
            len(self.variable_weights) != len(self.variables)
            or any(w < 0 for w in self.variable_weights)
            or sum(self.variable_weights) <= 0
        ):
            raise ValueError("variable_weights must align with variables and sum > 0")
        if not self.zoom_levels or any(z < 0 for z in self.zoom_levels):
            raise ValueError("zoom_levels must be non-empty and non-negative")


def _percentile_ms(values: np.ndarray, percentile: float | None) -> float:
    if values.size == 0:
        return 0.0
    if percentile is None:
        return float(values.mean() * 1e3)
    return float(np.percentile(values, percentile) * 1e3)


@dataclass
class TrafficResult:
    """Measured outcome of one closed-loop traffic run.

    Per-request time is reported **split**: ``service_s`` is the request's
    own batch execution time, ``queue_wait_s`` the time it spent waiting
    behind the run's earlier batches, and ``latencies_s`` their sum (the
    time-in-system a client would observe).  The split matters because a
    saturated engine shows flat service times while queue wait grows
    without bound — one conflated number hides that.

    ``stats`` is a frozen **per-run snapshot** (the difference of the
    engine's cumulative counters across the run), so reports never include
    traffic served before the run and never mutate retroactively when the
    engine keeps serving.
    """

    n_requests: int
    seconds: float
    latencies_s: np.ndarray
    stats: QueryStats
    region_counts: dict[int, int] = field(default_factory=dict)
    responses: list[TileResponse] = field(default_factory=list)
    queue_wait_s: np.ndarray = field(default_factory=lambda: np.empty(0))
    service_s: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.seconds if self.seconds > 0 else float("inf")

    def latency_ms(self, percentile: float | None = None) -> float:
        """Mean time-in-system latency in ms, or a percentile when given."""
        return _percentile_ms(self.latencies_s, percentile)

    def service_ms(self, percentile: float | None = None) -> float:
        """Mean (or percentile) service time in ms — the batch execution."""
        return _percentile_ms(self.service_s, percentile)

    def queue_wait_ms(self, percentile: float | None = None) -> float:
        """Mean (or percentile) queue wait in ms — time behind earlier batches."""
        return _percentile_ms(self.queue_wait_s, percentile)

    def summary_row(self) -> dict[str, object]:
        """One table row: volume, throughput, latency split, cache behaviour."""
        return {
            "Requests": self.n_requests,
            "Serve Time (s)": round(self.seconds, 3),
            "Throughput (req/s)": round(self.throughput_rps, 1),
            "Mean Latency (ms)": round(self.latency_ms(), 2),
            "Mean Queue Wait (ms)": round(self.queue_wait_ms(), 2),
            "Mean Service (ms)": round(self.service_ms(), 2),
            "P95 Latency (ms)": round(self.latency_ms(95.0), 2),
            "Tile Hit Rate": round(self.stats.hit_rate, 3),
            "Product Loads": self.stats.loads,
        }


def scaling_rows(
    result: TrafficResult,
    cost_model: ClusterCostModel | None = None,
    executor_counts: Sequence[int] = (1, 2, 4),
) -> list[dict[str, object]]:
    """Throughput/latency table across executor counts, cost-model style.

    Independent requests parallelise like the cost model's reduce profile
    (they share nothing but the catalog); each configuration pays one
    dispatch overhead (:data:`SERVE_DISPATCH_OVERHEAD_S` by default — not
    the Spark job-submission constant).  Speedups are referenced to the
    first grid point, exactly like the Table II/V scaling tables.
    """
    model = (
        cost_model
        if cost_model is not None
        else ClusterCostModel(map_overhead_s=SERVE_DISPATCH_OVERHEAD_S)
    )
    baseline_s = max(result.seconds, model.min_time_s)

    def served(executors: int) -> float:
        return model.reduce_time(baseline_s, executors, 1) + model.map_time(executors, 1)

    counts = tuple(executor_counts)
    if not counts:
        raise ValueError("executor_counts must be non-empty")
    ref = served(counts[0])
    rows: list[dict[str, object]] = []
    for executors in counts:
        total = served(executors)
        scale = total / baseline_s
        rows.append(
            {
                "Executors": executors,
                "Serve Time (s)": round(total, 3),
                "Throughput (req/s)": round(result.n_requests / total, 1),
                "Mean Latency (ms)": round(result.latency_ms() * scale, 2),
                "P95 Latency (ms)": round(result.latency_ms(95.0) * scale, 2),
                "Speedup": round(ref / total, 2),
            }
        )
    return rows


@dataclass
class OpenLoopResult:
    """Measured outcome of one open-loop (Poisson-arrival) run.

    ``stats`` is a per-run delta snapshot of the router's counters, so the
    shed rate and coalescing ratio describe *this* run only.  The latency
    arrays cover completed requests; shed requests never enter them — the
    point of admission control is that rejection is immediate, and folding
    zero-latency rejections into the percentiles would flatter the tail.
    """

    n_offered: int
    arrival_rate_rps: float
    seconds: float
    latencies_s: np.ndarray
    queue_wait_s: np.ndarray
    service_s: np.ndarray
    stats: "RouterStats"
    n_errors: int = 0

    @property
    def n_completed(self) -> int:
        return int(self.latencies_s.size)

    @property
    def n_shed(self) -> int:
        return self.stats.shed

    @property
    def shed_rate(self) -> float:
        return self.stats.shed_rate

    @property
    def coalescing_ratio(self) -> float:
        return self.stats.coalescing_ratio

    @property
    def throughput_rps(self) -> float:
        """Completed requests per (possibly virtual) second of the run."""
        return self.n_completed / self.seconds if self.seconds > 0 else float("inf")

    def latency_ms(self, percentile: float | None = None) -> float:
        """Mean time-in-system latency in ms, or a percentile when given."""
        return _percentile_ms(self.latencies_s, percentile)

    def service_ms(self, percentile: float | None = None) -> float:
        return _percentile_ms(self.service_s, percentile)

    def queue_wait_ms(self, percentile: float | None = None) -> float:
        return _percentile_ms(self.queue_wait_s, percentile)

    def summary_row(self) -> dict[str, object]:
        """One table row: offered load, outcome mix, tail latency."""
        return {
            "Offered (req/s)": round(self.arrival_rate_rps, 1),
            "Offered Requests": self.n_offered,
            "Completed": self.n_completed,
            "Throughput (req/s)": round(self.throughput_rps, 1),
            "Shed Rate": round(self.shed_rate, 4),
            "Coalescing Ratio": round(self.coalescing_ratio, 4),
            "P50 Latency (ms)": round(self.latency_ms(50.0), 2),
            "P95 Latency (ms)": round(self.latency_ms(95.0), 2),
            "P99 Latency (ms)": round(self.latency_ms(99.0), 2),
            "Errors": self.n_errors,
        }


def router_scaling_rows(
    result: OpenLoopResult,
    cost_model: ClusterCostModel | None = None,
    shard_counts: Sequence[int] = (1, 2, 4),
) -> list[dict[str, object]]:
    """Saturation throughput / latency across shard counts, cost-model style.

    The measured run's total service work (the sum of per-request service
    times — what the shard executors were actually busy doing) is routed
    through the calibrated cost model's reduce profile: shards share
    nothing, so they parallelise like independent reduce partitions, each
    configuration paying one dispatch overhead.  Latency percentiles are
    scaled by the same serve-time ratio, and speedups are referenced to the
    first grid point — exactly the Table II/V convention, with shard count
    in the executor column's role.
    """
    model = (
        cost_model
        if cost_model is not None
        else ClusterCostModel(map_overhead_s=SERVE_DISPATCH_OVERHEAD_S)
    )
    work_s = max(float(result.service_s.sum()), model.min_time_s)

    def served(shards: int) -> float:
        return model.reduce_time(work_s, shards, 1) + model.map_time(shards, 1)

    counts = tuple(shard_counts)
    if not counts:
        raise ValueError("shard_counts must be non-empty")
    ref = served(counts[0])
    rows: list[dict[str, object]] = []
    for shards in counts:
        total = served(shards)
        scale = total / work_s
        rows.append(
            {
                "Shards": shards,
                "Serve Time (s)": round(total, 3),
                "Saturation Throughput (req/s)": round(result.n_completed / total, 1),
                "P50 Latency (ms)": round(result.latency_ms(50.0) * scale, 2),
                "P99 Latency (ms)": round(result.latency_ms(99.0) * scale, 2),
                "Shed Rate": round(result.shed_rate, 4),
                "Coalescing Ratio": round(result.coalescing_ratio, 4),
                "Speedup": round(ref / total, 2),
            }
        )
    return rows


class TrafficSimulator:
    """Drive the serving tier with a reproducible heavy-tailed request stream.

    Construct with an engine for closed-loop runs (:meth:`run`), or with
    just a ``catalog`` (any object with an ``extent()``) to generate
    streams and drive a router open-loop (:meth:`run_open_loop`).
    """

    def __init__(
        self,
        engine: QueryEngine | None = None,
        config: TrafficConfig | None = None,
        *,
        catalog=None,
    ) -> None:
        if engine is None and catalog is None:
            raise ValueError("an engine or a catalog is required")
        self.engine = engine
        self.catalog = catalog if catalog is not None else engine.catalog
        self.config = config if config is not None else TrafficConfig()

    # -- request generation ------------------------------------------------

    def regions(self) -> list[tuple[float, float, float, float]]:
        """Candidate region bboxes inside the catalog footprint, rank-ordered.

        Deterministic in the traffic seed: region 0 is the most popular.
        """
        cfg = self.config
        x_min, y_min, x_max, y_max = self.catalog.extent()
        width = (x_max - x_min) * cfg.region_fraction
        height = (y_max - y_min) * cfg.region_fraction
        rng = np.random.default_rng(cfg.seed)
        boxes: list[tuple[float, float, float, float]] = []
        for _ in range(cfg.n_regions):
            x0 = float(rng.uniform(x_min, max(x_max - width, x_min)))
            y0 = float(rng.uniform(y_min, max(y_max - height, y_min)))
            boxes.append((x0, y0, x0 + width, y0 + height))
        return boxes

    def _stream_chunks(
        self, n_requests: int, chunk_size: int
    ) -> Iterator[list[tuple[int, TileRequest]]]:
        """The ``(region rank, request)`` stream in chunks (Zipf x mix).

        Chunked generation is what lets the open-loop driver offer millions
        of requests without materialising millions of request objects at
        once.  The chunking changes the RNG draw grouping, so two runs are
        comparable only at equal ``chunk_size``; :meth:`_stream` uses one
        chunk, preserving the historical draw order.
        """
        cfg = self.config
        boxes = self.regions()
        ranks = np.arange(1, cfg.n_regions + 1, dtype=float)
        popularity = ranks**-cfg.zipf_exponent
        popularity /= popularity.sum()
        weights = None
        if cfg.variable_weights is not None:
            weights = np.asarray(cfg.variable_weights, dtype=float)
            weights = weights / weights.sum()
        rng = np.random.default_rng(cfg.seed + 1)
        remaining = n_requests
        while remaining > 0:
            size = min(chunk_size, remaining)
            region_ids = rng.choice(cfg.n_regions, size=size, p=popularity)
            variables = rng.choice(
                np.asarray(cfg.variables, dtype=object), size=size, p=weights
            )
            zooms = rng.choice(np.asarray(cfg.zoom_levels), size=size)
            yield [
                (int(rid), TileRequest(bbox=boxes[int(rid)], variable=str(var), zoom=int(zoom)))
                for rid, var, zoom in zip(region_ids, variables, zooms)
            ]
            remaining -= size

    def _stream(self) -> list[tuple[int, TileRequest]]:
        """The full ``(region rank, request)`` stream (Zipf x variable/zoom mix)."""
        n = self.config.n_requests
        return next(self._stream_chunks(n, n))

    def generate(self) -> list[TileRequest]:
        """The full request stream (Zipf regions x variable/zoom mix)."""
        return [request for _, request in self._stream()]

    # -- execution ---------------------------------------------------------

    def run(self, keep_responses: bool = False) -> TrafficResult:
        """Issue the stream in batches and measure the serving behaviour.

        In the closed loop every request of batch *k* queues behind batches
        ``0..k-1``: its queue wait is the cumulative execution time of the
        earlier batches, its service time the execution of its own batch,
        and its reported latency their sum.
        """
        cfg = self.config
        stream = self._stream()
        before = replace(self.engine.stats)

        latencies: list[float] = []
        queue_waits: list[float] = []
        services: list[float] = []
        responses: list[TileResponse] = []
        region_counts: dict[int, int] = {}
        total = 0.0
        for start in range(0, len(stream), cfg.batch_size):
            chunk = stream[start : start + cfg.batch_size]
            batch_responses = self.engine.query_batch([req for _, req in chunk])
            waited = total
            batch_s = batch_responses[0].seconds if batch_responses else 0.0
            total += batch_s
            for (rank, _), response in zip(chunk, batch_responses):
                queue_waits.append(waited)
                services.append(response.seconds)
                latencies.append(waited + response.seconds)
                region_counts[rank] = region_counts.get(rank, 0) + 1
            if keep_responses:
                responses.extend(batch_responses)
        after = self.engine.stats
        run_stats = QueryStats(
            requests=after.requests - before.requests,
            batches=after.batches - before.batches,
            tile_hits=after.tile_hits - before.tile_hits,
            tile_misses=after.tile_misses - before.tile_misses,
            loads=after.loads - before.loads,
            seconds=after.seconds - before.seconds,
        )
        return TrafficResult(
            n_requests=len(stream),
            seconds=total,
            latencies_s=np.asarray(latencies),
            stats=run_stats,
            region_counts=dict(sorted(region_counts.items())),
            responses=responses,
            queue_wait_s=np.asarray(queue_waits),
            service_s=np.asarray(services),
        )

    def scaling_report(
        self,
        result: TrafficResult | None = None,
        cost_model: ClusterCostModel | None = None,
        executor_counts: Sequence[int] = (1, 2, 4),
    ) -> list[dict[str, object]]:
        """Run (if needed) and extrapolate across executor counts."""
        if result is None:
            result = self.run()
        return scaling_rows(result, cost_model=cost_model, executor_counts=executor_counts)

    # -- open loop ---------------------------------------------------------

    async def arun_open_loop(
        self,
        router: "RequestRouter",
        arrival_rate_rps: float,
        n_requests: int | None = None,
        chunk_size: int = 65536,
    ) -> OpenLoopResult:
        """Offer a Poisson arrival process to a router; measure the outcome.

        Open loop means arrivals never wait for completions: requests fire
        at exponentially distributed gaps (rate ``arrival_rate_rps``)
        regardless of how many are still in flight, which is the regime
        where admission control and coalescing earn their keep.  The driver
        paces through the router's clock — on a
        :class:`~repro.serve.clock.VirtualClock` the whole run is simulated
        (millions of arrivals finish in seconds of real time, with
        deterministic arrival gaps from the traffic seed).

        Shed requests (:class:`~repro.serve.router.RouterOverloadedError`)
        are counted by the router and excluded from the latency arrays;
        any other per-request failure increments ``n_errors``.
        """
        from repro.serve.router import RouterOverloadedError

        if arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        n = n_requests if n_requests is not None else self.config.n_requests
        clock = router.clock
        rng = np.random.default_rng(self.config.seed + 2)
        before = router.stats.snapshot()
        started = clock.now()
        loop = asyncio.get_running_loop()

        latencies: list[float] = []
        queue_waits: list[float] = []
        services: list[float] = []
        n_errors = 0
        pending: set[asyncio.Task] = set()

        def _settled(task: asyncio.Task) -> None:
            nonlocal n_errors
            pending.discard(task)
            if task.cancelled():
                return
            exc = task.exception()
            if exc is None:
                routed = task.result()
                latencies.append(routed.latency_s)
                queue_waits.append(routed.queue_wait_s)
                services.append(routed.service_s)
            elif not isinstance(exc, RouterOverloadedError):
                n_errors += 1  # shed requests are already counted by the router

        for chunk in self._stream_chunks(n, chunk_size):
            gaps = rng.exponential(1.0 / arrival_rate_rps, size=len(chunk))
            for (_, request), gap in zip(chunk, gaps):
                # advance(), not sleep(): a VirtualClock cannot move itself,
                # so the arrival driver is what carries time forward (waking
                # any due service sleepers along the way).
                await clock.advance(float(gap))
                task = loop.create_task(router.query(request))
                task.add_done_callback(_settled)
                pending.add(task)

        # Drain: arrivals have stopped, let the in-flight tail complete.
        advance_to_next = getattr(clock, "advance_to_next", None)
        while pending:
            for _ in range(8):
                await asyncio.sleep(0)
            if not pending:
                break
            if advance_to_next is not None and await advance_to_next():
                continue
            await asyncio.gather(*list(pending), return_exceptions=True)

        after = router.stats
        run_stats = type(after)(
            requests=after.requests - before.requests,
            shed=after.shed - before.shed,
            coalesced=after.coalesced - before.coalesced,
            executions=after.executions - before.executions,
            prefetch_refreshes=after.prefetch_refreshes - before.prefetch_refreshes,
            errors=after.errors - before.errors,
        )
        return OpenLoopResult(
            n_offered=n,
            arrival_rate_rps=arrival_rate_rps,
            seconds=clock.now() - started,
            latencies_s=np.asarray(latencies),
            queue_wait_s=np.asarray(queue_waits),
            service_s=np.asarray(services),
            stats=run_stats,
            n_errors=n_errors,
        )

    def run_open_loop(
        self,
        router: "RequestRouter",
        arrival_rate_rps: float,
        n_requests: int | None = None,
        chunk_size: int = 65536,
    ) -> OpenLoopResult:
        """Synchronous wrapper for :meth:`arun_open_loop` on a fresh loop."""
        return asyncio.run(
            self.arun_open_loop(
                router,
                arrival_rate_rps,
                n_requests=n_requests,
                chunk_size=chunk_size,
            )
        )
