"""Zipf-distributed traffic over the query engine, with a scaling report.

Real map-tile traffic is heavy-tailed: a few popular regions take most of
the requests.  :class:`TrafficSimulator` reproduces that shape — it carves
the catalog's footprint into candidate regions, ranks them with a Zipf law
(``p(rank) ∝ rank^-s``), mixes variables and zoom levels per the configured
request mix, and drives :class:`~repro.serve.query.QueryEngine` in batches
of concurrent requests.  The heavy tail is exactly what makes the LRU tile
cache pay: the hot regions are served from memory while the cold tail does
the decoding.

The emitted report follows the repo's simulated-cluster convention (the
:class:`~repro.distributed.cluster.ClusterCostModel` scaling-table style of
Tables II/V): the *measured* single-executor serving time is routed through
the calibrated cost model to predict throughput and latency across executor
counts, with speedups referenced to the first grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.distributed.cluster import ClusterCostModel
from repro.serve.query import QueryEngine, QueryStats, TileRequest, TileResponse

#: Per-configuration dispatch overhead of the serving scaling table.  The
#: Table II/V default (0.3 s) models Spark *job submission*; tile serving
#: dispatches in-process tasks, so its scheduling cost is milliseconds —
#: with the Spark constant a sub-second traffic run would flatten to ~1x.
SERVE_DISPATCH_OVERHEAD_S = 0.005


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one simulated traffic run (region mix, volume, batching)."""

    #: Total number of tile requests to issue.
    n_requests: int = 256
    #: Concurrent requests per batch (the engine batches decodes within one).
    batch_size: int = 16
    #: Number of candidate regions carved out of the catalog footprint.
    n_regions: int = 12
    #: Zipf exponent of the region popularity ranking (larger = hotter head).
    zipf_exponent: float = 1.1
    #: Linear size of each region as a fraction of the catalog extent.
    region_fraction: float = 0.3
    #: Variables in the request mix, with optional weights (uniform default).
    variables: tuple[str, ...] = ("freeboard_mean",)
    variable_weights: tuple[float, ...] | None = None
    #: Zoom levels in the request mix (clamped per product by the engine).
    zoom_levels: tuple[int, ...] = (0, 1)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if not 0.0 < self.region_fraction <= 1.0:
            raise ValueError("region_fraction must be in (0, 1]")
        if not self.variables:
            raise ValueError("variables must name at least one layer")
        if self.variable_weights is not None and (
            len(self.variable_weights) != len(self.variables)
            or any(w < 0 for w in self.variable_weights)
            or sum(self.variable_weights) <= 0
        ):
            raise ValueError("variable_weights must align with variables and sum > 0")
        if not self.zoom_levels or any(z < 0 for z in self.zoom_levels):
            raise ValueError("zoom_levels must be non-empty and non-negative")


@dataclass
class TrafficResult:
    """Measured outcome of one traffic run.

    ``stats`` is a frozen **per-run snapshot** (the difference of the
    engine's cumulative counters across the run), so reports never include
    traffic served before the run and never mutate retroactively when the
    engine keeps serving.
    """

    n_requests: int
    seconds: float
    latencies_s: np.ndarray
    stats: QueryStats
    region_counts: dict[int, int] = field(default_factory=dict)
    responses: list[TileResponse] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.seconds if self.seconds > 0 else float("inf")

    def latency_ms(self, percentile: float | None = None) -> float:
        """Mean request latency in ms, or a percentile when given."""
        if self.latencies_s.size == 0:
            return 0.0
        if percentile is None:
            return float(self.latencies_s.mean() * 1e3)
        return float(np.percentile(self.latencies_s, percentile) * 1e3)

    def summary_row(self) -> dict[str, object]:
        """One table row: volume, throughput, latency, cache behaviour."""
        return {
            "Requests": self.n_requests,
            "Serve Time (s)": round(self.seconds, 3),
            "Throughput (req/s)": round(self.throughput_rps, 1),
            "Mean Latency (ms)": round(self.latency_ms(), 2),
            "P95 Latency (ms)": round(self.latency_ms(95.0), 2),
            "Tile Hit Rate": round(self.stats.hit_rate, 3),
            "Product Loads": self.stats.loads,
        }


def scaling_rows(
    result: TrafficResult,
    cost_model: ClusterCostModel | None = None,
    executor_counts: Sequence[int] = (1, 2, 4),
) -> list[dict[str, object]]:
    """Throughput/latency table across executor counts, cost-model style.

    Independent requests parallelise like the cost model's reduce profile
    (they share nothing but the catalog); each configuration pays one
    dispatch overhead (:data:`SERVE_DISPATCH_OVERHEAD_S` by default — not
    the Spark job-submission constant).  Speedups are referenced to the
    first grid point, exactly like the Table II/V scaling tables.
    """
    model = (
        cost_model
        if cost_model is not None
        else ClusterCostModel(map_overhead_s=SERVE_DISPATCH_OVERHEAD_S)
    )
    baseline_s = max(result.seconds, model.min_time_s)

    def served(executors: int) -> float:
        return model.reduce_time(baseline_s, executors, 1) + model.map_time(executors, 1)

    counts = tuple(executor_counts)
    if not counts:
        raise ValueError("executor_counts must be non-empty")
    ref = served(counts[0])
    rows: list[dict[str, object]] = []
    for executors in counts:
        total = served(executors)
        scale = total / baseline_s
        rows.append(
            {
                "Executors": executors,
                "Serve Time (s)": round(total, 3),
                "Throughput (req/s)": round(result.n_requests / total, 1),
                "Mean Latency (ms)": round(result.latency_ms() * scale, 2),
                "P95 Latency (ms)": round(result.latency_ms(95.0) * scale, 2),
                "Speedup": round(ref / total, 2),
            }
        )
    return rows


class TrafficSimulator:
    """Drive a query engine with a reproducible heavy-tailed request stream."""

    def __init__(self, engine: QueryEngine, config: TrafficConfig | None = None) -> None:
        self.engine = engine
        self.config = config if config is not None else TrafficConfig()

    # -- request generation ------------------------------------------------

    def regions(self) -> list[tuple[float, float, float, float]]:
        """Candidate region bboxes inside the catalog footprint, rank-ordered.

        Deterministic in the traffic seed: region 0 is the most popular.
        """
        cfg = self.config
        x_min, y_min, x_max, y_max = self.engine.catalog.extent()
        width = (x_max - x_min) * cfg.region_fraction
        height = (y_max - y_min) * cfg.region_fraction
        rng = np.random.default_rng(cfg.seed)
        boxes: list[tuple[float, float, float, float]] = []
        for _ in range(cfg.n_regions):
            x0 = float(rng.uniform(x_min, max(x_max - width, x_min)))
            y0 = float(rng.uniform(y_min, max(y_max - height, y_min)))
            boxes.append((x0, y0, x0 + width, y0 + height))
        return boxes

    def _stream(self) -> list[tuple[int, TileRequest]]:
        """The full ``(region rank, request)`` stream (Zipf x variable/zoom mix)."""
        cfg = self.config
        boxes = self.regions()
        ranks = np.arange(1, cfg.n_regions + 1, dtype=float)
        popularity = ranks**-cfg.zipf_exponent
        popularity /= popularity.sum()
        weights = None
        if cfg.variable_weights is not None:
            weights = np.asarray(cfg.variable_weights, dtype=float)
            weights = weights / weights.sum()
        rng = np.random.default_rng(cfg.seed + 1)
        region_ids = rng.choice(cfg.n_regions, size=cfg.n_requests, p=popularity)
        variables = rng.choice(
            np.asarray(cfg.variables, dtype=object), size=cfg.n_requests, p=weights
        )
        zooms = rng.choice(np.asarray(cfg.zoom_levels), size=cfg.n_requests)
        return [
            (int(rid), TileRequest(bbox=boxes[int(rid)], variable=str(var), zoom=int(zoom)))
            for rid, var, zoom in zip(region_ids, variables, zooms)
        ]

    def generate(self) -> list[TileRequest]:
        """The full request stream (Zipf regions x variable/zoom mix)."""
        return [request for _, request in self._stream()]

    # -- execution ---------------------------------------------------------

    def run(self, keep_responses: bool = False) -> TrafficResult:
        """Issue the stream in batches and measure the serving behaviour."""
        cfg = self.config
        stream = self._stream()
        before = replace(self.engine.stats)

        latencies: list[float] = []
        responses: list[TileResponse] = []
        region_counts: dict[int, int] = {}
        total = 0.0
        for start in range(0, len(stream), cfg.batch_size):
            chunk = stream[start : start + cfg.batch_size]
            batch_responses = self.engine.query_batch([req for _, req in chunk])
            total += batch_responses[0].seconds if batch_responses else 0.0
            for (rank, _), response in zip(chunk, batch_responses):
                latencies.append(response.seconds)
                region_counts[rank] = region_counts.get(rank, 0) + 1
            if keep_responses:
                responses.extend(batch_responses)
        after = self.engine.stats
        run_stats = QueryStats(
            requests=after.requests - before.requests,
            batches=after.batches - before.batches,
            tile_hits=after.tile_hits - before.tile_hits,
            tile_misses=after.tile_misses - before.tile_misses,
            loads=after.loads - before.loads,
            seconds=after.seconds - before.seconds,
        )
        return TrafficResult(
            n_requests=len(stream),
            seconds=total,
            latencies_s=np.asarray(latencies),
            stats=run_stats,
            region_counts=dict(sorted(region_counts.items())),
            responses=responses,
        )

    def scaling_report(
        self,
        result: TrafficResult | None = None,
        cost_model: ClusterCostModel | None = None,
        executor_counts: Sequence[int] = (1, 2, 4),
    ) -> list[dict[str, object]]:
        """Run (if needed) and extrapolate across executor counts."""
        if result is None:
            result = self.run()
        return scaling_rows(result, cost_model=cost_model, executor_counts=executor_counts)
