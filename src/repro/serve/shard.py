"""Sharded catalogs: hash-partition products by footprint into N shards.

A :class:`ShardedCatalog` splits a product archive across ``n_shards``
sub-catalogs so each shard can run its own
:class:`~repro.serve.query.QueryEngine` with a private LRU tile cache —
shards share nothing, which is what lets the router fan requests across
them without coordination.

Shard assignment is :func:`shard_index`, a content hash of the product's
bounding box alone:

* **total** — every product maps to exactly one shard;
* **stable** — the assignment depends only on the bbox (and the shard
  count), never on registration order, filesystem paths, process hash
  randomization (``PYTHONHASHSEED``) or anything else environmental, so a
  rebuilt catalog puts every product back on the same shard and per-shard
  tile caches stay valid across restarts;
* **spatial** — products with the same footprint (a mosaic and its
  re-registration, or two campaign generations of one region) land on the
  same shard, so one shard's cache sees all traffic for that footprint.

Global resolution semantics are preserved: :meth:`ShardedCatalog.query`
merges per-shard results back into **global registration order**, so
:func:`repro.serve.query.select_entry` over a sharded catalog picks
exactly the product the unsharded engine would (the equivalence is
property-tested).
"""

from __future__ import annotations

import hashlib
import struct
from pathlib import Path
from typing import Iterator, Sequence

from repro.serve.catalog import BBox, CatalogEntry, ProductCatalog


def shard_index(bbox: Sequence[float], n_shards: int) -> int:
    """The shard owning a product with the given footprint.

    A blake2b hash of the IEEE-754 bytes of the bbox corners — exact, not
    rounded, so assignment is bit-stable across rebuilds and processes and
    independent of Python's per-process hash seed.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    payload = struct.pack("<4d", *(float(v) for v in bbox))
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


class ShardedCatalog:
    """A product catalog hash-partitioned by bbox into N sub-catalogs.

    Mirrors the :class:`~repro.serve.catalog.ProductCatalog` registration
    API (``add`` / ``register`` / ``scan``) and its query semantics, with
    results merged back into global registration order.  Re-registering an
    existing key keeps its original order, exactly like the unsharded
    catalog.
    """

    def __init__(self, n_shards: int, entries: Sequence[CatalogEntry] = ()) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self._shards = tuple(ProductCatalog() for _ in range(n_shards))
        self._assignment: dict[str, int] = {}
        self._sequence: dict[str, int] = {}
        self._counter = 0
        for entry in entries:
            self.add(entry)

    @classmethod
    def from_catalog(cls, catalog: ProductCatalog, n_shards: int) -> "ShardedCatalog":
        """Partition an existing catalog (registration order preserved)."""
        return cls(n_shards, catalog.entries)

    # -- registration ------------------------------------------------------

    def add(self, entry: CatalogEntry) -> CatalogEntry:
        """Index one entry on its owning shard (same-key re-adds replace)."""
        shard = shard_index(entry.bbox, self.n_shards)
        previous = self._assignment.get(entry.key)
        if previous is not None and previous != shard:
            # Same fingerprint, different footprint: the sidecars disagree
            # about the product's identity — re-home rather than duplicate.
            self._shards[previous].remove(entry.key)
        self._shards[shard].add(entry)
        self._assignment[entry.key] = shard
        if entry.key not in self._sequence:
            self._sequence[entry.key] = self._counter
            self._counter += 1
        return entry

    def register(self, path: str | Path) -> CatalogEntry:
        """Register one written product from its sidecar path (or base path)."""
        return self.add(CatalogEntry.from_sidecar(path))

    def append(self, path: str | Path) -> CatalogEntry:
        """Validate and index one product on its owning shard — no re-scan.

        Same validation contract as :meth:`ProductCatalog.append` (npz must
        exist and hold every declared variable); the entry then routes to
        its bbox-hashed shard like any :meth:`add`.
        """
        return self.add(ProductCatalog().append(path))

    def scan(self, directory: str | Path) -> tuple[list[CatalogEntry], list[Path]]:
        """Register every sidecar under a directory; collect bad files.

        Same contract as :meth:`ProductCatalog.scan`: invalid sidecars are
        returned as ``skipped``, not raised.
        """
        staging = ProductCatalog()
        registered, skipped = staging.scan(directory)
        for entry in registered:
            self.add(entry)
        return registered, skipped

    def remove(self, key: str) -> CatalogEntry:
        """De-index one entry from its owning shard (``KeyError`` when absent)."""
        shard = self.shard_of(key)
        entry = self._shards[shard].remove(key)
        del self._assignment[key]
        self._sequence.pop(key, None)
        return entry

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self._assignment

    @property
    def shards(self) -> tuple[ProductCatalog, ...]:
        return self._shards

    @property
    def entries(self) -> tuple[CatalogEntry, ...]:
        """Every entry, in global registration order."""
        merged = [entry for shard in self._shards for entry in shard]
        merged.sort(key=lambda entry: self._sequence[entry.key])
        return tuple(merged)

    def shard_of(self, key: str) -> int:
        """The shard index owning a product key."""
        try:
            return self._assignment[key]
        except KeyError:
            raise KeyError(
                f"no product {key!r} in the sharded catalog ({len(self)} entries)"
            ) from None

    def get(self, key: str) -> CatalogEntry:
        return self._shards[self.shard_of(key)].get(key)

    def counts(self) -> tuple[int, ...]:
        """Products per shard (the balance of the hash partition)."""
        return tuple(len(shard) for shard in self._shards)

    def extent(self) -> BBox:
        """Union bbox of every registered product."""
        entries = self.entries
        if not entries:
            raise ValueError("the sharded catalog is empty: register products first")
        return (
            min(e.x_min_m for e in entries),
            min(e.y_min_m for e in entries),
            max(e.x_max_m for e in entries),
            max(e.y_max_m for e in entries),
        )

    def query(
        self,
        bbox: Sequence[float] | None = None,
        variable: str | None = None,
        kind: str | None = None,
        granule_id: str | None = None,
        exclude_shards: frozenset[int] | set[int] = frozenset(),
    ) -> list[CatalogEntry]:
        """Products matching every filter, in **global** registration order.

        ``exclude_shards`` drops whole shards from the result — the router
        uses it to resolve around quarantined shards, so one degraded shard
        never takes down queries another shard can serve.
        """
        matched = [
            entry
            for index, shard in enumerate(self._shards)
            if index not in exclude_shards
            for entry in shard.query(
                bbox=bbox, variable=variable, kind=kind, granule_id=granule_id
            )
        ]
        matched.sort(key=lambda entry: self._sequence[entry.key])
        return matched
