"""ServeHandle: one builder owning the serving stack's lifecycle.

``CampaignRunner.serve(products_dir)`` returns a :class:`ServeHandle` — the
single construction surface of the serve tier, replacing the accreted
bool-flag dispatch (``serve(dir, router=True)``).  The handle owns the
catalog and builds the rest on demand:

* bare: a lazily constructed :class:`~repro.serve.query.QueryEngine` over
  the flat catalog (``handle.query(...)`` / ``handle.engine``);
* ``.with_router(...)``: hash-partition the catalog and front it with a
  :class:`~repro.serve.router.RequestRouter` (single-flight coalescing,
  admission control, quarantine);
* ``.with_ingest(...)``: attach a :class:`~repro.ingest.IngestService`
  that keeps the served mosaic live as new granules arrive, with
  dirty-tile pyramid rebuilds and targeted cache invalidation.

Builder steps return the handle, so construction chains:
``runner.serve(dir).with_router().with_ingest()``.  Every engine the
handle creates uses a :class:`~repro.serve.live.LivePyramidLoader`, so
attaching ingest later never requires rebuilding engines.  Query results
are the unified :class:`~repro.serve.query.TileResponse` whichever front
serves them.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.config import DEFAULT_SERVE, IngestConfig, RouterConfig, ServeConfig
from repro.obs.core import Obs, default_obs
from repro.serve.catalog import ProductCatalog
from repro.serve.live import LivePyramidLoader
from repro.serve.query import QueryEngine, TileKey, TileRequest, TileResponse
from repro.serve.router import RequestRouter
from repro.serve.shard import ShardedCatalog

if TYPE_CHECKING:  # circular at runtime: repro.ingest builds on this module
    from repro.ingest.service import IngestReport, IngestService

__all__ = ["ServeHandle"]


class ServeHandle:
    """The serving stack behind one products directory.

    Parameters
    ----------
    catalog:
        The flat product catalog (sharded internally by ``with_router``).
    serve:
        The campaign's ``base.serve`` slice — tile geometry, cache sizes,
        nested router/ingest configs.
    products_dir:
        Where products live; required by ``with_ingest`` (the live mosaic
        is rewritten there on every merge).
    gridder:
        Optional ``spec -> Level3Grid`` hook the ingest tier uses to grid
        newly arrived granule *specs* through the cached pipeline stages
        (``CampaignRunner.serve`` wires :meth:`CampaignRunner.grid_new_granule`).
    seed_l3:
        The campaign's :class:`~repro.campaign.runner.CampaignL3Result`;
        required by ``with_ingest`` (it seeds the online accumulator).
    """

    def __init__(
        self,
        catalog: ProductCatalog,
        serve: ServeConfig = DEFAULT_SERVE,
        products_dir: str | Path | None = None,
        n_workers: int = 1,
        executor: str = "thread",
        gridder: Callable[[Any], Any] | None = None,
        seed_l3: Any | None = None,
        backend: str | None = None,
        obs: Obs | None = None,
    ) -> None:
        self.serve = serve
        self.products_dir = Path(products_dir) if products_dir is not None else None
        self.n_workers = n_workers
        self.executor = executor
        self.backend = backend
        #: One telemetry handle for the whole stack the builder constructs —
        #: engine, router shards, and ingest all share it.
        self.obs = obs if obs is not None else default_obs()
        self._catalog = catalog
        self._gridder = gridder
        self._seed_l3 = seed_l3
        self._engine: QueryEngine | None = None
        self._router: RequestRouter | None = None
        self._ingest: "IngestService | None" = None

    # -- builder steps -------------------------------------------------------

    def with_router(
        self, config: RouterConfig | None = None, **router_kwargs: Any
    ) -> "ServeHandle":
        """Front the stack with a sharded single-flight router.

        Must run before the bare engine is first used and before
        ``with_ingest`` — the router owns its per-shard engines, and ingest
        installs live products into whichever front exists.  Extra keyword
        arguments (``clock``, ``execute``, ...) pass through to
        :class:`~repro.serve.router.RequestRouter`.
        """
        if self._router is not None:
            raise RuntimeError("a router is already attached to this handle")
        if self._engine is not None:
            raise RuntimeError(
                "with_router() must be called before the bare engine is used "
                "(the router owns its own per-shard engines)"
            )
        if self._ingest is not None:
            raise RuntimeError("with_router() must be called before with_ingest()")
        router_cfg = config if config is not None else self.serve.router
        serve = self.serve
        self._router = RequestRouter(
            ShardedCatalog.from_catalog(self._catalog, router_cfg.n_shards),
            serve=serve,
            config=config,
            loader_factory=lambda index: LivePyramidLoader(serve, backend=self.backend),
            n_workers=self.n_workers,
            executor=self.executor,
            **{"obs": self.obs, **router_kwargs},
        )
        return self

    def with_ingest(
        self, config: IngestConfig | None = None, **ingest_kwargs: Any
    ) -> "ServeHandle":
        """Attach the live-ingest tier: granules in, fresh tiles out.

        Requires ``products_dir`` and the campaign's L3 result (both wired
        by :meth:`CampaignRunner.serve`).  Extra keyword arguments pass
        through to :class:`~repro.ingest.IngestService` (e.g. the
        ``on_rebuild`` test hook).
        """
        from repro.ingest.service import IngestService

        if self._ingest is not None:
            raise RuntimeError("an ingest service is already attached to this handle")
        if self.products_dir is None or self._seed_l3 is None:
            raise RuntimeError(
                "with_ingest() needs the products directory and the campaign's "
                "L3 result; construct the handle via CampaignRunner.serve(...)"
            )
        self._ingest = IngestService(
            handle=self,
            seed_l3=self._seed_l3,
            config=config if config is not None else self.serve.ingest,
            gridder=self._gridder,
            **{"obs": self.obs, **ingest_kwargs},
        )
        return self

    # -- the fronts ----------------------------------------------------------

    @property
    def engine(self) -> QueryEngine:
        """The bare query engine (built lazily; unavailable behind a router)."""
        if self._router is not None:
            raise RuntimeError(
                "this handle fronts a router; use handle.router (per-shard "
                "engines live at router.shards[i].engine)"
            )
        if self._engine is None:
            self._engine = QueryEngine(
                self._catalog,
                loader=LivePyramidLoader(self.serve, backend=self.backend),
                serve=self.serve,
                n_workers=self.n_workers,
                executor=self.executor,
                obs=self.obs,
            )
        return self._engine

    @property
    def router(self) -> RequestRouter:
        if self._router is None:
            raise RuntimeError("no router attached: build with handle.with_router(...)")
        return self._router

    @property
    def has_router(self) -> bool:
        return self._router is not None

    @property
    def ingest_service(self) -> "IngestService":
        if self._ingest is None:
            raise RuntimeError("no ingest attached: build with handle.with_ingest(...)")
        return self._ingest

    @property
    def front(self) -> RequestRouter | QueryEngine:
        """Whatever serves queries: the router when attached, else the engine."""
        return self._router if self._router is not None else self.engine

    # -- unified query surface ----------------------------------------------

    @property
    def catalog(self) -> ProductCatalog | ShardedCatalog:
        return self._router.catalog if self._router is not None else self._catalog

    @property
    def loader(self) -> LivePyramidLoader:
        """The bare engine's loader (per-shard loaders live on the router)."""
        loader = self.engine.loader
        assert isinstance(loader, LivePyramidLoader)
        return loader

    @property
    def stats(self) -> Any:
        return self.front.stats

    def query(self, request: TileRequest) -> TileResponse:
        """Serve one request through the current front."""
        if self._router is not None:
            return self._router.serve([request])[0]
        return self.engine.query(request)

    def query_batch(self, requests: Sequence[TileRequest]) -> list[TileResponse]:
        """Serve a batch through the current front."""
        if self._router is not None:
            return self._router.serve(list(requests))
        return self.engine.query_batch(list(requests))

    def invalidate_tiles(self, keys: Sequence[TileKey]) -> int:
        """Targeted LRU invalidation on whichever front serves queries."""
        return self.front.invalidate_tiles(keys)

    def ingest(self, granule: Any) -> "IngestReport":
        """Fold one granule (a ``Level3Grid`` or a ``GranuleSpec``) into the
        served campaign; shorthand for ``handle.ingest_service.ingest``."""
        return self.ingest_service.ingest(granule)

    def health(self) -> dict[str, object]:
        """The router health summary (requires a router front)."""
        return self.router.health()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release every worker pool this handle's engines own.

        Idempotent, and safe whatever was built: the bare engine, a
        router's per-shard engines, or nothing yet.  Engines remain usable
        afterwards (their pools respawn on the next query) — close is about
        not leaking worker processes, not about tearing down the handle.
        """
        if self._router is not None:
            for shard in self._router.shards:
                shard.engine.close()
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
