"""The product catalog: find written Level-3 products without opening them.

Every product written by :func:`repro.l3.write_level3` is a pair of files;
the JSON sidecar alone carries everything a serving layer needs to *find*
the product — grid extent and resolution, variable names, kind, granule
ids, content fingerprint, kernel backend.  :class:`ProductCatalog` scans
directories of sidecars into indexed :class:`CatalogEntry` records and
answers region + variable queries **without opening a single npz**: arrays
are only decoded later, by the query engine, and only for products a
request actually resolves to.

Registration is strict: a sidecar that does not announce itself (missing or
unknown ``format`` tag, unparsable JSON) raises
:class:`~repro.l3.writer.Level3ProductError` instead of silently indexing
garbage; :meth:`ProductCatalog.scan` collects such files into
``skipped`` so one corrupt product cannot hide a whole directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.l3.writer import (
    Level3ProductError,
    load_sidecar,
    parse_sidecar_description,
    parse_sidecar_storage,
)
from repro.serve.pyramid import is_pyramid_variable

#: Projected-metre bounding box: (x_min, y_min, x_max, y_max).
BBox = tuple[float, float, float, float]


def _bbox_intersects(a: BBox, b: BBox) -> bool:
    """Half-open bbox intersection (degenerate overlap on an edge is empty)."""
    return a[0] < b[2] and b[0] < a[2] and a[1] < b[3] and b[1] < a[3]


@dataclass(frozen=True)
class CatalogEntry:
    """One indexed product: identity, footprint and variables, no arrays."""

    base_path: str
    kind: str
    fingerprint: str
    granule_ids: tuple[str, ...]
    variables: tuple[str, ...]
    #: Subset of ``variables`` the query engine can serve as pyramid value
    #: layers (float dtypes; count layers are weights, not values).
    servable: tuple[str, ...]
    x_min_m: float
    y_min_m: float
    x_max_m: float
    y_max_m: float
    cell_size_m: float
    shape: tuple[int, int]
    kernel_backend: str = ""
    #: Array-container layout, from the sidecar's ``storage`` section:
    #: ``"npz"`` (zip archive) or ``"raw"`` (flat memmap-able blob).
    storage: str = "npz"
    metadata: Mapping[str, Any] = field(default_factory=dict, hash=False, compare=False)

    @property
    def key(self) -> str:
        """Catalog key: the content fingerprint, or the path when unset."""
        return self.fingerprint or f"path:{self.base_path}"

    @property
    def bbox(self) -> BBox:
        return (self.x_min_m, self.y_min_m, self.x_max_m, self.y_max_m)

    @property
    def npz_path(self) -> Path:
        return Path(self.base_path + ".npz")

    @property
    def array_path(self) -> Path:
        """The product's array container, whatever its layout."""
        return Path(self.base_path + ("." + self.storage))

    @property
    def json_path(self) -> Path:
        return Path(self.base_path + ".json")

    def intersects(self, bbox: Sequence[float]) -> bool:
        return _bbox_intersects(self.bbox, tuple(float(v) for v in bbox))

    @classmethod
    def from_sidecar(cls, path: str | Path) -> "CatalogEntry":
        """Index one product from its JSON sidecar (the npz stays closed)."""
        payload = load_sidecar(path)
        base = Path(path)
        if base.suffix in (".npz", ".json", ".raw"):
            base = base.with_suffix("")
        grid, declared = parse_sidecar_description(payload, f"{base}.json")
        storage = parse_sidecar_storage(payload, f"{base}.json")
        variables = tuple(sorted(declared))
        servable = tuple(
            sorted(
                name
                for name, spec in declared.items()
                if is_pyramid_variable(name, spec.get("dtype", ""))
            )
        )
        metadata = payload.get("metadata", {})
        if not isinstance(metadata, Mapping):
            metadata = {}
        kind = str(metadata.get("kind", "granule"))
        if "granule_ids" in metadata:
            granule_ids = tuple(str(g) for g in metadata["granule_ids"])
        elif "granule_id" in metadata:
            granule_ids = (str(metadata["granule_id"]),)
        else:
            granule_ids = ()
        return cls(
            base_path=str(base),
            kind=kind,
            fingerprint=str(metadata.get("fingerprint", "")),
            granule_ids=granule_ids,
            variables=variables,
            servable=servable,
            x_min_m=grid.x_min_m,
            y_min_m=grid.y_min_m,
            x_max_m=grid.x_max_m,
            y_max_m=grid.y_max_m,
            cell_size_m=grid.cell_size_m,
            shape=grid.shape,
            kernel_backend=str(metadata.get("kernel_backend", "")),
            storage="raw" if storage is not None else "npz",
            metadata=dict(metadata),
        )


class ProductCatalog:
    """Registered products, indexed by variable / kind / granule / bbox.

    Entries are keyed by content fingerprint (two registrations of the same
    fingerprint keep the latest path — the products are interchangeable by
    the writer's contract), preserved in registration order for
    deterministic query results.
    """

    def __init__(self, entries: Sequence[CatalogEntry] = ()) -> None:
        self._entries: dict[str, CatalogEntry] = {}
        self._by_variable: dict[str, set[str]] = {}
        self._by_kind: dict[str, set[str]] = {}
        self._by_granule: dict[str, set[str]] = {}
        for entry in entries:
            self.add(entry)

    # -- registration ------------------------------------------------------

    def add(self, entry: CatalogEntry) -> CatalogEntry:
        """Index one entry (replacing any previous entry with the same key)."""
        if entry.key in self._entries:
            self._discard_from_indexes(self._entries[entry.key])
        self._entries[entry.key] = entry
        for variable in entry.variables:
            self._by_variable.setdefault(variable, set()).add(entry.key)
        self._by_kind.setdefault(entry.kind, set()).add(entry.key)
        for granule_id in entry.granule_ids:
            self._by_granule.setdefault(granule_id, set()).add(entry.key)
        return entry

    def register(self, path: str | Path) -> CatalogEntry:
        """Register one written product from its sidecar path (or base path)."""
        return self.add(CatalogEntry.from_sidecar(path))

    def append(self, path: str | Path) -> CatalogEntry:
        """Validate and index one newly written product — no directory re-scan.

        Unlike :meth:`register` (which trusts the sidecar), ``append`` also
        verifies the array half: the container must exist, and either its
        zip directory must list every declared variable (npz — arrays stay
        compressed, this reads the archive index only) or the blob must be
        at least as large as the sidecar's offsets require and the storage
        section must cover every declared variable (raw — nothing is
        mapped).  O(1) in catalog size, which is what lets the live-ingest
        tier publish a refreshed product per granule without re-scanning
        the whole directory.  Raises
        :class:`~repro.l3.writer.Level3ProductError` on any mismatch.
        """
        entry = CatalogEntry.from_sidecar(path)
        container = entry.array_path
        if not container.is_file():
            raise Level3ProductError(
                f"cannot append {entry.base_path!r}: missing array file {container}"
            )
        if entry.storage == "raw":
            storage = parse_sidecar_storage(
                load_sidecar(entry.json_path), entry.json_path
            )
            arrays = storage["arrays"] if storage is not None else {}
            present = set(arrays)
            needed = max(
                (spec["offset"] + spec["nbytes"] for spec in arrays.values()),
                default=0,
            )
            size = container.stat().st_size
            if size < needed:
                raise Level3ProductError(
                    f"cannot append {entry.base_path!r}: raw blob {container.name} "
                    f"is truncated ({size} bytes, sidecar declares {needed})"
                )
        else:
            try:
                with np.load(container) as payload:
                    present = set(payload.files)
            except (OSError, ValueError) as exc:
                raise Level3ProductError(
                    f"cannot append {entry.base_path!r}: unreadable array file "
                    f"{container}: {exc}"
                ) from exc
        missing = sorted(set(entry.variables) - present)
        if missing:
            raise Level3ProductError(
                f"cannot append {entry.base_path!r}: sidecar declares variables "
                f"absent from {container.name}: {missing}"
            )
        return self.add(entry)

    def scan(self, directory: str | Path) -> tuple[list[CatalogEntry], list[Path]]:
        """Register every ``*.json`` sidecar under a directory (recursively).

        Returns ``(registered, skipped)``: files that are not valid Level-3
        sidecars are skipped (collected, not raised) so one foreign or
        corrupt JSON cannot take the whole catalog down.
        """
        registered: list[CatalogEntry] = []
        skipped: list[Path] = []
        for sidecar in sorted(Path(directory).rglob("*.json")):
            try:
                registered.append(self.register(sidecar))
            except (Level3ProductError, FileNotFoundError):
                skipped.append(sidecar)
        return registered, skipped

    def remove(self, key: str) -> CatalogEntry:
        """De-index one entry by key (``KeyError`` when absent)."""
        try:
            entry = self._entries.pop(key)
        except KeyError:
            raise KeyError(
                f"no product {key!r} in the catalog ({len(self)} entries)"
            ) from None
        self._discard_from_indexes(entry)
        return entry

    def _discard_from_indexes(self, entry: CatalogEntry) -> None:
        for variable in entry.variables:
            self._by_variable.get(variable, set()).discard(entry.key)
        self._by_kind.get(entry.kind, set()).discard(entry.key)
        for granule_id in entry.granule_ids:
            self._by_granule.get(granule_id, set()).discard(entry.key)

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def entries(self) -> tuple[CatalogEntry, ...]:
        return tuple(self._entries.values())

    def get(self, key: str) -> CatalogEntry:
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"no product {key!r} in the catalog ({len(self)} entries)"
            ) from None

    def extent(self) -> BBox:
        """Union bbox of every registered product."""
        if not self._entries:
            raise ValueError("the catalog is empty: register products first")
        entries = list(self._entries.values())
        return (
            min(e.x_min_m for e in entries),
            min(e.y_min_m for e in entries),
            max(e.x_max_m for e in entries),
            max(e.y_max_m for e in entries),
        )

    def query(
        self,
        bbox: Sequence[float] | None = None,
        variable: str | None = None,
        kind: str | None = None,
        granule_id: str | None = None,
    ) -> list[CatalogEntry]:
        """Products matching every given filter, in registration order.

        All filters are optional and conjunctive; ``bbox`` keeps products
        whose footprint intersects the query box.  Answered entirely from
        the sidecar-derived index — no product file is opened.
        """
        keys: set[str] | None = None
        for index, wanted in (
            (self._by_variable, variable),
            (self._by_kind, kind),
            (self._by_granule, granule_id),
        ):
            if wanted is None:
                continue
            matched = index.get(wanted, set())
            keys = set(matched) if keys is None else keys & matched
        results = [
            entry
            for key, entry in self._entries.items()
            if keys is None or key in keys
        ]
        if bbox is not None:
            box = tuple(float(v) for v in bbox)
            results = [entry for entry in results if entry.intersects(box)]
        return results
