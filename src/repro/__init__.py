"""repro: scalable higher-resolution polar sea-ice classification and freeboard
calculation from ICESat-2 ATL03 data.

A from-scratch reproduction of Iqrah et al. (IPDPS 2025).  The package
provides:

* simulated ATL03 photon granules and Sentinel-2 scenes over a shared
  ground-truth Ross Sea ice surface (:mod:`repro.surface`,
  :mod:`repro.atl03`, :mod:`repro.sentinel2`);
* 2 m along-track resampling, feature extraction and 150-photon aggregation
  (:mod:`repro.resampling`);
* S2-based auto-labeling with drift correction (:mod:`repro.labeling`);
* LSTM / MLP classifiers built on a NumPy neural-network stack
  (:mod:`repro.ml`, :mod:`repro.classification`);
* map-reduce and data-parallel training substrates with calibrated cluster /
  multi-GPU timing models (:mod:`repro.distributed`);
* local sea-surface detection and freeboard retrieval
  (:mod:`repro.freeboard`), with emulated ATL07/ATL10 baselines
  (:mod:`repro.products`);
* end-to-end orchestration and table/figure regeneration
  (:mod:`repro.workflow`, :mod:`repro.evaluation`);
* a stage-graph pipeline engine: every workflow step is a registered,
  typed, content-fingerprinted stage; graph runs cache per stage and
  recompute only downstream of a config change (:mod:`repro.pipeline`);
* multi-granule campaigns: scenario grids run in parallel through the whole
  stage graph with one shared classifier and a two-tier resumable on-disk
  cache (:mod:`repro.campaign`);
* vectorized hot-path kernels — windowed sea-surface estimation, ATL03
  confidence binning, LSTM time-stepping, Level-3 polar-grid binning — with
  a reference/vectorized dispatch switch and equivalence-tested backends
  (:mod:`repro.kernels`);
* Level-3 gridded products: campaign output binned onto the shared polar
  stereographic metre grid, multi-granule mosaics with propagated
  uncertainty, and self-describing on-disk product files (:mod:`repro.l3`);
* a product-serving layer: a sidecar-indexed product catalog, tile
  pyramids with vectorized overview reductions, and a query engine with a
  fingerprint-keyed LRU tile cache, per-product decode batching and
  executor fan-out, plus a Zipf traffic simulator (:mod:`repro.serve`).

Quick start::

    from repro.workflow import ExperimentConfig, run_end_to_end

    outputs = run_end_to_end(ExperimentConfig(epochs=3, seed=0))
    print(outputs.classifier.report.as_row("LSTM"))
"""

from repro import config, kernels, pipeline
from repro.config import (
    CLASS_NAMES,
    CLASS_OPEN_WATER,
    CLASS_THICK_ICE,
    CLASS_THIN_ICE,
    CLASS_UNLABELED,
    N_CLASSES,
)

__version__ = "1.0.0"

__all__ = [
    "config",
    "kernels",
    "pipeline",
    "CLASS_NAMES",
    "CLASS_OPEN_WATER",
    "CLASS_THICK_ICE",
    "CLASS_THIN_ICE",
    "CLASS_UNLABELED",
    "N_CLASSES",
    "__version__",
]
