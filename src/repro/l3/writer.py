"""Self-describing on-disk Level-3 products (npz or raw arrays + JSON metadata).

A written product is a pair of sibling files sharing one base path:

* ``<base>.npz`` (``format="npz"``, the default) — the grid variables, one
  named float/int array each, stored verbatim (``allow_pickle=False``); or
  ``<base>.raw`` (``format="raw"``) — the same arrays concatenated into one
  flat blob at 64-byte-aligned offsets, so readers can ``np.memmap`` the
  file and touch only the bytes they serve.  Either way a round trip is
  **byte-identical**;
* ``<base>.json`` — everything needed to interpret the arrays without the
  library that wrote them: the format version, the full grid definition
  (extent, cell size, projection incl. ellipsoid), per-variable attributes
  (units, long name, dtype, shape), the provenance metadata (granule
  ids, config fingerprint, kernel backend), and — for raw products — a
  ``storage`` section with per-variable byte offsets into the blob.

This turns L3 products into shareable, versioned artifacts: two products
with the same fingerprint are interchangeable, and a product written by an
older code version announces itself through the ``format`` field instead of
failing obscurely.  The raw layout is what the serve tier's zero-copy read
path builds on: ``read_level3`` of a raw product returns lazy read-only
memmap views whose base chain pins the mapping, so decoding one tile reads
one tile's pages — not the whole archive.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid

#: Format tag embedded in (and required from) every product's JSON sidecar.
L3_FORMAT = "repro-l3/1"

#: Array-container layouts write_level3 can produce.
PRODUCT_FORMATS = ("npz", "raw")

#: Per-variable alignment inside a raw blob (cache-line / SIMD friendly).
_RAW_ALIGN = 64

#: Keys of the per-variable JSON entries that describe the array itself
#: (everything else is a free-form attribute such as units/long_name).
_ARRAY_KEYS = ("dtype", "shape")


class Level3ProductError(ValueError):
    """An on-disk Level-3 product that cannot be interpreted.

    Raised for every way a product pair can fail to announce itself — a
    sidecar that is not JSON, lacks the ``format`` tag, or carries an
    unknown format version, and an array container (npz or raw blob) that is
    truncated, corrupt, or out of sync with its sidecar's declarations.  The
    message always says which file is at fault and what to do about it,
    honouring the module promise that products announce themselves instead
    of failing obscurely.
    """


def _base_path(path: str | Path) -> Path:
    """Normalise a product path: accept the base or any sibling file."""
    base = Path(path)
    if base.suffix in (".npz", ".json", ".raw"):
        base = base.with_suffix("")
    return base


def load_sidecar(path: str | Path) -> dict[str, Any]:
    """Parse and validate a product's JSON sidecar (without touching arrays).

    This is the catalog's fast path — everything needed to index a product
    (grid extent, variables, provenance) lives in the sidecar.  Raises
    :class:`Level3ProductError` when the sidecar is not valid JSON, is not a
    JSON object, lacks the ``format`` tag, or declares an unknown format.
    """
    base = _base_path(path)
    json_path = base.with_name(base.name + ".json")
    if not json_path.is_file():
        raise FileNotFoundError(f"no Level-3 metadata sidecar at {json_path}")
    try:
        payload = json.loads(json_path.read_text())
    except json.JSONDecodeError as exc:
        raise Level3ProductError(
            f"sidecar {json_path} is not valid JSON ({exc}); the write was "
            "likely interrupted — regenerate the product with write_level3"
        ) from exc
    if not isinstance(payload, dict) or "format" not in payload:
        raise Level3ProductError(
            f"sidecar {json_path} has no 'format' tag, so it is not a "
            "repro Level-3 product sidecar; products written by write_level3 "
            f"always declare format={L3_FORMAT!r}"
        )
    fmt = payload["format"]
    if fmt != L3_FORMAT:
        raise Level3ProductError(
            f"sidecar {json_path} declares unsupported Level-3 format {fmt!r} "
            f"(this library reads {L3_FORMAT!r}); it was written by an "
            "incompatible version — rewrite the product or upgrade the reader"
        )
    return payload


def parse_sidecar_description(
    payload: Mapping[str, Any], source: str | Path
) -> tuple[GridDefinition, dict[str, Mapping[str, Any]]]:
    """The validated ``(grid, variables)`` description of a sidecar payload.

    One parser for every consumer of the description — the reader and the
    serving catalog — so a format-valid sidecar whose grid/variable section
    is missing or malformed fails identically everywhere: with a
    :class:`Level3ProductError` naming ``source``, never a bare ``KeyError``.
    """
    try:
        grid = GridDefinition.from_dict(payload["grid"])
        declared = payload["variables"]
        if not isinstance(declared, Mapping) or not all(
            isinstance(spec, Mapping) for spec in declared.values()
        ):
            raise TypeError("'variables' must map names to attribute objects")
    except (KeyError, TypeError, ValueError) as exc:
        raise Level3ProductError(
            f"sidecar {source} declares the right format but its grid/"
            f"variable description is malformed ({exc!r}); regenerate the "
            "product with write_level3"
        ) from exc
    return grid, {str(name): spec for name, spec in declared.items()}


def parse_sidecar_storage(
    payload: Mapping[str, Any], source: str | Path
) -> dict[str, Any] | None:
    """The validated ``storage`` section of a sidecar, or ``None`` for npz.

    Raw-format sidecars carry ``{"layout": "raw", "file": <name>, "arrays":
    {name: {"offset": int, "nbytes": int}}}``.  A sidecar without the
    section (every pre-raw product ever written) is an npz product.
    """
    storage = payload.get("storage")
    if storage is None:
        return None
    try:
        if not isinstance(storage, Mapping):
            raise TypeError("'storage' must be an object")
        layout = storage["layout"]
        if layout != "raw":
            raise ValueError(f"unknown storage layout {layout!r}")
        arrays = storage["arrays"]
        if not isinstance(arrays, Mapping):
            raise TypeError("'storage.arrays' must map names to offsets")
        parsed = {
            str(name): {"offset": int(spec["offset"]), "nbytes": int(spec["nbytes"])}
            for name, spec in arrays.items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise Level3ProductError(
            f"sidecar {source} has a malformed 'storage' section ({exc!r}); "
            "regenerate the product with write_level3"
        ) from exc
    return {"layout": "raw", "file": str(storage.get("file", "")), "arrays": parsed}


def _write_raw(raw_path: Path, variables: Mapping[str, np.ndarray]) -> dict[str, Any]:
    """Write the flat blob; return the sidecar ``storage`` section."""
    arrays: dict[str, dict[str, int]] = {}
    cursor = 0
    contiguous: list[tuple[str, np.ndarray, int]] = []
    for name, value in variables.items():
        arr = np.ascontiguousarray(value)
        cursor = -(-cursor // _RAW_ALIGN) * _RAW_ALIGN
        arrays[str(name)] = {"offset": cursor, "nbytes": int(arr.nbytes)}
        contiguous.append((str(name), arr, cursor))
        cursor += arr.nbytes
    with open(raw_path, "wb") as fh:
        fh.truncate(cursor)
        for _, arr, offset in contiguous:
            fh.seek(offset)
            fh.write(arr.tobytes())
    return {"layout": "raw", "file": raw_path.name, "arrays": arrays}


def write_level3(
    product: Level3Grid, path: str | Path, format: str = "npz"
) -> tuple[Path, Path]:
    """Write one product; returns the ``(array_path, json_path)`` pair.

    ``format="npz"`` writes the classic zip archive; ``format="raw"`` writes
    the flat memmap-able blob with per-variable offsets recorded in the
    sidecar's ``storage`` section.  Both round-trip byte-identically through
    :func:`read_level3`.
    """
    if format not in PRODUCT_FORMATS:
        raise ValueError(f"format must be one of {PRODUCT_FORMATS}, got {format!r}")
    base = _base_path(path)
    base.parent.mkdir(parents=True, exist_ok=True)
    array_path = base.with_name(base.name + ("." + format))
    json_path = base.with_name(base.name + ".json")

    variables: dict[str, Any] = {}
    for name, value in product.variables.items():
        variables[name] = {
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            **{str(k): str(v) for k, v in product.attrs.get(name, {}).items()},
        }
    payload = {
        "format": L3_FORMAT,
        "grid": product.grid.as_dict(),
        "variables": variables,
        "metadata": dict(product.metadata),
    }
    if format == "raw":
        # Blob first: the offsets land in the sidecar, and an interrupted
        # write leaves no sidecar pointing at a half-written blob.
        payload["storage"] = _write_raw(array_path, product.variables)
    # Serialise the metadata first so an unserialisable entry fails before
    # the sidecar file is touched.
    encoded = json.dumps(payload, indent=2, sort_keys=True)

    if format == "npz":
        np.savez(array_path, **product.variables)
    json_path.write_text(encoded + "\n")
    return array_path, json_path


def _read_raw(
    base: Path,
    storage: Mapping[str, Any],
    declared: Mapping[str, Mapping[str, Any]],
) -> dict[str, np.ndarray]:
    """Lazy read-only views into the raw blob, validated against the sidecar.

    The returned arrays are zero-copy windows of one shared ``np.memmap``;
    the mapping lives exactly as long as any view's base chain does, and
    the OS pages in only what is actually read — a one-tile decode touches
    one tile's worth of pages.
    """
    raw_path = base.with_name(storage["file"] or base.name + ".raw")
    if not raw_path.is_file():
        raise FileNotFoundError(f"no Level-3 arrays at {raw_path}")
    entries = storage["arrays"]
    missing = sorted(set(declared) - set(entries))
    if missing:
        raise Level3ProductError(
            f"product arrays missing from {raw_path}: {missing}; the blob "
            "does not match its sidecar — regenerate with write_level3"
        )
    size = raw_path.stat().st_size
    needed = max(
        (entry["offset"] + entry["nbytes"] for entry in entries.values()), default=0
    )
    if size < needed:
        raise Level3ProductError(
            f"raw blob {raw_path} is truncated ({size} bytes, sidecar "
            f"declares {needed}); regenerate the product with write_level3"
        )
    variables: dict[str, np.ndarray] = {}
    mm = np.memmap(raw_path, dtype=np.uint8, mode="r") if size else None
    for name, spec in declared.items():
        entry = entries[name]
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != entry["nbytes"]:
            raise Level3ProductError(
                f"variable {name!r} in {raw_path} does not match its sidecar "
                f"declaration: storage says {entry['nbytes']} bytes, "
                f"dtype/shape imply {nbytes}"
            )
        if nbytes == 0:
            value = np.empty(shape, dtype=dtype)
        else:
            value = np.ndarray(shape, dtype=dtype, buffer=mm, offset=entry["offset"])
        value.flags.writeable = False
        variables[name] = value
    return variables


def read_level3(path: str | Path) -> Level3Grid:
    """Reload a written product bit-identically (arrays byte-equal).

    The container format is discovered from the sidecar: npz products load
    eagerly as before; raw products come back as lazy **read-only** memmap
    views (copy at mutation sites if you need scratch space).  Raises
    :class:`Level3ProductError` (a ``ValueError``) whenever the pair cannot
    be interpreted: a bad or version-incompatible sidecar, a truncated or
    corrupt container, or arrays out of sync with their declarations.  A
    missing file raises ``FileNotFoundError`` as usual.
    """
    base = _base_path(path)
    payload = load_sidecar(base)
    grid, declared = parse_sidecar_description(payload, f"{base}.json")
    storage = parse_sidecar_storage(payload, f"{base}.json")

    if storage is not None:
        try:
            variables = _read_raw(base, storage, declared)
        except (Level3ProductError, FileNotFoundError):
            raise
        except Exception as exc:
            raw_name = storage["file"] or base.name + ".raw"
            raise Level3ProductError(
                f"cannot map product arrays from {base.with_name(raw_name)} "
                f"({exc}); the blob is truncated or corrupt — regenerate the "
                "product with write_level3"
            ) from exc
    else:
        npz_path = base.with_name(base.name + ".npz")
        variables = {}
        if not npz_path.is_file():
            raise FileNotFoundError(f"no Level-3 arrays at {npz_path}")
        try:
            with np.load(npz_path, allow_pickle=False) as archive:
                missing = sorted(set(declared) - set(archive.files))
                if missing:
                    raise Level3ProductError(
                        f"product arrays missing from {npz_path}: {missing}; the npz "
                        "does not match its sidecar — regenerate with write_level3"
                    )
                for name, spec in declared.items():
                    value = archive[name]
                    if str(value.dtype) != spec["dtype"] or list(value.shape) != list(
                        spec["shape"]
                    ):
                        raise Level3ProductError(
                            f"variable {name!r} in {npz_path} does not match its "
                            f"sidecar declaration: {value.dtype}{value.shape} vs "
                            f"{spec['dtype']}{tuple(spec['shape'])}"
                        )
                    variables[name] = value
        except Level3ProductError:
            raise
        except Exception as exc:
            # zipfile.BadZipFile for a truncated archive, OSError/ValueError for
            # corrupt members — one actionable error type for all of them.
            raise Level3ProductError(
                f"cannot read product arrays from {npz_path} ({exc}); the npz is "
                "truncated or corrupt — regenerate the product with write_level3"
            ) from exc

    attrs = {
        name: {k: v for k, v in spec.items() if k not in _ARRAY_KEYS}
        for name, spec in declared.items()
    }
    return Level3Grid(
        grid=grid,
        variables=variables,
        attrs=attrs,
        metadata=dict(payload.get("metadata", {})),
    )
