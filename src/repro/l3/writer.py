"""Self-describing on-disk Level-3 products (npz arrays + JSON metadata).

A written product is a pair of sibling files sharing one base path:

* ``<base>.npz`` — the grid variables, one named float/int array each,
  stored verbatim (``allow_pickle=False``), so a round trip is
  **byte-identical**;
* ``<base>.json`` — everything needed to interpret the arrays without the
  library that wrote them: the format version, the full grid definition
  (extent, cell size, projection incl. ellipsoid), per-variable attributes
  (units, long name, dtype, shape) and the provenance metadata (granule
  ids, config fingerprint, kernel backend).

This turns L3 products into shareable, versioned artifacts: two products
with the same fingerprint are interchangeable, and a product written by an
older code version announces itself through the ``format`` field instead of
failing obscurely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid

#: Format tag embedded in (and required from) every product's JSON sidecar.
L3_FORMAT = "repro-l3/1"

#: Keys of the per-variable JSON entries that describe the array itself
#: (everything else is a free-form attribute such as units/long_name).
_ARRAY_KEYS = ("dtype", "shape")


class Level3ProductError(ValueError):
    """An on-disk Level-3 product that cannot be interpreted.

    Raised for every way a product pair can fail to announce itself — a
    sidecar that is not JSON, lacks the ``format`` tag, or carries an
    unknown format version, and an npz that is truncated, corrupt, or out
    of sync with its sidecar's declarations.  The message always says which
    file is at fault and what to do about it, honouring the module promise
    that products announce themselves instead of failing obscurely.
    """


def _base_path(path: str | Path) -> Path:
    """Normalise a product path: accept the base or either sibling file."""
    base = Path(path)
    if base.suffix in (".npz", ".json"):
        base = base.with_suffix("")
    return base


def load_sidecar(path: str | Path) -> dict[str, Any]:
    """Parse and validate a product's JSON sidecar (without touching the npz).

    This is the catalog's fast path — everything needed to index a product
    (grid extent, variables, provenance) lives in the sidecar.  Raises
    :class:`Level3ProductError` when the sidecar is not valid JSON, is not a
    JSON object, lacks the ``format`` tag, or declares an unknown format.
    """
    base = _base_path(path)
    json_path = base.with_name(base.name + ".json")
    if not json_path.is_file():
        raise FileNotFoundError(f"no Level-3 metadata sidecar at {json_path}")
    try:
        payload = json.loads(json_path.read_text())
    except json.JSONDecodeError as exc:
        raise Level3ProductError(
            f"sidecar {json_path} is not valid JSON ({exc}); the write was "
            "likely interrupted — regenerate the product with write_level3"
        ) from exc
    if not isinstance(payload, dict) or "format" not in payload:
        raise Level3ProductError(
            f"sidecar {json_path} has no 'format' tag, so it is not a "
            "repro Level-3 product sidecar; products written by write_level3 "
            f"always declare format={L3_FORMAT!r}"
        )
    fmt = payload["format"]
    if fmt != L3_FORMAT:
        raise Level3ProductError(
            f"sidecar {json_path} declares unsupported Level-3 format {fmt!r} "
            f"(this library reads {L3_FORMAT!r}); it was written by an "
            "incompatible version — rewrite the product or upgrade the reader"
        )
    return payload


def parse_sidecar_description(
    payload: Mapping[str, Any], source: str | Path
) -> tuple[GridDefinition, dict[str, Mapping[str, Any]]]:
    """The validated ``(grid, variables)`` description of a sidecar payload.

    One parser for every consumer of the description — the reader and the
    serving catalog — so a format-valid sidecar whose grid/variable section
    is missing or malformed fails identically everywhere: with a
    :class:`Level3ProductError` naming ``source``, never a bare ``KeyError``.
    """
    try:
        grid = GridDefinition.from_dict(payload["grid"])
        declared = payload["variables"]
        if not isinstance(declared, Mapping) or not all(
            isinstance(spec, Mapping) for spec in declared.values()
        ):
            raise TypeError("'variables' must map names to attribute objects")
    except (KeyError, TypeError, ValueError) as exc:
        raise Level3ProductError(
            f"sidecar {source} declares the right format but its grid/"
            f"variable description is malformed ({exc!r}); regenerate the "
            "product with write_level3"
        ) from exc
    return grid, {str(name): spec for name, spec in declared.items()}


def write_level3(product: Level3Grid, path: str | Path) -> tuple[Path, Path]:
    """Write one product; returns the ``(npz_path, json_path)`` pair."""
    base = _base_path(path)
    base.parent.mkdir(parents=True, exist_ok=True)
    npz_path = base.with_name(base.name + ".npz")
    json_path = base.with_name(base.name + ".json")

    variables: dict[str, Any] = {}
    for name, value in product.variables.items():
        variables[name] = {
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            **{str(k): str(v) for k, v in product.attrs.get(name, {}).items()},
        }
    payload = {
        "format": L3_FORMAT,
        "grid": product.grid.as_dict(),
        "variables": variables,
        "metadata": dict(product.metadata),
    }
    # Serialise the metadata first so an unserialisable entry fails before
    # any file is touched.
    encoded = json.dumps(payload, indent=2, sort_keys=True)

    np.savez(npz_path, **product.variables)
    json_path.write_text(encoded + "\n")
    return npz_path, json_path


def read_level3(path: str | Path) -> Level3Grid:
    """Reload a written product bit-identically (arrays byte-equal).

    Raises :class:`Level3ProductError` (a ``ValueError``) whenever the pair
    cannot be interpreted: a bad or version-incompatible sidecar, a
    truncated/corrupt npz, or arrays out of sync with their declarations.
    A missing file raises ``FileNotFoundError`` as usual.
    """
    base = _base_path(path)
    npz_path = base.with_name(base.name + ".npz")
    payload = load_sidecar(base)
    grid, declared = parse_sidecar_description(payload, f"{base}.json")
    variables: dict[str, np.ndarray] = {}
    if not npz_path.is_file():
        raise FileNotFoundError(f"no Level-3 arrays at {npz_path}")
    try:
        with np.load(npz_path, allow_pickle=False) as archive:
            missing = sorted(set(declared) - set(archive.files))
            if missing:
                raise Level3ProductError(
                    f"product arrays missing from {npz_path}: {missing}; the npz "
                    "does not match its sidecar — regenerate with write_level3"
                )
            for name, spec in declared.items():
                value = archive[name]
                if str(value.dtype) != spec["dtype"] or list(value.shape) != list(
                    spec["shape"]
                ):
                    raise Level3ProductError(
                        f"variable {name!r} in {npz_path} does not match its "
                        f"sidecar declaration: {value.dtype}{value.shape} vs "
                        f"{spec['dtype']}{tuple(spec['shape'])}"
                    )
                variables[name] = value
    except Level3ProductError:
        raise
    except Exception as exc:
        # zipfile.BadZipFile for a truncated archive, OSError/ValueError for
        # corrupt members — one actionable error type for all of them.
        raise Level3ProductError(
            f"cannot read product arrays from {npz_path} ({exc}); the npz is "
            "truncated or corrupt — regenerate the product with write_level3"
        ) from exc

    attrs = {
        name: {k: v for k, v in spec.items() if k not in _ARRAY_KEYS}
        for name, spec in declared.items()
    }
    return Level3Grid(
        grid=grid,
        variables=variables,
        attrs=attrs,
        metadata=dict(payload.get("metadata", {})),
    )
