"""Self-describing on-disk Level-3 products (npz arrays + JSON metadata).

A written product is a pair of sibling files sharing one base path:

* ``<base>.npz`` — the grid variables, one named float/int array each,
  stored verbatim (``allow_pickle=False``), so a round trip is
  **byte-identical**;
* ``<base>.json`` — everything needed to interpret the arrays without the
  library that wrote them: the format version, the full grid definition
  (extent, cell size, projection incl. ellipsoid), per-variable attributes
  (units, long name, dtype, shape) and the provenance metadata (granule
  ids, config fingerprint, kernel backend).

This turns L3 products into shareable, versioned artifacts: two products
with the same fingerprint are interchangeable, and a product written by an
older code version announces itself through the ``format`` field instead of
failing obscurely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid

#: Format tag embedded in (and required from) every product's JSON sidecar.
L3_FORMAT = "repro-l3/1"

#: Keys of the per-variable JSON entries that describe the array itself
#: (everything else is a free-form attribute such as units/long_name).
_ARRAY_KEYS = ("dtype", "shape")


def _base_path(path: str | Path) -> Path:
    """Normalise a product path: accept the base or either sibling file."""
    base = Path(path)
    if base.suffix in (".npz", ".json"):
        base = base.with_suffix("")
    return base


def write_level3(product: Level3Grid, path: str | Path) -> tuple[Path, Path]:
    """Write one product; returns the ``(npz_path, json_path)`` pair."""
    base = _base_path(path)
    base.parent.mkdir(parents=True, exist_ok=True)
    npz_path = base.with_name(base.name + ".npz")
    json_path = base.with_name(base.name + ".json")

    variables: dict[str, Any] = {}
    for name, value in product.variables.items():
        variables[name] = {
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            **{str(k): str(v) for k, v in product.attrs.get(name, {}).items()},
        }
    payload = {
        "format": L3_FORMAT,
        "grid": product.grid.as_dict(),
        "variables": variables,
        "metadata": dict(product.metadata),
    }
    # Serialise the metadata first so an unserialisable entry fails before
    # any file is touched.
    encoded = json.dumps(payload, indent=2, sort_keys=True)

    np.savez(npz_path, **product.variables)
    json_path.write_text(encoded + "\n")
    return npz_path, json_path


def read_level3(path: str | Path) -> Level3Grid:
    """Reload a written product bit-identically (arrays byte-equal)."""
    base = _base_path(path)
    npz_path = base.with_name(base.name + ".npz")
    json_path = base.with_name(base.name + ".json")
    if not json_path.is_file():
        raise FileNotFoundError(f"no Level-3 metadata sidecar at {json_path}")
    payload = json.loads(json_path.read_text())
    fmt = payload.get("format")
    if fmt != L3_FORMAT:
        raise ValueError(f"unsupported Level-3 format {fmt!r} (expected {L3_FORMAT!r})")

    grid = GridDefinition.from_dict(payload["grid"])
    declared: Mapping[str, Mapping[str, Any]] = payload["variables"]
    variables: dict[str, np.ndarray] = {}
    with np.load(npz_path, allow_pickle=False) as archive:
        missing = sorted(set(declared) - set(archive.files))
        if missing:
            raise ValueError(f"product arrays missing from {npz_path}: {missing}")
        for name, spec in declared.items():
            value = archive[name]
            if str(value.dtype) != spec["dtype"] or list(value.shape) != list(spec["shape"]):
                raise ValueError(
                    f"variable {name!r} does not match its declaration: "
                    f"{value.dtype}{value.shape} vs "
                    f"{spec['dtype']}{tuple(spec['shape'])}"
                )
            variables[name] = value

    attrs = {
        name: {k: v for k, v in spec.items() if k not in _ARRAY_KEYS}
        for name, spec in declared.items()
    }
    return Level3Grid(
        grid=grid,
        variables=variables,
        attrs=attrs,
        metadata=dict(payload.get("metadata", {})),
    )
