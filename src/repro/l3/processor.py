"""Level-2 -> Level-3 processing: grid granules, mosaic fleets.

:class:`Level3Processor` turns along-track (Level-2 style) campaign output
— per-beam classified segments and freeboard profiles — into gridded
composites on a shared polar stereographic metre grid, the way operational
processors (e.g. pysiral's Level-3 processor) bin their Level-2 orbit files
onto the NSIDC/EASE2 grids:

* :meth:`Level3Processor.grid_granule` pools one granule's beams, bins the
  segments with the :mod:`repro.kernels.gridding` kernels (count / mean /
  median / std / MAD of freeboard and hydrostatic thickness, per-class
  segment fractions) and returns a per-granule :class:`~repro.l3.product.Level3Grid`;
* :meth:`Level3Processor.mosaic` composites many per-granule grids into one
  fleet-level product with uncertainty propagation: the per-cell **std of
  the contributing granule means**, the granule count and the coverage
  fraction.

Documented statistics conventions:

* within a granule, per-cell std/MAD are population statistics — a cell
  with a single segment reports 0.0, an empty cell NaN;
* across a mosaic, ``freeboard_std``/``thickness_std`` are the sample std
  (``ddof=1``) of the contributing granule means — a cell with fewer than
  two contributing granules reports NaN, never garbage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.config import (
    CLASS_NAMES,
    CLASS_OPEN_WATER,
    L3GridConfig,
    N_CLASSES,
)
from repro.freeboard.thickness import thickness_from_freeboard
from repro.geodesy.grid import GridDefinition
from repro.kernels import resolve_backend
from repro.kernels.gridding import cell_class_counts, cell_statistics
from repro.l3.product import Level3Grid

if TYPE_CHECKING:  # runtime imports stay light; these are duck-typed inputs
    from repro.classification.pipeline import ClassifiedTrack
    from repro.freeboard.freeboard import FreeboardResult
    from repro.surface.scene import SceneConfig


class Level3Processor:
    """Grid classified along-track segments onto a polar stereographic grid.

    Parameters
    ----------
    grid:
        The target grid.  Build one explicitly or via :meth:`from_config`.
    min_segments:
        Cells with fewer contributing freeboard segments report NaN
        freeboard/thickness statistics (counts are always reported).
    backend:
        Kernel backend override (``None`` follows the process-global
        :func:`repro.kernels.get_backend` switch).
    """

    def __init__(
        self,
        grid: GridDefinition,
        min_segments: int = 1,
        backend: str | None = None,
    ) -> None:
        if min_segments < 1:
            raise ValueError("min_segments must be >= 1")
        self.grid = grid
        self.min_segments = min_segments
        self.backend = resolve_backend(backend)

    @classmethod
    def from_config(
        cls,
        config: L3GridConfig,
        scene: "SceneConfig | None" = None,
        backend: str | None = None,
    ) -> "Level3Processor":
        """Build the processor from the experiment's ``l3`` config slice.

        Extent fields left as ``None`` default to the scene extent, so the
        grid follows the simulated footprint unless pinned explicitly (which
        campaigns whose scenarios sweep the scene size must do — every
        granule of a mosaic needs the same grid).
        """
        x_min = config.x_min_m
        y_min = config.y_min_m
        width = config.width_m
        height = config.height_m
        if None in (x_min, y_min, width, height):
            if scene is None:
                raise ValueError(
                    "L3GridConfig leaves the grid extent to the scene, "
                    "but no scene config was provided"
                )
            x_min = scene.origin_x_m if x_min is None else x_min
            y_min = scene.origin_y_m if y_min is None else y_min
            width = scene.width_m if width is None else width
            height = scene.height_m if height is None else height
        grid = GridDefinition.from_extent(
            x_min_m=float(x_min),
            x_max_m=float(x_min) + float(width),
            y_min_m=float(y_min),
            y_max_m=float(y_min) + float(height),
            cell_size_m=config.cell_size_m,
        )
        return cls(grid, min_segments=config.min_segments, backend=backend)

    # -- Level-2 -> per-granule grid ----------------------------------------

    def grid_granule(
        self,
        classified: "Mapping[str, ClassifiedTrack]",
        freeboard: "Mapping[str, FreeboardResult]",
        granule_id: str = "granule",
    ) -> Level3Grid:
        """Bin one granule's classified segments and freeboards onto the grid.

        ``classified`` and ``freeboard`` are the per-beam retrieval artifacts
        of the stage graph; segments falling outside the grid extent are
        dropped (a granule wholly outside yields an all-empty grid, not an
        error).  Freeboard/thickness statistics use ice segments only (open
        water is the reference surface itself); class fractions use every
        in-grid segment.
        """
        if set(classified) != set(freeboard):
            raise ValueError(
                "classified and freeboard must cover the same beams, got "
                f"{sorted(classified)} vs {sorted(freeboard)}"
            )
        x, y, labels, fb = _pooled_arrays(classified, freeboard)
        flat = self.grid.flat_index(x, y)
        inside = flat >= 0
        n_cells = self.grid.n_cells

        counts = cell_class_counts(
            flat[inside], labels[inside], n_cells, N_CLASSES, backend=self.backend
        )
        n_segments = counts.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            fractions = np.where(n_segments > 0, counts / n_segments, np.nan)

        ice = inside & (labels != CLASS_OPEN_WATER) & np.isfinite(fb)
        fb_count, fb_mean, fb_median, fb_std, fb_mad = cell_statistics(
            flat[ice], fb[ice], n_cells, backend=self.backend
        )
        thickness = thickness_from_freeboard(fb[ice]).thickness_m
        _, th_mean, _, th_std, _ = cell_statistics(
            flat[ice], thickness, n_cells, backend=self.backend
        )

        # Cells below the contributor floor report NaN statistics by
        # convention; the counts still say how thin the cell was.
        sparse = fb_count < self.min_segments
        for arr in (fb_mean, fb_median, fb_std, fb_mad, th_mean, th_std):
            arr[sparse] = np.nan

        shape = self.grid.shape
        variables = {
            "n_segments": n_segments.reshape(shape),
            "n_freeboard_segments": fb_count.reshape(shape),
            "freeboard_mean": fb_mean.reshape(shape),
            "freeboard_median": fb_median.reshape(shape),
            "freeboard_std": fb_std.reshape(shape),
            "freeboard_mad": fb_mad.reshape(shape),
            "thickness_mean": th_mean.reshape(shape),
            "thickness_std": th_std.reshape(shape),
        }
        for class_id, class_name in enumerate(CLASS_NAMES):
            variables[f"class_fraction_{class_name}"] = fractions[class_id].reshape(shape)

        return Level3Grid(
            grid=self.grid,
            variables=variables,
            metadata={
                "kind": "granule",
                "granule_id": granule_id,
                "beams": sorted(classified),
                "n_segments_total": int(n_segments.sum()),
                "kernel_backend": self.backend,
                "min_segments": int(self.min_segments),
            },
        )

    # -- per-granule grids -> fleet mosaic ----------------------------------

    def mosaic(self, grids: Sequence[Level3Grid]) -> Level3Grid:
        """Composite per-granule grids into one fleet-level product.

        Per cell: the unweighted mean of the contributing granule means, the
        sample std (``ddof=1``) of those means as the propagated uncertainty
        (NaN with fewer than two contributors), the contributing granule
        count, the total segment count and the coverage fraction
        (contributors / fleet size).  Class fractions are averaged over the
        granules that observed the cell.
        """
        if not grids:
            raise ValueError("cannot mosaic zero grids")
        for product in grids[1:]:
            if product.grid != grids[0].grid:
                raise ValueError(
                    "all grids of a mosaic must share one GridDefinition; "
                    "pin the extent in L3GridConfig when scenarios vary the scene"
                )
        n_fleet = len(grids)
        n_segments = np.sum([g.variable("n_segments") for g in grids], axis=0)
        n_fb_segments = np.sum(
            [g.variable("n_freeboard_segments") for g in grids], axis=0
        )
        n_granules = np.sum(
            [g.variable("n_segments") > 0 for g in grids], axis=0, dtype=np.int64
        )

        variables = {
            "n_segments": n_segments,
            "n_freeboard_segments": n_fb_segments,
            "n_granules": n_granules,
            "coverage_fraction": n_granules / float(n_fleet),
        }
        for name in ("freeboard_mean", "freeboard_median", "thickness_mean"):
            mean, std = mean_and_std_across(
                np.stack([g.variable(name) for g in grids])
            )
            variables[name] = mean
            if name.endswith("_mean"):
                variables[name.replace("_mean", "_std")] = std
        for class_name in CLASS_NAMES:
            name = f"class_fraction_{class_name}"
            mean, _ = mean_and_std_across(np.stack([g.variable(name) for g in grids]))
            variables[name] = mean

        return Level3Grid(
            grid=grids[0].grid,
            variables=variables,
            metadata={
                "kind": "mosaic",
                "granule_ids": [str(g.metadata.get("granule_id", "")) for g in grids],
                "n_granules": n_fleet,
                "n_segments_total": int(n_segments.sum()),
                "kernel_backend": self.backend,
            },
        )


def _pooled_arrays(
    classified: "Mapping[str, ClassifiedTrack]",
    freeboard: "Mapping[str, FreeboardResult]",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pool (x, y, label, freeboard) across beams in mapping order."""
    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    fbs: list[np.ndarray] = []
    for beam_name, track in classified.items():
        fb = freeboard[beam_name]
        if fb.n_segments != track.n_segments:
            raise ValueError(
                f"beam {beam_name!r}: freeboard has {fb.n_segments} segments, "
                f"classified track has {track.n_segments}"
            )
        xs.append(track.segments.x_m)
        ys.append(track.segments.y_m)
        labels.append(np.asarray(track.labels))
        fbs.append(np.asarray(fb.freeboard_m, dtype=float))
    if not xs:
        empty = np.empty(0)
        return empty, empty, np.empty(0, dtype=np.int64), empty
    return (
        np.concatenate(xs),
        np.concatenate(ys),
        np.concatenate(labels),
        np.concatenate(fbs),
    )


def mean_and_std_across(stacked: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """NaN-aware per-cell mean and sample std across the granule axis.

    ``stacked`` has shape (n_granules, ...); NaN entries (granule did not
    observe the cell) do not contribute.  The std is ``ddof=1`` across the
    contributing granule means — NaN for fewer than two contributors, by
    the documented mosaic convention.

    This is the single source of the mosaic merge math: the batch
    :meth:`Level3Processor.mosaic` calls it on (n_granules, ny, nx) stacks
    and the online :class:`repro.l3.merge.MosaicAccumulator` calls it on
    (n_granules, n_dirty_cells) column stacks.  Both reduce over the outer
    axis, which NumPy accumulates sequentially per cell with non-finite
    entries as exact ``0.0`` terms — so the incremental path is
    bit-identical to the batch path by construction.
    """
    finite = np.isfinite(stacked)
    n = finite.sum(axis=0)
    total = np.where(finite, stacked, 0.0).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = np.where(n > 0, total / n, np.nan)
        squared = np.where(finite, (stacked - mean) ** 2, 0.0).sum(axis=0)
        std = np.where(n > 1, np.sqrt(squared / np.maximum(n - 1, 1)), np.nan)
    return mean, std


#: Backwards-compatible private alias (pre-ingest callers).
_mean_and_std_across = mean_and_std_across
