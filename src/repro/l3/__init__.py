"""Level-3 gridded products: polar-grid binning, mosaics, product files.

The paper stops at along-track (Level-2 style) output — classified 2 m
segments, freeboard profiles, emulated ATL07/ATL10 records.  This package
adds the layer every downstream consumer of sea-ice data actually works
with, mirroring operational Level-3 processors such as pysiral:

* :class:`~repro.geodesy.grid.GridDefinition` (re-exported here) — the
  shared EPSG:3976-style metre grid: extent, cell size, point -> cell
  indexing and cell-centre lat/lon via the polar stereographic projection;
* :class:`~repro.l3.processor.Level3Processor` — bins per-granule
  classified segments and freeboards into per-cell statistics (count /
  mean / median / std / MAD, class fractions, hydrostatic thickness) via
  the vectorized :mod:`repro.kernels.gridding` kernels, and mosaics
  granule grids into fleet composites with propagated uncertainty (std of
  contributing granule means, granule counts, coverage);
* :mod:`repro.l3.writer` — self-describing on-disk products (npz arrays +
  JSON metadata incl. grid definition, config fingerprint and kernel
  backend) that reload **bit-identically**;
* :mod:`repro.l3.merge` — :class:`~repro.l3.merge.MosaicAccumulator`, the
  online counterpart of :meth:`Level3Processor.mosaic
  <repro.l3.processor.Level3Processor.mosaic>`: granules join the fleet
  mosaic one at a time (the live-ingest path), with dirty-cell accounting
  and a bit-identity guarantee against the batch mosaic — both share
  :func:`~repro.l3.processor.mean_and_std_across` as the single source of
  the merge math.

Gridding runs as the registered ``grid_granule`` / ``mosaic_campaign``
pipeline stages (content-fingerprinted, so warm-cache campaigns re-grid
only changed granules); :meth:`repro.campaign.CampaignRunner.to_l3` is the
fleet-level entry point.

Quick start::

    from repro.campaign import CampaignConfig, CampaignRunner
    from repro.l3 import read_level3, write_level3

    runner = CampaignRunner(CampaignConfig(grid={"cloud_fraction": (0.1, 0.4)}))
    l3 = runner.to_l3(runner.run())
    write_level3(l3.mosaic, "products/ross_sea_mosaic")
    reloaded = read_level3("products/ross_sea_mosaic")   # bit-identical
"""

from repro.geodesy.grid import GridDefinition
from repro.l3.merge import MERGED_COUNT_LAYERS, MERGED_MEAN_LAYERS, MosaicAccumulator
from repro.l3.processor import Level3Processor, mean_and_std_across
from repro.l3.product import Level3Grid, VARIABLE_ATTRS
from repro.l3.writer import (
    L3_FORMAT,
    PRODUCT_FORMATS,
    Level3ProductError,
    load_sidecar,
    read_level3,
    write_level3,
)

__all__ = [
    "GridDefinition",
    "L3_FORMAT",
    "PRODUCT_FORMATS",
    "Level3Grid",
    "Level3ProductError",
    "Level3Processor",
    "MERGED_COUNT_LAYERS",
    "MERGED_MEAN_LAYERS",
    "MosaicAccumulator",
    "VARIABLE_ATTRS",
    "load_sidecar",
    "mean_and_std_across",
    "read_level3",
    "write_level3",
]
