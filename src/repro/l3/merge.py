"""Online (incremental) mosaic merging with dirty-cell accounting.

:class:`MosaicAccumulator` maintains a fleet mosaic that granules can join
one at a time — the Level-3 half of the live-ingest tier
(:mod:`repro.ingest`).  The contract is strict **bit-identity**: after any
sequence of :meth:`MosaicAccumulator.add` calls, :meth:`snapshot` returns a
product byte-identical to :meth:`Level3Processor.mosaic
<repro.l3.processor.Level3Processor.mosaic>` over the same granules in
sorted-id order (which is the campaign expansion order for ``gNNN`` fleets).

Why identity holds, not just closeness:

* the integer layers (``n_segments``, ``n_freeboard_segments``,
  ``n_granules``) accumulate with exact integer addition, which commutes;
* the float layers (mean-of-means and across-granule std) are *recomputed*
  at exactly the cells the new granule touched, by stacking every stored
  contribution in sorted-id order and calling the same
  :func:`~repro.l3.processor.mean_and_std_across` the batch path uses.
  NumPy reduces the outer axis sequentially per cell, and a granule that
  does not observe a cell enters the sums as an exact ``0.0`` term, so a
  cell's value depends only on its own column of contributions — cells the
  granule did *not* touch already hold the batch answer and are left alone;
* ``coverage_fraction`` depends on the fleet size, so it is recomputed
  globally at every snapshot (it is cheap, and it is deliberately excluded
  from the servable pyramid variables by
  :func:`repro.serve.pyramid.is_pyramid_variable`).

Contributions are stored sparsely (flat indices of covered cells plus the
layer values at those cells), so memory scales with observed cells, not
with ``n_granules * grid``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CLASS_NAMES
from repro.geodesy.grid import GridDefinition
from repro.kernels import resolve_backend
from repro.l3.processor import mean_and_std_across
from repro.l3.product import Level3Grid

#: Float layers merged as the mean of contributing granule values.
MERGED_MEAN_LAYERS: tuple[str, ...] = (
    "freeboard_mean",
    "freeboard_median",
    "thickness_mean",
) + tuple(f"class_fraction_{name}" for name in CLASS_NAMES)

#: Mean layers that also publish the across-granule sample std.
_STD_SOURCES: tuple[str, ...] = ("freeboard_mean", "thickness_mean")

#: Integer count layers accumulated by exact addition.
MERGED_COUNT_LAYERS: tuple[str, ...] = ("n_segments", "n_freeboard_segments")


@dataclass(frozen=True)
class _Contribution:
    """One granule's sparse footprint: covered cells and their values."""

    granule_id: str
    #: Sorted flat indices of cells with ``n_segments > 0``.
    indices: np.ndarray
    #: Float layer values at ``indices`` (NaN where below the
    #: ``min_segments`` floor), keyed by :data:`MERGED_MEAN_LAYERS`.
    values: dict[str, np.ndarray]


class MosaicAccumulator:
    """Fold granules into a fleet mosaic online, tracking dirty cells.

    Parameters
    ----------
    grid:
        The shared :class:`~repro.geodesy.grid.GridDefinition` every added
        granule must match.
    backend:
        Kernel backend recorded in snapshot metadata (``None`` follows the
        process-global switch), matching the batch mosaic's metadata.
    """

    def __init__(self, grid: GridDefinition, backend: str | None = None) -> None:
        self.grid = grid
        self.backend = resolve_backend(backend)
        self._contributions: dict[str, _Contribution] = {}
        shape = grid.shape
        self._counts: dict[str, np.ndarray] = {}
        self._n_granules = np.zeros(shape, dtype=np.int64)
        self._mean = {name: np.full(shape, np.nan) for name in MERGED_MEAN_LAYERS}
        self._std = {name: np.full(shape, np.nan) for name in _STD_SOURCES}

    # -- introspection ------------------------------------------------------

    @property
    def n_granules(self) -> int:
        """Number of granules merged so far."""
        return len(self._contributions)

    @property
    def granule_ids(self) -> tuple[str, ...]:
        """Merged granule ids in the canonical (sorted) stacking order."""
        return tuple(sorted(self._contributions))

    def __len__(self) -> int:
        return len(self._contributions)

    def __contains__(self, granule_id: str) -> bool:
        return granule_id in self._contributions

    # -- merging ------------------------------------------------------------

    def add(self, granule: Level3Grid) -> np.ndarray:
        """Merge one per-granule grid; return the dirty flat cell indices.

        The returned array holds the sorted flat indices (row-major over
        ``grid.shape``) of every cell the granule observed — exactly the
        cells whose mosaic statistics changed.  A granule wholly outside
        the observed region returns an empty array (and still counts
        toward the fleet size / coverage denominator).
        """
        if granule.grid != self.grid:
            raise ValueError(
                "granule grid does not match the accumulator grid; "
                "pin the extent in L3GridConfig when scenarios vary the scene"
            )
        granule_id = str(granule.metadata.get("granule_id", "")).strip()
        if not granule_id:
            raise ValueError("granule metadata must carry a non-empty granule_id")
        if granule_id in self._contributions:
            raise ValueError(f"granule {granule_id!r} was already merged")

        n_segments = np.asarray(granule.variable("n_segments"))
        dirty = np.flatnonzero(n_segments.ravel() > 0)
        contribution = _Contribution(
            granule_id=granule_id,
            indices=dirty,
            values={
                name: np.asarray(granule.variable(name), dtype=float).ravel()[dirty].copy()
                for name in MERGED_MEAN_LAYERS
            },
        )
        self._contributions[granule_id] = contribution

        # Integer layers: exact, order-independent accumulation.
        for name in MERGED_COUNT_LAYERS:
            layer = np.asarray(granule.variable(name))
            if name not in self._counts:
                self._counts[name] = np.zeros(self.grid.shape, dtype=layer.dtype)
            self._counts[name].ravel()[dirty] += layer.ravel()[dirty]
        self._n_granules.ravel()[dirty] += 1

        self._recompute_at(dirty)
        return dirty

    def _recompute_at(self, dirty: np.ndarray) -> None:
        """Recompute the float statistics at the dirty cells only.

        Builds the full (n_granules, n_dirty) column stack in sorted-id
        order and runs the shared batch merge math over it — the stack is
        restricted to dirty columns, so cost scales with the new granule's
        footprint, not with the grid.
        """
        if dirty.size == 0:
            return
        order = sorted(self._contributions)
        # Positions of each granule's covered cells within the dirty set,
        # computed once and reused for every layer.
        placements: list[tuple[int, np.ndarray, np.ndarray]] = []
        for rank, granule_id in enumerate(order):
            indices = self._contributions[granule_id].indices
            if indices.size == 0:
                continue
            pos = np.searchsorted(dirty, indices)
            pos = np.minimum(pos, dirty.size - 1)
            hit = dirty[pos] == indices
            if hit.any():
                placements.append((rank, pos[hit], hit))

        stacked = np.full((len(order), dirty.size), np.nan)
        for name in MERGED_MEAN_LAYERS:
            stacked.fill(np.nan)
            for rank, pos, hit in placements:
                values = self._contributions[order[rank]].values[name]
                stacked[rank, pos] = values[hit]
            mean, std = mean_and_std_across(stacked)
            self._mean[name].ravel()[dirty] = mean
            if name in _STD_SOURCES:
                self._std[name].ravel()[dirty] = std

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Level3Grid:
        """The current fleet mosaic, byte-identical to the batch product.

        Returns a new :class:`~repro.l3.product.Level3Grid` with copied
        arrays (safe to write / mutate) equal — variables, dtypes and
        metadata — to ``Level3Processor.mosaic`` over the merged granules
        in sorted-id order.
        """
        n_fleet = len(self._contributions)
        if n_fleet == 0:
            raise ValueError("cannot snapshot an empty accumulator; add a granule first")
        variables: dict[str, np.ndarray] = {
            "n_segments": self._counts["n_segments"].copy(),
            "n_freeboard_segments": self._counts["n_freeboard_segments"].copy(),
            "n_granules": self._n_granules.copy(),
            "coverage_fraction": self._n_granules / float(n_fleet),
        }
        for name in ("freeboard_mean", "freeboard_median", "thickness_mean"):
            variables[name] = self._mean[name].copy()
            if name in _STD_SOURCES:
                variables[name.replace("_mean", "_std")] = self._std[name].copy()
        for class_name in CLASS_NAMES:
            name = f"class_fraction_{class_name}"
            variables[name] = self._mean[name].copy()

        return Level3Grid(
            grid=self.grid,
            variables=variables,
            metadata={
                "kind": "mosaic",
                "granule_ids": list(self.granule_ids),
                "n_granules": n_fleet,
                "n_segments_total": int(variables["n_segments"].sum()),
                "kernel_backend": self.backend,
            },
        )
