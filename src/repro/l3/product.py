"""The Level-3 gridded product container.

A :class:`Level3Grid` is one gridded composite: a
:class:`~repro.geodesy.grid.GridDefinition` plus named 2-D variables of the
grid's shape, per-variable attributes (units, long names) and free-form
provenance metadata (granule ids, content fingerprint, kernel backend).
Both per-granule grids (``kind="granule"``) and multi-granule mosaics
(``kind="mosaic"``) use this container; they differ only in their variable
sets and metadata.  The on-disk form is written/read by :mod:`repro.l3.writer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.geodesy.grid import GridDefinition

#: Attributes of every variable a Level-3 product may carry (CF-style
#: units/long_name pairs; the writer embeds them in the JSON metadata).
VARIABLE_ATTRS: dict[str, dict[str, str]] = {
    "n_segments": {"units": "1", "long_name": "classified segments per cell"},
    "n_freeboard_segments": {
        "units": "1",
        "long_name": "ice segments contributing to the freeboard statistics",
    },
    "freeboard_mean": {"units": "m", "long_name": "mean sea-ice freeboard"},
    "freeboard_median": {"units": "m", "long_name": "median sea-ice freeboard"},
    "freeboard_std": {"units": "m", "long_name": "freeboard standard deviation"},
    "freeboard_mad": {"units": "m", "long_name": "freeboard median absolute deviation"},
    "thickness_mean": {"units": "m", "long_name": "mean hydrostatic sea-ice thickness"},
    "thickness_std": {"units": "m", "long_name": "thickness standard deviation"},
    "class_fraction_thick_ice": {"units": "1", "long_name": "thick/snow-ice fraction"},
    "class_fraction_thin_ice": {"units": "1", "long_name": "thin-ice fraction"},
    "class_fraction_open_water": {"units": "1", "long_name": "open-water fraction"},
    "n_granules": {"units": "1", "long_name": "granules contributing to the cell"},
    "coverage_fraction": {
        "units": "1",
        "long_name": "fraction of the fleet's granules covering the cell",
    },
}


@dataclass
class Level3Grid:
    """One gridded Level-3 composite (per-granule grid or mosaic).

    ``variables`` maps variable name to a ``(ny, nx)`` array; ``attrs``
    carries per-variable attributes (defaults from :data:`VARIABLE_ATTRS`);
    ``metadata`` is free-form JSON-serialisable provenance (``kind``,
    ``granule_id``/``granule_ids``, ``kernel_backend``, ``fingerprint``).
    """

    grid: GridDefinition
    variables: dict[str, np.ndarray]
    attrs: dict[str, dict[str, str]] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in self.variables.items():
            value = np.asarray(value)
            if value.shape != self.grid.shape:
                raise ValueError(
                    f"variable {name!r} has shape {value.shape}, "
                    f"expected the grid shape {self.grid.shape}"
                )
            self.variables[name] = value
        for name in self.variables:
            self.attrs.setdefault(name, dict(VARIABLE_ATTRS.get(name, {})))

    @property
    def kind(self) -> str:
        """``"granule"`` or ``"mosaic"``."""
        return str(self.metadata.get("kind", "granule"))

    def variable(self, name: str) -> np.ndarray:
        try:
            return self.variables[name]
        except KeyError:
            raise KeyError(
                f"no variable {name!r} in this product; available: "
                f"{sorted(self.variables)}"
            ) from None

    def covered_mask(self) -> np.ndarray:
        """Boolean (ny, nx) mask of cells with at least one segment."""
        return np.asarray(self.variable("n_segments")) > 0

    def coverage_fraction(self) -> float:
        """Fraction of grid cells containing at least one segment."""
        return float(np.count_nonzero(self.covered_mask())) / float(self.grid.n_cells)

    def summary_row(self) -> dict[str, object]:
        """One table row describing this product (see ``l3_coverage_table``)."""
        covered = int(np.count_nonzero(self.covered_mask()))
        freeboard = self.variables.get("freeboard_mean")
        thickness = self.variables.get("thickness_mean")
        return {
            "product": self.metadata.get(
                "granule_id", self.metadata.get("kind", "granule")
            ),
            "kind": self.kind,
            "cells": int(self.grid.n_cells),
            "covered": covered,
            "coverage_percent": round(100.0 * self.coverage_fraction(), 2),
            "n_segments": int(np.asarray(self.variable("n_segments")).sum()),
            "mean_freeboard_m": _finite_mean(freeboard),
            "mean_thickness_m": _finite_mean(thickness),
        }


def _finite_mean(values: np.ndarray | None) -> float:
    if values is None:
        return float("nan")
    finite = np.isfinite(values)
    if not finite.any():
        return float("nan")
    return float(np.asarray(values)[finite].mean())
