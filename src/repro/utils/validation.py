"""Input validation helpers shared across the library.

These raise precise, user-actionable errors on the public API boundary so the
vectorised internals can assume well-formed arrays.
"""

from __future__ import annotations

import numpy as np


def ensure_1d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a 1-D float array or raise ``ValueError``."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def ensure_2d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a 2-D array or raise ``ValueError``."""
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be two-dimensional, got shape {arr.shape}")
    return arr


def ensure_same_length(*arrays: np.ndarray, names: tuple[str, ...] | None = None) -> None:
    """Raise ``ValueError`` unless every array has the same first dimension."""
    lengths = [np.asarray(a).shape[0] for a in arrays]
    if len(set(lengths)) > 1:
        labels = names if names is not None else tuple(f"array{i}" for i in range(len(arrays)))
        detail = ", ".join(f"{n}={l}" for n, l in zip(labels, lengths))
        raise ValueError(f"arrays must have equal length ({detail})")


def ensure_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise ``ValueError`` if the array contains NaN or infinity."""
    arr = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def ensure_positive(value: float, name: str = "value") -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be strictly positive, got {value}")
    return float(value)


def ensure_in_range(value: float, lo: float, hi: float, name: str = "value") -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return float(value)


def ensure_monotonic(array: np.ndarray, name: str = "array", strict: bool = False) -> np.ndarray:
    """Raise ``ValueError`` unless the array is (strictly) non-decreasing."""
    arr = ensure_1d(array, name)
    diffs = np.diff(arr)
    if strict:
        if np.any(diffs <= 0):
            raise ValueError(f"{name} must be strictly increasing")
    else:
        if np.any(diffs < 0):
            raise ValueError(f"{name} must be non-decreasing")
    return arr


def ensure_labels(labels: np.ndarray, n_classes: int, name: str = "labels") -> np.ndarray:
    """Validate an integer label array against the number of classes.

    The sentinel value ``-1`` (unlabeled) is allowed.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(f"{name} must be an integer array, got dtype {arr.dtype}")
    if arr.size and (arr.min() < -1 or arr.max() >= n_classes):
        raise ValueError(f"{name} values must be in [-1, {n_classes - 1}]")
    return arr
