"""Timing instrumentation used by the map-reduce engine and the benchmarks.

The paper reports separate *load*, *map* and *reduce* wall-clock times for the
PySpark workflows (Tables II and V), so the engine needs light-weight,
composable timers that can be aggregated per stage.

Since the :mod:`repro.obs` layer landed, :class:`TimingRecord` is a thin
shim over a private :class:`~repro.obs.metrics.MetricsRegistry`: each
``add`` feeds a pair of stage-labelled counters
(``timing_seconds_total{stage=...}`` / ``timing_calls_total{stage=...}``)
and ``stages``/``counts`` are derived views — one timing scheme for the
whole codebase, with the public API of the old dataclass kept intact.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping, TypeVar

from repro.obs.metrics import MetricsRegistry

T = TypeVar("T")

#: Registry metric names backing one record's two derived dict views.
_SECONDS = "timing_seconds_total"
_CALLS = "timing_calls_total"


class TimingRecord:
    """Accumulated wall-clock time per named stage (registry-backed)."""

    def __init__(
        self,
        stages: Mapping[str, float] | None = None,
        counts: Mapping[str, int] | None = None,
    ) -> None:
        self._registry = MetricsRegistry()
        if stages:
            for stage, seconds in stages.items():
                self._registry.counter(_SECONDS, stage=stage).inc(float(seconds))
        if counts:
            for stage, count in counts.items():
                self._registry.counter(_CALLS, stage=stage).inc(int(count))

    @property
    def registry(self) -> MetricsRegistry:
        """The backing registry (for export alongside other obs metrics)."""
        return self._registry

    @property
    def stages(self) -> dict[str, float]:
        return {
            dict(metric.labels)["stage"]: metric.value
            for metric in self._registry.find(_SECONDS)
        }

    @property
    def counts(self) -> dict[str, int]:
        return {
            dict(metric.labels)["stage"]: int(metric.value)
            for metric in self._registry.find(_CALLS)
        }

    def add(self, stage: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._registry.counter(_SECONDS, stage=stage).inc(float(seconds))
        self._registry.counter(_CALLS, stage=stage).inc(1)

    def get(self, stage: str) -> float:
        return self._registry.value(_SECONDS, stage=stage)

    def total(self) -> float:
        return float(self._registry.total(_SECONDS))

    def merge(self, other: "TimingRecord") -> "TimingRecord":
        merged = TimingRecord(self.stages, self.counts)
        for stage, seconds in other.stages.items():
            merged._registry.counter(_SECONDS, stage=stage).inc(seconds)
        for stage, count in other.counts.items():
            merged._registry.counter(_CALLS, stage=stage).inc(count)
        return merged

    def as_dict(self) -> dict[str, float]:
        return self.stages

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimingRecord):
            return NotImplemented
        return self.stages == other.stages and self.counts == other.counts

    def __repr__(self) -> str:
        return f"TimingRecord(stages={self.stages!r}, counts={self.counts!r})"


class Stopwatch:
    """Simple monotonic stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None


@contextmanager
def timed(record: TimingRecord, stage: str) -> Iterator[None]:
    """Context manager adding the elapsed wall-clock time to ``record``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record.add(stage, time.perf_counter() - start)


def time_call(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
