"""Timing instrumentation used by the map-reduce engine and the benchmarks.

The paper reports separate *load*, *map* and *reduce* wall-clock times for the
PySpark workflows (Tables II and V), so the engine needs light-weight,
composable timers that can be aggregated per stage.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class TimingRecord:
    """Accumulated wall-clock time per named stage."""

    stages: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + 1

    def get(self, stage: str) -> float:
        return self.stages.get(stage, 0.0)

    def total(self) -> float:
        return float(sum(self.stages.values()))

    def merge(self, other: "TimingRecord") -> "TimingRecord":
        merged = TimingRecord(dict(self.stages), dict(self.counts))
        for stage, seconds in other.stages.items():
            merged.stages[stage] = merged.stages.get(stage, 0.0) + seconds
        for stage, count in other.counts.items():
            merged.counts[stage] = merged.counts.get(stage, 0) + count
        return merged

    def as_dict(self) -> dict[str, float]:
        return dict(self.stages)


class Stopwatch:
    """Simple monotonic stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None


@contextmanager
def timed(record: TimingRecord, stage: str) -> Iterator[None]:
    """Context manager adding the elapsed wall-clock time to ``record``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record.add(stage, time.perf_counter() - start)


def time_call(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
