"""Deterministic random-number helpers.

Every stochastic component of the library (photon simulation, scene
generation, model initialisation, dropout, data shuffling) takes an explicit
``numpy.random.Generator`` or an integer seed.  No module touches the global
NumPy random state, which keeps parallel workers reproducible and makes
property-based tests stable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer seed, or an existing generator
        (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, key: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and an integer key.

    The derivation is deterministic: the same parent state and key always
    produce the same child stream.  This is how per-partition and per-worker
    streams are created in the map-reduce and data-parallel code so results
    do not depend on scheduling order.
    """
    if key < 0:
        raise ValueError("key must be non-negative")
    seed_seq = np.random.SeedSequence(entropy=int(rng.integers(0, 2**63 - 1)), spawn_key=(key,))
    return np.random.default_rng(seed_seq)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators from a single seed.

    Unlike :func:`derive_rng`, spawning from an integer seed is fully
    deterministic in the seed alone, which is what the distributed trainer
    uses to give each simulated GPU its own stream.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Consume one value to obtain deterministic entropy from the generator.
        entropy = int(seed.integers(0, 2**63 - 1))
    else:
        entropy = seed
    seq = np.random.SeedSequence(entropy)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def choice_without_replacement(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """Return ``k`` distinct indices drawn from ``range(n)``.

    Thin wrapper that validates arguments so callers get a clear error when a
    workload asks for more samples than exist.
    """
    if k > n:
        raise ValueError(f"cannot draw {k} samples from a population of {n}")
    return rng.choice(n, size=k, replace=False)


def stratified_indices(
    rng: np.random.Generator, labels: Sequence[int] | np.ndarray, fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    """Split indices into (train, test) preserving per-class proportions.

    Parameters
    ----------
    labels:
        Integer class labels.
    fraction:
        Fraction of each class assigned to the *test* split.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for cls in np.unique(labels):
        idx = np.flatnonzero(labels == cls)
        idx = idx[rng.permutation(idx.size)]
        n_test = int(round(idx.size * fraction))
        n_test = min(max(n_test, 1 if idx.size > 1 else 0), idx.size - 1) if idx.size > 1 else 0
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    train = np.sort(np.concatenate(train_parts)) if train_parts else np.empty(0, dtype=int)
    test = np.sort(np.concatenate(test_parts)) if test_parts else np.empty(0, dtype=int)
    return train, test
