"""Shared utilities: random-number handling, timing, validation and logging."""

from repro.utils.random import default_rng, derive_rng, spawn_rngs
from repro.utils.timing import Stopwatch, TimingRecord, timed
from repro.utils.validation import (
    ensure_1d,
    ensure_2d,
    ensure_finite,
    ensure_in_range,
    ensure_monotonic,
    ensure_positive,
    ensure_same_length,
)

__all__ = [
    "default_rng",
    "derive_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimingRecord",
    "timed",
    "ensure_1d",
    "ensure_2d",
    "ensure_finite",
    "ensure_in_range",
    "ensure_monotonic",
    "ensure_positive",
    "ensure_same_length",
]
