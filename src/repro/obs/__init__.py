"""``repro.obs`` — unified telemetry: metrics, spans, logs, SLOs, exporters.

The one instrumentation layer across campaign → serve → ingest:

* :class:`~repro.obs.metrics.MetricsRegistry` — process-local counters,
  gauges and fixed-bucket histograms keyed by (name, labels), so metrics
  outlive the components that feed them.
* :class:`~repro.obs.trace.Tracer` — nested spans (trace/parent ids,
  pluggable clock) in a bounded ring buffer, with worker-side subtrees
  merged across process boundaries by :mod:`~repro.obs.propagate`.
* :class:`~repro.obs.log.EventLog` — structured JSON-lines events that
  automatically carry the current trace/span ids.
* :class:`~repro.obs.slo.SloEvaluator` — declarative SLOs over existing
  series, multi-window burn-rate alerts, error-budget ledgers.
* :class:`~repro.obs.core.Obs` — the facade bundling registry + tracer +
  log, resolved from :func:`~repro.obs.core.default_obs` wherever a
  component is built without an explicit handle;
  ``ObsConfig(enabled=False)`` selects no-op null twins.
* :mod:`~repro.obs.export` — JSON health dashboard (versioned schema,
  migrations, atomic writes), :class:`~repro.obs.export.HealthMonitor`,
  Prometheus text exposition, Chrome trace JSON with per-process tracks.
"""

from repro.config import DEFAULT_OBS, LogConfig, ObsConfig, SloConfig
from repro.obs.core import Obs, default_obs, set_default_obs
from repro.obs.export import (
    DASHBOARD_SCHEMA_VERSION,
    HealthMonitor,
    build_health_dashboard,
    chrome_trace,
    dashboard_schema,
    migrate_dashboard,
    prometheus_text,
    validate_dashboard,
    validate_json,
    write_chrome_trace,
    write_health_dashboard,
)
from repro.obs.log import LEVELS, EventLog, LogRecord, NullEventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullRegistry,
)
from repro.obs.propagate import (
    TraceContext,
    TracedTask,
    WorkerTelemetry,
    current_context,
    harvest_worker_telemetry,
    merge_worker_telemetry,
)
from repro.obs.slo import (
    Alert,
    BurnWindow,
    CounterRatioQuery,
    ErrorBudget,
    GaugeStalenessQuery,
    HistogramAboveQuery,
    SloEvaluator,
    SloSpec,
    availability_slo,
    freshness_slo,
    latency_slo,
)
from repro.obs.trace import NullSpan, NullTracer, Span, Tracer

__all__ = [
    "DASHBOARD_SCHEMA_VERSION",
    "DEFAULT_OBS",
    "LEVELS",
    "Alert",
    "BurnWindow",
    "Counter",
    "CounterRatioQuery",
    "ErrorBudget",
    "EventLog",
    "Gauge",
    "GaugeStalenessQuery",
    "HealthMonitor",
    "Histogram",
    "HistogramAboveQuery",
    "LogConfig",
    "LogRecord",
    "MetricsRegistry",
    "NullCounter",
    "NullEventLog",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NullSpan",
    "NullTracer",
    "Obs",
    "ObsConfig",
    "SloConfig",
    "SloEvaluator",
    "SloSpec",
    "Span",
    "TraceContext",
    "TracedTask",
    "Tracer",
    "WorkerTelemetry",
    "availability_slo",
    "build_health_dashboard",
    "chrome_trace",
    "current_context",
    "dashboard_schema",
    "default_obs",
    "freshness_slo",
    "harvest_worker_telemetry",
    "latency_slo",
    "merge_worker_telemetry",
    "migrate_dashboard",
    "prometheus_text",
    "set_default_obs",
    "validate_dashboard",
    "validate_json",
    "write_chrome_trace",
    "write_health_dashboard",
]
