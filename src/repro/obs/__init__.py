"""``repro.obs`` — unified telemetry: metrics, spans, exporters.

The one instrumentation layer across campaign → serve → ingest:

* :class:`~repro.obs.metrics.MetricsRegistry` — process-local counters,
  gauges and fixed-bucket histograms keyed by (name, labels), so metrics
  outlive the components that feed them.
* :class:`~repro.obs.trace.Tracer` — nested spans (trace/parent ids,
  pluggable clock) in a bounded ring buffer.
* :class:`~repro.obs.core.Obs` — the facade bundling both, resolved from
  :func:`~repro.obs.core.default_obs` wherever a component is built
  without an explicit handle; ``ObsConfig(enabled=False)`` selects no-op
  null twins.
* :mod:`~repro.obs.export` — JSON health dashboard (versioned schema,
  atomic writes), Prometheus text exposition, Chrome trace JSON.
"""

from repro.config import DEFAULT_OBS, ObsConfig
from repro.obs.core import Obs, default_obs, set_default_obs
from repro.obs.export import (
    DASHBOARD_SCHEMA_VERSION,
    build_health_dashboard,
    chrome_trace,
    dashboard_schema,
    prometheus_text,
    validate_dashboard,
    validate_json,
    write_chrome_trace,
    write_health_dashboard,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullRegistry,
)
from repro.obs.trace import NullSpan, NullTracer, Span, Tracer

__all__ = [
    "DASHBOARD_SCHEMA_VERSION",
    "DEFAULT_OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NullSpan",
    "NullTracer",
    "Obs",
    "ObsConfig",
    "Span",
    "Tracer",
    "build_health_dashboard",
    "chrome_trace",
    "dashboard_schema",
    "default_obs",
    "prometheus_text",
    "set_default_obs",
    "validate_dashboard",
    "validate_json",
    "write_chrome_trace",
    "write_health_dashboard",
]
