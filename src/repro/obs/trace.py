"""The tracer: nested spans in a bounded ring buffer.

A :class:`Span` is one timed operation — a routed request, a pipeline
stage, one map task.  Spans nest through a :class:`contextvars.ContextVar`,
so the current span follows the code across ``await`` boundaries (asyncio
copies the context into every task) and a span opened by the router is the
parent of the span the shard engine opens while serving it.  Thread pools
do *not* propagate context — spans recorded on pool workers come back as
compact ``(name, seconds)`` tuples instead and are merged driver-side via
:meth:`Tracer.record`, parented under whatever span the driver holds.

Time comes from a pluggable clock (anything with ``now()``), defaulting to
``time.perf_counter``.  Handing the tracer the serve tier's
:class:`~repro.serve.clock.VirtualClock` makes span durations *exact* in
tests: no real time passes, so an operation that ticks the clock by 4 ms
produces a span whose duration equals 0.004 to the last bit.

Finished spans land in a ``deque(maxlen=...)`` ring buffer; once it wraps,
the oldest spans drop and :attr:`Tracer.n_dropped` counts them.  Span and
trace ids are small deterministic strings (``s0007`` / ``t0003``), not
random UUIDs, so traces are reproducible run to run.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["NullSpan", "NullTracer", "Span", "Tracer"]


class _PerfCounterClock:
    """Default time source when no serve-tier clock is injected."""

    def now(self) -> float:
        return time.perf_counter()


@dataclass
class Span:
    """One timed operation; ``end`` stays ``None`` until the span closes."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} has not finished")
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; chainable inside a ``with tracer.span(...)``."""
        self.attributes.update(attributes)
        return self

    def __repr__(self) -> str:
        dur = f"{self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name} {self.span_id}<-{self.parent_id} {dur})"


class Tracer:
    """Emit nested spans into a bounded ring buffer.

    Parameters
    ----------
    clock:
        Any object with ``now() -> float`` (e.g. the serve tier's
        ``MonotonicClock``/``VirtualClock``); ``None`` uses
        ``time.perf_counter``.
    buffer_size:
        Ring-buffer capacity for finished spans; the oldest drop (and are
        counted in :attr:`n_dropped`) once it fills.
    """

    enabled = True

    def __init__(self, clock: Any = None, buffer_size: int = 4096) -> None:
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.clock = clock if clock is not None else _PerfCounterClock()
        self.buffer_size = buffer_size
        self._spans: deque[Span] = deque(maxlen=buffer_size)
        self.n_dropped = 0
        #: Optional anything-with-``inc()`` (a registry counter) mirroring
        #: every ring-buffer drop, so truncated traces are visible in
        #: exports instead of only on this private attribute.  ``Obs``
        #: wires ``trace_spans_dropped_total`` here.
        self.drop_counter: Any = None
        self._lock = threading.Lock()
        self._next_span = 1
        self._next_trace = 1
        self._current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            "repro_obs_current_span", default=None
        )

    # -- ids / context -------------------------------------------------------

    def _span_id(self) -> str:
        with self._lock:
            sid, self._next_span = self._next_span, self._next_span + 1
        return f"s{sid:04d}"

    def _trace_id(self) -> str:
        with self._lock:
            tid, self._next_trace = self._next_trace, self._next_trace + 1
        return f"t{tid:04d}"

    @property
    def current_span(self) -> Span | None:
        """The innermost open span of the calling context, if any."""
        return self._current.get()

    def _finish(self, span: Span, end: float) -> None:
        span.end = end
        dropped = False
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.n_dropped += 1
                dropped = True
            self._spans.append(span)
        if dropped and self.drop_counter is not None:
            self.drop_counter.inc()

    # -- emission ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span as a child of the context's current span.

        The span closes (and lands in the buffer) when the block exits;
        an escaping exception is recorded as an ``error`` attribute and
        re-raised.
        """
        parent = self._current.get()
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else self._trace_id(),
            span_id=self._span_id(),
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock.now(),
            attributes=dict(attributes),
        )
        token = self._current.set(span)
        try:
            yield span
        except BaseException as exc:
            span.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            self._current.reset(token)
            self._finish(span, self.clock.now())

    def record(
        self, name: str, seconds: float, start: float | None = None, **attributes: Any
    ) -> Span:
        """Merge one already-measured operation as a finished child span.

        The driver-side half of worker telemetry: pool workers cannot share
        the driver's context (threads) or process (pickling), so they
        measure locally and return compact ``(value, seconds)`` tuples; the
        driver records them here, parented under its current span.  With no
        explicit ``start`` the span is anchored ending now.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        parent = self._current.get()
        end = self.clock.now()
        begin = float(start) if start is not None else end - seconds
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else self._trace_id(),
            span_id=self._span_id(),
            parent_id=parent.span_id if parent is not None else None,
            start=begin,
            attributes=dict(attributes),
        )
        self._finish(span, begin + seconds)
        return span

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attributes: Any,
    ) -> Span:
        """Append one externally measured span with explicit lineage.

        The low-level merge primitive behind cross-process propagation
        (:mod:`repro.obs.propagate`): the driver re-emits every span a pool
        worker shipped back, with a *fresh local span id* (worker-side ids
        are meaningless here) but the caller's choice of trace and parent —
        so a whole worker subtree grafts under the driver's open span while
        keeping its internal parent/child structure.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        span = Span(
            name=name,
            trace_id=trace_id if trace_id is not None else self._trace_id(),
            span_id=self._span_id(),
            parent_id=parent_id,
            start=float(start),
            attributes=dict(attributes),
        )
        self._finish(span, float(end))
        return span

    # -- inspection ----------------------------------------------------------

    def spans(self, name: str | None = None) -> tuple[Span, ...]:
        """Finished spans, oldest first (optionally filtered by name)."""
        with self._lock:
            snapshot = tuple(self._spans)
        if name is None:
            return snapshot
        return tuple(span for span in snapshot if span.name == name)

    def trace(self, trace_id: str) -> tuple[Span, ...]:
        """Every finished span of one trace, oldest first."""
        with self._lock:
            return tuple(span for span in self._spans if span.trace_id == trace_id)

    def children(self, span: Span) -> tuple[Span, ...]:
        with self._lock:
            return tuple(s for s in self._spans if s.parent_id == span.span_id)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.n_dropped = 0


class NullSpan:
    """The shared no-op span the disabled tracer hands out."""

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    finished = True
    attributes: dict[str, Any] = {}

    def set(self, **attributes: Any) -> "NullSpan":
        return self


class _NullSpanContext:
    """Reusable context manager: no allocation per disabled span."""

    _SPAN = NullSpan()

    def __enter__(self) -> NullSpan:
        return self._SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullTracer:
    """The disabled tracer: every call is a cheap no-op."""

    enabled = False
    n_dropped = 0
    buffer_size = 0
    current_span = None
    drop_counter = None

    _CONTEXT = _NullSpanContext()
    _SPAN = NullSpan()

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return self._CONTEXT

    def record(
        self, name: str, seconds: float, start: float | None = None, **attributes: Any
    ) -> NullSpan:
        return self._SPAN

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        **attributes: Any,
    ) -> NullSpan:
        return self._SPAN

    def spans(self, name: str | None = None) -> tuple:
        return ()

    def trace(self, trace_id: str) -> tuple:
        return ()

    def children(self, span: Any) -> tuple:
        return ()

    def clear(self) -> None:
        pass
