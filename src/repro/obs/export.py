"""Exporters: health dashboard JSON, Prometheus text, Chrome trace JSON.

Three ways telemetry leaves the process:

* :func:`build_health_dashboard` / :func:`write_health_dashboard` — the
  versioned-schema JSON document the ROADMAP's degraded-operation item
  asks for: campaign summary, per-shard serve health (the router's
  ``health()`` payload embedded *unchanged*), ingest freshness, and a flat
  metrics dump.  Writes are atomic (tmp file + ``os.replace``) so a
  dashboard poller never reads a torn document.
* :func:`prometheus_text` — the classic ``text/plain`` exposition format:
  ``# TYPE`` lines, labelled samples, cumulative ``le`` histogram buckets
  with ``_sum``/``_count``.
* :func:`chrome_trace` — Chrome ``trace_event`` JSON (``"X"`` complete
  events, microsecond timestamps); load the file in Perfetto or
  ``chrome://tracing`` and every span renders on its trace's track.

The dashboard schema is committed at ``dashboard.schema.json`` next to
this module and enforced by :func:`validate_dashboard`, a dependency-free
validator for the JSON-Schema subset the schema uses (``type``,
``required``, ``properties``, ``items``, ``additionalProperties``,
``enum``) — the container has no ``jsonschema`` package, and the document
is small enough that a full validator buys nothing.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry, NullRegistry
from repro.obs.trace import Span

__all__ = [
    "DASHBOARD_SCHEMA_VERSION",
    "HealthMonitor",
    "build_health_dashboard",
    "chrome_trace",
    "dashboard_schema",
    "migrate_dashboard",
    "prometheus_text",
    "validate_dashboard",
    "validate_json",
    "write_chrome_trace",
    "write_health_dashboard",
]

#: Version stamped into (and required from) every dashboard document.
#: v2 added the interpretation layer: ``slo`` (alerts + error budgets),
#: ``events`` (recent structured log records) and ``trace`` (ring-buffer
#: drop accounting).  :func:`migrate_dashboard` upgrades v1 documents.
DASHBOARD_SCHEMA_VERSION = 2

_SCHEMA_PATH = Path(__file__).with_name("dashboard.schema.json")


def dashboard_schema() -> dict[str, Any]:
    """The committed dashboard schema (parsed fresh on every call)."""
    return json.loads(_SCHEMA_PATH.read_text())


# ---------------------------------------------------------------------------
# Mini JSON-Schema validator (subset; the container has no jsonschema)
# ---------------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(value: Any, schema: Mapping[str, Any], path: str, errors: list[str]) -> None:
    allowed = schema.get("type")
    if allowed is not None:
        types = [allowed] if isinstance(allowed, str) else list(allowed)
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected type {'|'.join(types)}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, sub in properties.items():
            if name in value:
                _validate(value[name], sub, f"{path}.{name}", errors)
        additional = schema.get("additionalProperties", True)
        for name in value:
            if name in properties:
                continue
            if additional is False:
                errors.append(f"{path}: unexpected property {name!r}")
            elif isinstance(additional, Mapping):
                _validate(value[name], additional, f"{path}.{name}", errors)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{index}]", errors)


def validate_json(value: Any, schema: Mapping[str, Any]) -> None:
    """Validate ``value`` against a schema (subset); raise with every error."""
    errors: list[str] = []
    _validate(value, schema, "$", errors)
    if errors:
        raise ValueError(
            "document does not match schema:\n  " + "\n  ".join(errors)
        )


def validate_dashboard(doc: Mapping[str, Any]) -> None:
    """Validate one dashboard document against the committed schema."""
    validate_json(doc, dashboard_schema())
    if doc.get("schema_version") != DASHBOARD_SCHEMA_VERSION:
        raise ValueError(
            f"dashboard schema_version {doc.get('schema_version')!r} != "
            f"{DASHBOARD_SCHEMA_VERSION}"
        )


def migrate_dashboard(doc: Mapping[str, Any]) -> dict[str, Any]:
    """Upgrade a dashboard document to the current schema version.

    v1 → v2 adds the interpretation sections a v1 writer could not have
    produced — ``slo: null``, ``events: []``, ``trace: null`` — and bumps
    ``schema_version``.  Already-current documents come back as an
    unchanged copy; unknown (newer) versions are refused rather than
    silently downgraded.
    """
    version = doc.get("schema_version")
    migrated = dict(doc)
    if version == 1:
        migrated["schema_version"] = 2
        migrated.setdefault("slo", None)
        migrated.setdefault("events", [])
        migrated.setdefault("trace", None)
        version = 2
    if version != DASHBOARD_SCHEMA_VERSION:
        raise ValueError(
            f"cannot migrate dashboard schema_version {doc.get('schema_version')!r} "
            f"to {DASHBOARD_SCHEMA_VERSION}"
        )
    return migrated


# ---------------------------------------------------------------------------
# Health dashboard
# ---------------------------------------------------------------------------


def _campaign_summary(result: Any) -> dict[str, Any]:
    """Flatten a ``CampaignResult`` into the dashboard's campaign block."""
    timing = result.timing.as_dict()
    return {
        "fingerprint": str(result.fingerprint),
        "n_granules": int(result.n_granules),
        "timing_s": {stage: float(seconds) for stage, seconds in timing.items()},
        "total_s": float(result.timing.total()),
        "cache": {
            "hits": len(result.cache_hits),
            "misses": len(result.cache_misses),
            "stage_hits": len(result.stage_hits),
            "stage_misses": len(result.stage_misses),
        },
    }


def _ingest_summary(service: Any) -> dict[str, Any]:
    """Flatten an ``IngestService`` into the dashboard's freshness block."""
    report = getattr(service, "last_report", None)
    return {
        "key": str(service.key),
        "n_ingested": int(service.n_ingested),
        "n_granules": int(service.accumulator.n_granules),
        "last_report": None
        if report is None
        else {
            "granule_id": report.granule_id,
            "n_dirty_cells": int(report.n_dirty_cells),
            "n_rebuilt_tiles": len(report.rebuilt_tiles),
            "n_invalidated": int(report.n_invalidated),
            "seconds": float(report.seconds),
        },
    }


def _sanitize_event(row: Mapping[str, Any]) -> dict[str, Any]:
    """Clamp one log record to JSON scalars (the schema's event shape)."""
    out: dict[str, Any] = {}
    for key, value in row.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[str(key)] = value
        else:
            out[str(key)] = repr(value)
    return out


def build_health_dashboard(
    campaign: Any = None,
    router: Any = None,
    ingest: Any = None,
    registry: MetricsRegistry | NullRegistry | None = None,
    generated_at: float | None = None,
    slo: Any = None,
    log: Any = None,
    tracer: Any = None,
    max_events: int = 50,
) -> dict[str, Any]:
    """Assemble the dashboard document from whatever tiers exist.

    Every section is optional — a campaign-only run, a serve-only process
    and a full live stack all produce valid documents.  The router's
    ``health()`` payload is embedded verbatim under ``serve.health`` (the
    round-trip contract: readers see exactly what the router reports).
    v2 sections: ``slo`` is an :class:`~repro.obs.slo.SloEvaluator`'s
    alerts + error budgets, ``events`` the newest ``max_events`` records of
    an :class:`~repro.obs.log.EventLog`, and ``trace`` the tracer's
    ring-buffer drop accounting.
    """
    return {
        "schema_version": DASHBOARD_SCHEMA_VERSION,
        "generated_at": float(generated_at) if generated_at is not None else time.time(),
        "campaign": _campaign_summary(campaign) if campaign is not None else None,
        "serve": {"health": router.health()} if router is not None else None,
        "ingest": _ingest_summary(ingest) if ingest is not None else None,
        "metrics": registry.as_dict() if registry is not None else {},
        "slo": slo.as_dict() if slo is not None else None,
        "events": [_sanitize_event(row) for row in log.tail(max_events)]
        if log is not None
        else [],
        "trace": {
            "spans_dropped": int(getattr(tracer, "n_dropped", 0)),
            "buffer_size": int(getattr(tracer, "buffer_size", 0)),
        }
        if tracer is not None
        else None,
    }


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def write_health_dashboard(path: str | Path, doc: Mapping[str, Any]) -> Path:
    """Validate and atomically write one dashboard document; returns the path."""
    validate_dashboard(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _render_labels(labels: Sequence[tuple[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry | NullRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for metric in registry.collect():
        if metric.name not in typed:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            typed.add(metric.name)
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for edge, count in zip(metric.edges, cumulative):
                labels = _render_labels(metric.labels, f'le="{edge}"')
                lines.append(f"{metric.name}_bucket{labels} {int(count)}")
            labels = _render_labels(metric.labels, 'le="+Inf"')
            lines.append(f"{metric.name}_bucket{labels} {int(cumulative[-1])}")
            base = _render_labels(metric.labels)
            lines.append(f"{metric.name}_sum{base} {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{base} {metric.count}")
        else:
            labels = _render_labels(metric.labels)
            lines.append(f"{metric.name}{labels} {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Chrome trace_event JSON (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------


#: The Chrome pid the driver's own spans render under.
_DRIVER_PID = 1


def chrome_trace(spans: Iterable[Span], process_name: str = "repro") -> dict[str, Any]:
    """Render finished spans as a Chrome ``trace_event`` document.

    Each trace gets its own ``tid`` track and spans become ``"X"``
    (complete) events with microsecond timestamps and their attributes
    under ``args``.  Spans carrying a ``pid`` attribute (worker subtrees
    merged by :mod:`repro.obs.propagate`) render on that process's own
    track; ``process_name``/``thread_name`` metadata events label every
    track, so Perfetto shows "repro driver" and "repro worker pid=N"
    instead of bare numbers.  The result is ``json.dump``-able as-is.
    """
    span_events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}
    process_labels: dict[int, str] = {}
    thread_labels: dict[tuple[int, int], str] = {}
    for span in spans:
        if not span.finished:
            continue
        attr_pid = span.attributes.get("pid")
        pid = attr_pid if isinstance(attr_pid, int) and attr_pid > 0 else _DRIVER_PID
        tid = tids.setdefault(span.trace_id, len(tids) + 1)
        if pid == _DRIVER_PID:
            process_labels.setdefault(pid, f"{process_name} driver")
        else:
            process_labels.setdefault(pid, f"{process_name} worker pid={pid}")
        worker = span.attributes.get("worker")
        key = (pid, tid)
        existing = thread_labels.get(key)
        if worker and (existing is None or existing.startswith("trace ")):
            thread_labels[key] = str(worker)
        elif existing is None:
            thread_labels[key] = f"trace {span.trace_id}"
        span_events.append(
            {
                "name": span.name,
                "cat": span.trace_id,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            }
        )
    if not process_labels:
        process_labels[_DRIVER_PID] = f"{process_name} driver"
    metadata: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": {"name": label}}
        for pid, label in sorted(process_labels.items())
    ]
    metadata.extend(
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "args": {"name": label}}
        for (pid, tid), label in sorted(thread_labels.items())
    )
    return {"traceEvents": metadata + span_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path, spans: Iterable[Span], process_name: str = "repro"
) -> Path:
    """Atomically write a Chrome trace JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(path, json.dumps(chrome_trace(spans, process_name)) + "\n")
    return path


# ---------------------------------------------------------------------------
# HealthMonitor: the periodic evaluate-and-publish loop
# ---------------------------------------------------------------------------


class HealthMonitor:
    """Evaluate SLOs on a cadence and atomically republish the dashboard.

    The glue between the interpretation layer and the exporters: every
    :meth:`tick` runs one :class:`~repro.obs.slo.SloEvaluator` evaluation,
    rebuilds the v2 dashboard document (alerts, error budgets, recent
    events, trace drops, plus whatever tiers were attached) and rewrites
    ``path`` atomically — a poller always reads a complete, current
    document.  :meth:`run` is the async loop form, paced by the same
    pluggable clock as everything else, so a ``VirtualClock`` drives the
    monitor to exact ticks in tests and the demo.

    Parameters
    ----------
    path:
        Dashboard JSON destination (atomic tmp + ``os.replace`` writes).
    obs:
        The :class:`~repro.obs.core.Obs` handle supplying the registry,
        tracer, event log and clock.
    slo:
        Optional :class:`~repro.obs.slo.SloEvaluator` to tick; without one
        the monitor still publishes (metrics/events/trace sections only).
    campaign / router / ingest:
        Optional tier sections, as for :func:`build_health_dashboard`.
    interval_s:
        Cadence of :meth:`run` (ignored by manual :meth:`tick` calls).
    """

    def __init__(
        self,
        path: str | Path,
        obs: Any,
        slo: Any = None,
        campaign: Any = None,
        router: Any = None,
        ingest: Any = None,
        interval_s: float = 15.0,
        max_events: int = 50,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.path = Path(path)
        self.obs = obs
        self.slo = slo
        self.campaign = campaign
        self.router = router
        self.ingest = ingest
        self.interval_s = float(interval_s)
        self.max_events = max_events
        self.n_ticks = 0

    def tick(self, now: float | None = None) -> dict[str, Any]:
        """One evaluation + publish; returns the written document."""
        if self.slo is not None:
            self.slo.evaluate(now)
        clock = getattr(self.obs, "clock", None)
        generated = now if now is not None else (clock.now() if clock is not None else None)
        doc = build_health_dashboard(
            campaign=self.campaign,
            router=self.router,
            ingest=self.ingest,
            registry=self.obs.registry,
            generated_at=generated,
            slo=self.slo,
            log=self.obs.log,
            tracer=self.obs.tracer,
            max_events=self.max_events,
        )
        write_health_dashboard(self.path, doc)
        self.n_ticks += 1
        return doc

    async def run(self, n_ticks: int | None = None) -> None:
        """Tick forever (or ``n_ticks`` times), sleeping on the obs clock."""
        clock = getattr(self.obs, "clock", None)
        remaining = n_ticks
        while remaining is None or remaining > 0:
            if clock is not None and hasattr(clock, "sleep"):
                await clock.sleep(self.interval_s)
            else:  # no async clock attached: fall back to the event loop's
                import asyncio

                await asyncio.sleep(self.interval_s)
            self.tick()
            if remaining is not None:
                remaining -= 1
