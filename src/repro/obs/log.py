"""Structured logging: JSON-lines events correlated with the tracer.

A log line you cannot join to a trace answers "what happened" but never
"*which request* it happened to".  :class:`EventLog` closes that gap: every
record automatically carries the ``trace_id``/``span_id`` of the caller's
innermost open span (read from the tracer's ``contextvars``), so a firing
dashboard alert, the router span that served the bad request and the
``router.shed`` event it logged all share one trace id.

Records land in two places:

* a bounded in-memory **ring** (``deque(maxlen)``) feeding the dashboard's
  "recent events" section, and
* an optional append-only **JSON-lines sink** — one ``write()`` call per
  record, each a complete ``\\n``-terminated JSON document, so a tailing
  reader never sees a torn line.

Repeated identical events are **deduplicated**: a record whose
``(level, event)`` pair was emitted within the last ``dedup_window_s``
seconds is suppressed and counted; the next emission outside the window
carries a ``suppressed`` field summarising how many twins were dropped.
An error loop therefore costs one ring slot per window, not one per
iteration.

Time comes from the same pluggable clock as the tracer, so `VirtualClock`
tests assert exact record timestamps and exact dedup-window arithmetic.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO

from repro.config import DEFAULT_LOG, LogConfig

__all__ = ["EventLog", "LEVELS", "LogRecord", "NullEventLog"]

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warning", "error")
_LEVEL_RANK = {level: rank for rank, level in enumerate(LEVELS)}


class _WallClock:
    """Default time source when no serve-tier clock is injected."""

    def now(self) -> float:
        return time.time()


@dataclass
class LogRecord:
    """One structured event: when, how severe, what, and its trace lineage."""

    ts: float
    level: str
    event: str
    trace_id: str | None = None
    span_id: str | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-friendly form (the sink's line and the dashboard's row)."""
        return {
            "ts": self.ts,
            "level": self.level,
            "event": self.event,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            **self.fields,
        }

    def __repr__(self) -> str:
        return f"LogRecord({self.level} {self.event!r} t={self.trace_id})"


class EventLog:
    """Bounded ring + optional JSON-lines sink of trace-correlated events.

    Parameters
    ----------
    config:
        The :class:`~repro.config.LogConfig` slice: ring capacity, dedup
        window, minimum severity.
    clock:
        Anything with ``now() -> float``; ``None`` uses wall time.  Hand it
        the tracer's clock so log timestamps and span times share one axis.
    tracer:
        The tracer whose current span stamps each record's
        ``trace_id``/``span_id``; ``None`` leaves records uncorrelated.
    """

    enabled = True

    def __init__(
        self,
        config: LogConfig = DEFAULT_LOG,
        clock: Any = None,
        tracer: Any = None,
    ) -> None:
        self.config = config
        self.clock = clock if clock is not None else _WallClock()
        self.tracer = tracer
        self._ring: deque[LogRecord] = deque(maxlen=config.ring_size)
        self._lock = threading.Lock()
        self._min_rank = _LEVEL_RANK[config.min_level]
        # Dedup state per (level, event): when the last record was *emitted*
        # and how many twins were suppressed since.
        self._last_emitted: dict[tuple[str, str], float] = {}
        self._pending_suppressed: dict[tuple[str, str], int] = {}
        self.n_records = 0
        self.n_suppressed = 0
        self._sink: IO[str] | None = None
        self._sink_path: Path | None = None

    # -- sink lifecycle ------------------------------------------------------

    def attach_sink(self, path: str | Path) -> Path:
        """Mirror every future record to a JSON-lines file (append mode)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            if self._sink is not None:
                self._sink.close()
            self._sink = open(path, "a", encoding="utf-8")
            self._sink_path = path
        return path

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    @property
    def sink_path(self) -> Path | None:
        return self._sink_path

    # -- emission ------------------------------------------------------------

    def emit(self, level: str, event: str, **fields: Any) -> LogRecord | None:
        """Record one event; returns ``None`` when filtered or deduplicated."""
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        if rank < self._min_rank:
            return None
        now = self.clock.now()
        key = (level, event)
        window = self.config.dedup_window_s
        with self._lock:
            if window > 0:
                last = self._last_emitted.get(key)
                if last is not None and now - last < window:
                    self._pending_suppressed[key] = (
                        self._pending_suppressed.get(key, 0) + 1
                    )
                    self.n_suppressed += 1
                    return None
            suppressed = self._pending_suppressed.pop(key, 0)
            self._last_emitted[key] = now
        current = self.tracer.current_span if self.tracer is not None else None
        record = LogRecord(
            ts=now,
            level=level,
            event=event,
            trace_id=current.trace_id if current is not None else None,
            span_id=current.span_id if current is not None else None,
            fields=dict(fields, suppressed=suppressed) if suppressed else dict(fields),
        )
        with self._lock:
            self._ring.append(record)
            self.n_records += 1
            sink = self._sink
        if sink is not None:
            # One write per record: each line is a whole JSON document, so
            # tailing readers never split a record.
            sink.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
            sink.flush()
        return record

    def debug(self, event: str, **fields: Any) -> LogRecord | None:
        return self.emit("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> LogRecord | None:
        return self.emit("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> LogRecord | None:
        return self.emit("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> LogRecord | None:
        return self.emit("error", event, **fields)

    # -- inspection ----------------------------------------------------------

    def events(
        self,
        event: str | None = None,
        level: str | None = None,
        trace_id: str | None = None,
    ) -> tuple[LogRecord, ...]:
        """Ring contents, oldest first, optionally filtered."""
        with self._lock:
            snapshot = tuple(self._ring)
        if event is not None:
            snapshot = tuple(r for r in snapshot if r.event == event)
        if level is not None:
            snapshot = tuple(r for r in snapshot if r.level == level)
        if trace_id is not None:
            snapshot = tuple(r for r in snapshot if r.trace_id == trace_id)
        return snapshot

    def tail(self, n: int = 50) -> list[dict[str, Any]]:
        """The newest ``n`` records as JSON-friendly dicts (dashboard shape)."""
        with self._lock:
            snapshot = list(self._ring)[-n:]
        return [record.as_dict() for record in snapshot]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._last_emitted.clear()
            self._pending_suppressed.clear()
            self.n_records = 0
            self.n_suppressed = 0

    def __len__(self) -> int:
        return len(self._ring)


class NullEventLog:
    """The disabled log: same surface, no state, no I/O."""

    enabled = False
    n_records = 0
    n_suppressed = 0
    sink_path = None

    def attach_sink(self, path: str | Path) -> Path:
        return Path(path)

    def close(self) -> None:
        pass

    def emit(self, level: str, event: str, **fields: Any) -> None:
        return None

    def debug(self, event: str, **fields: Any) -> None:
        return None

    def info(self, event: str, **fields: Any) -> None:
        return None

    def warning(self, event: str, **fields: Any) -> None:
        return None

    def error(self, event: str, **fields: Any) -> None:
        return None

    def events(self, event=None, level=None, trace_id=None) -> tuple:
        return ()

    def tail(self, n: int = 50) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0
