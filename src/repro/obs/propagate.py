"""Cross-process trace propagation: ship spans and metrics back from workers.

The tracer's ``contextvars`` parentage follows ``await`` but stops at pool
boundaries: threads do not inherit the driver's context and processes
cannot pickle it.  PR 9 papered over that with ``(value, seconds)`` pairs
merged as retroactive ``record()`` spans — a duration, not a trace.  This
module carries the real thing across:

* :class:`TraceContext` — the two ids (trace, parent span) that define
  where remote work belongs in the driver's tree; picklable, tiny.
* :class:`TracedTask` — the worker-side harness: wraps a task shipped to a
  **process** pool, runs it under a fresh worker-local ``Obs`` (installed
  as the worker's default for the duration, so any instrumented code the
  task calls lands in it), and returns ``(value, WorkerTelemetry)``.
* :class:`WorkerTelemetry` — the compact picklable payload: finished spans
  (times relative to the task root, so wall-clock epochs never need to
  agree) plus the worker registry's metric deltas.
* :func:`merge_worker_telemetry` — the driver-side graft: re-emits every
  worker span with fresh driver span ids (worker ids mean nothing here)
  under the driver's current span, re-anchored on the driver's clock, and
  folds counter/gauge/histogram deltas into the driver registry.

The merged tree is what the Chrome exporter renders: campaign →
``mapreduce.map`` → per-worker task spans, each on its worker's process
track, all one trace.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.metrics import Counter, Gauge, Histogram

__all__ = [
    "TraceContext",
    "TracedTask",
    "WorkerTelemetry",
    "current_context",
    "harvest_worker_telemetry",
    "merge_worker_telemetry",
]


@dataclass(frozen=True)
class TraceContext:
    """The propagated lineage: which trace, and which span is the parent."""

    trace_id: str
    span_id: str


def current_context(tracer: Any) -> TraceContext | None:
    """The caller's innermost open span as a shippable context, if any."""
    span = getattr(tracer, "current_span", None)
    if span is None or not span.trace_id:
        return None
    return TraceContext(trace_id=span.trace_id, span_id=span.span_id)


#: One shipped span: (local id, local parent id, name, start and end
#: relative to the task root's start, attributes).
_SpanRow = tuple[str, Any, str, float, float, dict]


@dataclass
class WorkerTelemetry:
    """Everything a pool worker measured, in picklable relative form."""

    spans: tuple[_SpanRow, ...] = ()
    counters: tuple[tuple[str, tuple, float], ...] = ()
    gauges: tuple[tuple[str, tuple, float], ...] = ()
    histograms: tuple[tuple[str, tuple, tuple, tuple, float, int], ...] = ()
    duration: float = 0.0
    context: TraceContext | None = None


def harvest_worker_telemetry(obs: Any, root: Any, context: TraceContext | None = None) -> WorkerTelemetry:
    """Collect a worker-local ``Obs`` into a shippable payload.

    Span times are rebased to the task root's start: the driver knows the
    task's duration and its own clock, which is all re-anchoring needs —
    worker and driver clocks never have to share an epoch.
    """
    anchor = root.start
    spans = tuple(
        (
            span.span_id,
            span.parent_id,
            span.name,
            span.start - anchor,
            span.end - anchor,
            dict(span.attributes),
        )
        for span in obs.tracer.spans()
    )
    counters: list[tuple[str, tuple, float]] = []
    gauges: list[tuple[str, tuple, float]] = []
    histograms: list[tuple[str, tuple, tuple, tuple, float, int]] = []
    for metric in obs.registry.collect():
        if isinstance(metric, Counter):
            if metric.value:
                counters.append((metric.name, metric.labels, metric.value))
        elif isinstance(metric, Gauge):
            gauges.append((metric.name, metric.labels, metric.value))
        elif isinstance(metric, Histogram):
            if metric.count:
                histograms.append(
                    (
                        metric.name,
                        metric.labels,
                        metric.edges,
                        tuple(int(c) for c in metric.bucket_counts()),
                        metric.sum,
                        metric.count,
                    )
                )
    return WorkerTelemetry(
        spans=spans,
        counters=tuple(counters),
        gauges=tuple(gauges),
        histograms=tuple(histograms),
        duration=root.duration,
        context=context,
    )


class TracedTask:
    """Picklable harness running one pool task under a worker-side tracer.

    The worker builds a *fresh* enabled ``Obs`` per task and installs it as
    the process default for the task's duration (pool workers persist
    across jobs — the previous default is restored), so the whole registry
    content **is** the task's metric delta and the whole span ring is the
    task's subtree.  The root span carries the worker's pid so the Chrome
    exporter can lay worker subtrees out on per-process tracks.
    """

    def __init__(
        self,
        task: Callable,
        context: TraceContext | None = None,
        name: str = "mapreduce.task",
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.task = task
        self.context = context
        self.name = name
        self.attributes = dict(attributes or {})

    def __call__(self):
        from repro.obs.core import Obs, set_default_obs

        obs = Obs()
        previous = set_default_obs(obs)
        try:
            with obs.tracer.span(
                self.name,
                pid=os.getpid(),
                worker=threading.current_thread().name,
                **self.attributes,
            ) as root:
                value = self.task()
        finally:
            set_default_obs(previous)
        return value, harvest_worker_telemetry(obs, root, self.context)


def merge_worker_telemetry(
    obs: Any, telemetry: WorkerTelemetry, **extra_attributes: Any
) -> tuple:
    """Graft one worker payload into the driver's tracer and registry.

    Spans are re-emitted with fresh driver span ids, parented under the
    driver's *current* span (falling back to the shipped
    :class:`TraceContext`, then to a fresh trace), and re-anchored on the
    driver's clock so the subtree ends "now" and keeps its internal
    offsets.  Metric deltas add into the driver registry — the same series
    the worker would have fed had it shared the process.

    Returns the emitted driver-side spans (root last-ish is not guaranteed;
    emission is parents-before-children).
    """
    _merge_metrics(obs.registry, telemetry)
    tracer = obs.tracer
    if not getattr(tracer, "enabled", False) or not telemetry.spans:
        return ()

    parent = tracer.current_span
    if parent is not None:
        trace_id, parent_id = parent.trace_id, parent.span_id
    elif telemetry.context is not None:
        trace_id, parent_id = telemetry.context.trace_id, telemetry.context.span_id
    else:
        trace_id, parent_id = None, None

    anchor = tracer.clock.now() - telemetry.duration
    pending = list(telemetry.spans)
    local_ids = {row[0] for row in pending}
    emitted: list = []
    id_map: dict[str, str] = {}
    # Parents before children: a row is ready once its local parent is
    # either outside the shipped set (a graft point) or already re-emitted.
    while pending:
        ready = [row for row in pending if row[1] not in local_ids or row[1] in id_map]
        if not ready:  # orphaned parent ids cannot cycle; defend anyway
            ready = pending
        pending = [row for row in pending if row not in ready]
        for local_id, local_parent, name, start_rel, end_rel, attributes in ready:
            is_graft_root = local_parent not in id_map
            attrs = dict(attributes, **extra_attributes) if is_graft_root else attributes
            span = tracer.emit(
                name,
                anchor + start_rel,
                anchor + end_rel,
                trace_id=trace_id,
                parent_id=id_map.get(local_parent, parent_id),
                **attrs,
            )
            if trace_id is None:
                trace_id = span.trace_id
            id_map[local_id] = span.span_id
            emitted.append(span)
    return tuple(emitted)


def _merge_metrics(registry: Any, telemetry: WorkerTelemetry) -> None:
    if not getattr(registry, "enabled", False):
        return
    for name, labels, delta in telemetry.counters:
        registry.counter(name, **dict(labels)).inc(delta)
    for name, labels, value in telemetry.gauges:
        registry.gauge(name, **dict(labels)).set(value)
    for name, labels, edges, counts, total_sum, count in telemetry.histograms:
        registry.histogram(name, edges=edges, **dict(labels)).merge_counts(
            counts, total_sum, count
        )
