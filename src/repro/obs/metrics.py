"""The metrics registry: named counters, gauges and fixed-bucket histograms.

One process-local :class:`MetricsRegistry` is the aggregation point for
every tier's counters — the campaign fan-out, the query engines behind the
router shards, the ingest service.  Three properties drive the design:

* **Identity by (name, labels), not by holder.**  ``registry.counter(name,
  **labels)`` returns the *same* :class:`Counter` object every time, so a
  rebuilt query engine (quarantine re-route, loader swap) re-acquires the
  counters its predecessor was feeding and the series continues — the
  pre-obs ``QueryStats`` reset silently on every rebuild.
* **No allocation on the hot path.**  Histograms pre-allocate their NumPy
  bucket-count array at registration; ``observe`` is one ``searchsorted``
  plus two scalar adds under the metric's lock.
* **Real thread safety.**  The router's asyncio tasks, the engine's thread
  executor and the map-reduce driver all hammer one registry; every mutate
  takes a per-metric ``threading.Lock`` (an unsynchronized ``+=`` is *not*
  atomic under the GIL).

The null twins (:class:`NullCounter` & co., behind
``ObsConfig(enabled=False)``) share the same surface and do nothing, so
instrumented code never branches on whether telemetry is on.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
]

#: Default histogram bucket upper bounds (seconds); mirrors
#: :class:`repro.config.ObsConfig.latency_buckets_s` without importing it so
#: the module stays dependency-free for the timing shim.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: One registry key: (metric name, sorted (label, value) pairs).
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, bytes, seconds-of-work)."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError("counters only go up; use a gauge for ups and downs")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels)}={self._value})"


class Gauge:
    """A value that goes both ways (queue depth, fleet size, freshness)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, value: float) -> None:
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}{dict(self.labels)}={self._value})"


class Histogram:
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    ``edges`` are the finite bucket upper bounds; an implicit ``+Inf``
    bucket catches the overflow.  Bucket counts are a pre-allocated int64
    array — ``observe`` allocates nothing: one ``searchsorted`` locates the
    bucket (``side="left"`` puts a value equal to an edge *in* that edge's
    ``le`` bucket) and two scalar adds maintain ``count``/``sum``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        edges: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        finite = tuple(float(e) for e in edges)
        if not finite:
            raise ValueError("a histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(finite, finite[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.labels = labels
        self.edges = finite
        self._edges_array = np.asarray(finite, dtype=float)
        self._counts = np.zeros(len(finite) + 1, dtype=np.int64)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = int(np.searchsorted(self._edges_array, value, side="left"))
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def value(self) -> float:
        """The running mean — the scalar summary exports fall back to."""
        return self._sum / self._count if self._count else 0.0

    def merge_counts(
        self, counts: Sequence[int], total_sum: float, total_count: int
    ) -> None:
        """Fold another histogram's per-bucket counts into this one.

        The driver-side half of worker metric propagation: a pool worker
        ships its histogram as ``(bucket counts, sum, count)`` and the
        driver adds them here.  Bucket layouts must match — the worker
        built its histogram from the same registration site.
        """
        incoming = np.asarray(counts, dtype=np.int64)
        if incoming.shape != self._counts.shape:
            raise ValueError(
                f"bucket count mismatch merging {self.name!r}: "
                f"{incoming.shape} into {self._counts.shape}"
            )
        with self._lock:
            self._counts += incoming
            self._sum += float(total_sum)
            self._count += int(total_count)

    def bucket_counts(self) -> np.ndarray:
        """Per-bucket (non-cumulative) counts; last entry is the +Inf bucket."""
        with self._lock:
            return self._counts.copy()

    def cumulative_counts(self) -> np.ndarray:
        """Cumulative ``le`` counts, the Prometheus exposition shape."""
        with self._lock:
            return np.cumsum(self._counts)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{dict(self.labels)} "
            f"count={self._count} sum={self._sum})"
        )


class MetricsRegistry:
    """Get-or-create home of every metric, keyed by (name, labels).

    Re-requesting a metric returns the existing instance — the property
    that lets counters outlive the components that increment them.  A name
    registered as one kind cannot be re-registered as another.
    """

    enabled = True

    def __init__(self, default_buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.default_buckets = tuple(float(e) for e in default_buckets)
        self._metrics: dict[MetricKey, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: Mapping[str, Any], **kwargs):
        key: MetricKey = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, edges: Sequence[float] | None = None, **labels: Any
    ) -> Histogram:
        chosen = self.default_buckets if edges is None else edges
        return self._get_or_create(Histogram, name, labels, edges=chosen)

    # -- introspection / export ---------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> list[Counter | Gauge | Histogram]:
        """Every registered metric, sorted by (name, labels)."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def find(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every metric registered under one name (any label set)."""
        with self._lock:
            return [
                self._metrics[key] for key in sorted(self._metrics) if key[0] == name
            ]

    def value(self, name: str, **labels: Any) -> float:
        """Scalar value of one metric; 0 when it was never registered."""
        key: MetricKey = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
        return metric.value if metric is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of one name's scalar values across every label set."""
        return float(sum(metric.value for metric in self.find(name)))

    def as_dict(self) -> dict[str, float]:
        """Flat ``name{label="v",...}`` -> scalar value map (JSON-friendly)."""
        out: dict[str, float] = {}
        for metric in self.collect():
            if metric.labels:
                rendered = ",".join(f'{k}="{v}"' for k, v in metric.labels)
                out[f"{metric.name}{{{rendered}}}"] = metric.value
            else:
                out[metric.name] = metric.value
        return out

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self.collect())


# ---------------------------------------------------------------------------
# Null twins: same surface, no work, no state.
# ---------------------------------------------------------------------------


class NullCounter:
    kind = "counter"
    name = ""
    labels: tuple[tuple[str, str], ...] = ()
    value = 0.0

    def inc(self, value: float = 1.0) -> None:
        pass


class NullGauge:
    kind = "gauge"
    name = ""
    labels: tuple[tuple[str, str], ...] = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, value: float) -> None:
        pass


class NullHistogram:
    kind = "histogram"
    name = ""
    labels: tuple[tuple[str, str], ...] = ()
    edges: tuple[float, ...] = ()
    value = 0.0
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def merge_counts(
        self, counts: Sequence[int], total_sum: float, total_count: int
    ) -> None:
        pass

    def bucket_counts(self) -> np.ndarray:
        return np.zeros(1, dtype=np.int64)

    def cumulative_counts(self) -> np.ndarray:
        return np.zeros(1, dtype=np.int64)


class NullRegistry:
    """The disabled registry: every lookup yields a shared no-op metric."""

    enabled = False
    default_buckets: tuple[float, ...] = DEFAULT_BUCKETS

    _COUNTER = NullCounter()
    _GAUGE = NullGauge()
    _HISTOGRAM = NullHistogram()

    def counter(self, name: str, **labels: Any) -> NullCounter:
        return self._COUNTER

    def gauge(self, name: str, **labels: Any) -> NullGauge:
        return self._GAUGE

    def histogram(
        self, name: str, edges: Sequence[float] | None = None, **labels: Any
    ) -> NullHistogram:
        return self._HISTOGRAM

    def __len__(self) -> int:
        return 0

    def collect(self) -> list:
        return []

    def find(self, name: str) -> list:
        return []

    def value(self, name: str, **labels: Any) -> float:
        return 0.0

    def total(self, name: str) -> float:
        return 0.0

    def as_dict(self) -> dict[str, float]:
        return {}

    def __iter__(self) -> Iterator:
        return iter(())
