"""The SLO engine: declarative objectives, burn-rate alerts, error budgets.

An :class:`SloSpec` names an objective ("99.9 % of requests are served",
"99 % of requests finish under 250 ms", "the served product is never more
than 10 minutes stale") **over series the registry already collects** — no
new instrumentation is required to add an objective, only a query:

* :class:`CounterRatioQuery` — bad/total event counters (availability:
  ``router_shed_total`` over ``router_requests_total``);
* :class:`HistogramAboveQuery` — observations above a latency bound, read
  exactly from a histogram's cumulative ``le`` buckets (the bound should
  be one of the bucket edges, where the count is exact);
* :class:`GaugeStalenessQuery` — freshness: one good/bad observation per
  evaluation tick depending on how far a timestamp gauge lags the clock.

The :class:`SloEvaluator` follows the Google-SRE *multi-window burn-rate*
recipe.  The **burn rate** is how many times faster than sustainable the
error budget is being consumed::

    burn = (bad_delta / total_delta) / (1 - objective)

A burn rate of 1 spends exactly the budget over the SLO period; 14.4 over
a 5-minute window is the classic page-now threshold.  Each spec is watched
over a *fast* window (acute outages fire within minutes) and a *slow*
window (sustained low-grade burn cannot hide below the fast threshold),
each with its own :class:`Alert` state machine::

    ok → pending → firing → resolved → (pending ...)

``pending`` debounces (``for_s``), and ``firing`` resolves only once the
burn rate drops below ``threshold * resolve_fraction`` — hysteresis, so an
alert flapping around the threshold does not flap pages.

Every spec also keeps a lifetime **error-budget ledger** from exact event
counts: ``budget = (1 - objective) * total_events`` bad events are allowed;
the ledger reports how many were spent and the remaining fraction.

Everything is clocked through the evaluator's pluggable clock: under
``VirtualClock`` a scripted violation fires at an exact tick, and the
ledger arithmetic is integer-exact (tests assert ``==``, not ``approx``).
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.config import DEFAULT_SLO, SloConfig
from repro.obs.metrics import Histogram

__all__ = [
    "Alert",
    "BurnWindow",
    "CounterRatioQuery",
    "ErrorBudget",
    "GaugeStalenessQuery",
    "HistogramAboveQuery",
    "SloEvaluator",
    "SloSpec",
    "availability_slo",
    "freshness_slo",
    "latency_slo",
]


# ---------------------------------------------------------------------------
# Series queries: how a spec reads (bad, total) from the registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CounterRatioQuery:
    """Cumulative bad/total event counters, summed across label sets."""

    bad: str
    total: str
    cumulative = True

    def sample(self, registry: Any, now: float) -> tuple[float, float]:
        return registry.total(self.bad), registry.total(self.total)


@dataclass(frozen=True)
class HistogramAboveQuery:
    """Observations above ``threshold_s`` in a latency histogram.

    Reads the cumulative ``le`` buckets: observations at or below the
    largest edge ≤ ``threshold_s`` are good, the rest (including the +Inf
    overflow bucket) are bad.  Pick a threshold that **is** a bucket edge
    and the split is exact; between edges it rounds the threshold down.
    """

    histogram: str
    threshold_s: float
    cumulative = True

    def sample(self, registry: Any, now: float) -> tuple[float, float]:
        bad = total = 0
        for metric in registry.find(self.histogram):
            if not isinstance(metric, Histogram):
                continue
            cumulative = metric.cumulative_counts()
            index = bisect.bisect_right(metric.edges, self.threshold_s) - 1
            good = int(cumulative[index]) if index >= 0 else 0
            total += metric.count
            bad += metric.count - good
        return float(bad), float(total)


@dataclass(frozen=True)
class GaugeStalenessQuery:
    """Freshness: is a timestamp gauge lagging the clock beyond a bound?

    Contributes one observation per evaluation tick — bad when
    ``now - gauge_value > max_lag_s`` (taking the freshest label set), good
    otherwise; no observation at all while the gauge was never set, so an
    idle process neither earns nor burns freshness budget.
    """

    gauge: str
    max_lag_s: float
    cumulative = False

    def sample(self, registry: Any, now: float) -> tuple[float, float]:
        metrics = registry.find(self.gauge)
        if not metrics:
            return 0.0, 0.0
        freshest = max(metric.value for metric in metrics)
        return (1.0 if now - freshest > self.max_lag_s else 0.0), 1.0


# ---------------------------------------------------------------------------
# Specs, windows, alerts, budgets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BurnWindow:
    """One burn-rate lookback: its length and the rate that trips it."""

    name: str
    duration_s: float
    burn_threshold: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("window duration_s must be positive")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over existing registry series."""

    name: str
    objective: float
    query: CounterRatioQuery | HistogramAboveQuery | GaugeStalenessQuery
    description: str = ""
    #: Override the evaluator-level window geometry for this spec only.
    windows: tuple[BurnWindow, ...] | None = None

    def __post_init__(self) -> None:
        if not 0 < self.objective < 1:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective} — "
                "an objective of 1 leaves no error budget to burn"
            )

    @property
    def budget_fraction(self) -> float:
        """The tolerated bad fraction (1 − objective)."""
        return 1.0 - self.objective


@dataclass
class Alert:
    """The state machine of one (spec, window) pair."""

    slo: str
    window: str
    burn_threshold: float
    state: str = "ok"  # ok | pending | firing | resolved
    burn_rate: float = 0.0
    pending_since: float | None = None
    fired_at: float | None = None
    resolved_at: float | None = None

    @property
    def firing(self) -> bool:
        return self.state == "firing"

    def as_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo,
            "window": self.window,
            "state": self.state,
            "burn_rate": self.burn_rate,
            "burn_threshold": self.burn_threshold,
            "pending_since": self.pending_since,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
        }


@dataclass(frozen=True)
class ErrorBudget:
    """One spec's lifetime budget ledger, from exact event counts."""

    slo: str
    objective: float
    total_events: float
    bad_events: float
    budget_events: float     # (1 - objective) * total_events
    consumed_fraction: float  # bad / budget, 0 when no budget accrued yet
    remaining_fraction: float  # 1 - consumed (may go negative: overspent)

    def as_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo,
            "objective": self.objective,
            "total_events": self.total_events,
            "bad_events": self.bad_events,
            "budget_events": self.budget_events,
            "consumed_fraction": self.consumed_fraction,
            "remaining_fraction": self.remaining_fraction,
        }


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------


class _DefaultClock:
    def now(self) -> float:
        import time

        return time.monotonic()


class SloEvaluator:
    """Sample specs on a clock, maintain alerts and budget ledgers.

    Parameters
    ----------
    registry:
        The metrics registry the spec queries read.
    clock:
        Anything with ``now() -> float`` (share the tracer's clock so SLO
        ticks and span times live on one axis).
    config:
        Window geometry and thresholds (:class:`~repro.config.SloConfig`);
        per-spec ``windows`` override it.
    log:
        Optional :class:`~repro.obs.log.EventLog`; alert transitions are
        logged (``slo.alert_firing`` / ``slo.alert_resolved``) so a page
        can be joined to the events and spans around it.
    """

    def __init__(
        self,
        registry: Any,
        clock: Any = None,
        config: SloConfig = DEFAULT_SLO,
        log: Any = None,
    ) -> None:
        self.registry = registry
        self.clock = clock if clock is not None else _DefaultClock()
        self.config = config
        self.log = log
        self.specs: list[SloSpec] = []
        #: (t, bad_cum, total_cum) samples per spec, oldest first.
        self._history: dict[str, deque[tuple[float, float, float]]] = {}
        #: Running (bad, total) accumulators for per-tick (non-cumulative)
        #: queries, so their windows see monotone series like counters do.
        self._accumulated: dict[str, tuple[float, float]] = {}
        #: First observed (bad, total) per spec — the budget ledger baseline.
        self._baseline: dict[str, tuple[float, float]] = {}
        self._alerts: dict[tuple[str, str], Alert] = {}

    # -- registration --------------------------------------------------------

    def add(self, spec: SloSpec) -> SloSpec:
        if any(existing.name == spec.name for existing in self.specs):
            raise ValueError(f"SLO {spec.name!r} is already registered")
        self.specs.append(spec)
        self._history[spec.name] = deque(maxlen=self.config.max_samples)
        for window in self._windows(spec):
            self._alerts[(spec.name, window.name)] = Alert(
                slo=spec.name,
                window=window.name,
                burn_threshold=window.burn_threshold,
            )
        return spec

    def _windows(self, spec: SloSpec) -> tuple[BurnWindow, ...]:
        if spec.windows is not None:
            return spec.windows
        return (
            BurnWindow("fast", self.config.fast_window_s, self.config.fast_burn_threshold),
            BurnWindow("slow", self.config.slow_window_s, self.config.slow_burn_threshold),
        )

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now: float | None = None) -> tuple[Alert, ...]:
        """One tick: sample every spec, update windows, alerts, ledgers."""
        t = self.clock.now() if now is None else float(now)
        for spec in self.specs:
            bad, total = spec.query.sample(self.registry, t)
            if not spec.query.cumulative:
                prev_bad, prev_total = self._accumulated.get(spec.name, (0.0, 0.0))
                bad, total = prev_bad + bad, prev_total + total
                self._accumulated[spec.name] = (bad, total)
            if spec.name not in self._baseline:
                self._baseline[spec.name] = (bad, total)
            history = self._history[spec.name]
            history.append((t, bad, total))
            self._prune(history, t)
            for window in self._windows(spec):
                alert = self._alerts[(spec.name, window.name)]
                alert.burn_rate = self._burn_rate(spec, history, window, t)
                self._step(alert, t)
        return self.alerts()

    def _prune(self, history: deque, now: float) -> None:
        """Drop samples older than the slow window needs (keep one beyond)."""
        horizon = now - self.config.slow_window_s
        while len(history) > 2 and history[1][0] <= horizon:
            history.popleft()

    @staticmethod
    def _window_start(
        history: deque[tuple[float, float, float]], target: float
    ) -> tuple[float, float, float]:
        """The newest sample at or before ``target`` (oldest as fallback)."""
        chosen = history[0]
        for sample in history:
            if sample[0] <= target:
                chosen = sample
            else:
                break
        return chosen

    def _burn_rate(
        self,
        spec: SloSpec,
        history: deque[tuple[float, float, float]],
        window: BurnWindow,
        now: float,
    ) -> float:
        _, bad_then, total_then = self._window_start(history, now - window.duration_s)
        _, bad_now, total_now = history[-1]
        delta_total = total_now - total_then
        if delta_total <= 0:
            return 0.0
        bad_fraction = (bad_now - bad_then) / delta_total
        return bad_fraction / spec.budget_fraction

    def _step(self, alert: Alert, now: float) -> None:
        burn = alert.burn_rate
        threshold = alert.burn_threshold
        resolve_below = threshold * self.config.resolve_fraction
        if burn >= threshold:
            if alert.state in ("ok", "resolved"):
                alert.state = "pending"
                alert.pending_since = now
            if alert.state == "pending" and now - alert.pending_since >= self.config.for_s:
                alert.state = "firing"
                alert.fired_at = now
                alert.resolved_at = None
                if self.log is not None:
                    self.log.warning(
                        "slo.alert_firing",
                        slo=alert.slo,
                        window=alert.window,
                        burn_rate=round(burn, 6),
                        burn_threshold=threshold,
                    )
        elif alert.state == "pending" and burn < threshold:
            # The violation did not outlast the debounce: stand down.
            alert.state = "ok"
            alert.pending_since = None
        elif alert.state == "firing" and burn < resolve_below:
            alert.state = "resolved"
            alert.resolved_at = now
            alert.pending_since = None
            if self.log is not None:
                self.log.info(
                    "slo.alert_resolved",
                    slo=alert.slo,
                    window=alert.window,
                    burn_rate=round(burn, 6),
                )

    # -- inspection ----------------------------------------------------------

    def alerts(self) -> tuple[Alert, ...]:
        """Every alert, ordered by (slo, window registration order)."""
        return tuple(self._alerts.values())

    def firing(self) -> tuple[Alert, ...]:
        return tuple(a for a in self._alerts.values() if a.firing)

    def alert(self, slo: str, window: str) -> Alert:
        return self._alerts[(slo, window)]

    def error_budget(self, name: str) -> ErrorBudget:
        """The lifetime ledger of one spec, exact from event counts."""
        spec = next((s for s in self.specs if s.name == name), None)
        if spec is None:
            raise KeyError(f"no SLO named {name!r}")
        history = self._history[name]
        if history:
            base_bad, base_total = self._baseline[name]
            _, bad_now, total_now = history[-1]
            bad = bad_now - base_bad
            total = total_now - base_total
        else:
            bad = total = 0.0
        budget = spec.budget_fraction * total
        consumed = bad / budget if budget > 0 else 0.0
        return ErrorBudget(
            slo=name,
            objective=spec.objective,
            total_events=total,
            bad_events=bad,
            budget_events=budget,
            consumed_fraction=consumed,
            remaining_fraction=1.0 - consumed,
        )

    def error_budgets(self) -> list[ErrorBudget]:
        return [self.error_budget(spec.name) for spec in self.specs]

    def as_dict(self) -> dict[str, Any]:
        """The dashboard shape: alert rows plus budget rows."""
        return {
            "alerts": [alert.as_dict() for alert in self.alerts()],
            "error_budgets": [budget.as_dict() for budget in self.error_budgets()],
        }


# ---------------------------------------------------------------------------
# Ready-made specs over the series the tiers already emit
# ---------------------------------------------------------------------------


def availability_slo(
    name: str = "serve_availability",
    objective: float = 0.999,
    bad: str = "router_shed_total",
    total: str = "router_requests_total",
) -> SloSpec:
    """Requests not shed by admission control, out of all routed requests."""
    return SloSpec(
        name=name,
        objective=objective,
        query=CounterRatioQuery(bad=bad, total=total),
        description=f"{objective:.3%} of requests admitted (not shed)",
    )


def latency_slo(
    name: str = "serve_latency",
    objective: float = 0.99,
    histogram: str = "router_request_latency_seconds",
    threshold_s: float = 0.25,
) -> SloSpec:
    """Requests finishing within a latency bound (a histogram bucket edge)."""
    return SloSpec(
        name=name,
        objective=objective,
        query=HistogramAboveQuery(histogram=histogram, threshold_s=threshold_s),
        description=f"{objective:.2%} of requests under {threshold_s * 1e3:g} ms",
    )


def freshness_slo(
    name: str = "ingest_freshness",
    objective: float = 0.95,
    gauge: str = "ingest_last_ingest_ts",
    max_lag_s: float = 600.0,
) -> SloSpec:
    """The served product keeps up with the granule stream."""
    return SloSpec(
        name=name,
        objective=objective,
        query=GaugeStalenessQuery(gauge=gauge, max_lag_s=max_lag_s),
        description=f"ingest lag under {max_lag_s:g} s in {objective:.1%} of checks",
    )
