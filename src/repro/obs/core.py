"""The ``Obs`` facade: one handle bundling a registry and a tracer.

Instrumented components take ``obs: Obs | None = None`` and resolve
``None`` to the process-local default (:func:`default_obs`), so plumbing
is optional everywhere: a bare ``QueryEngine()`` and the campaign runner
feed the same default registry, while tests inject a private
``Obs(clock=virtual_clock)`` to get exact, isolated telemetry.

``ObsConfig(enabled=False)`` selects the null twins — same surface, no
state, no locks — which is what the overhead benchmark compares against.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.config import DEFAULT_OBS, ObsConfig
from repro.obs.log import EventLog, NullEventLog
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.trace import NullTracer, Tracer

__all__ = ["Obs", "default_obs", "set_default_obs"]


class Obs:
    """One telemetry handle: ``.registry`` (metrics), ``.tracer`` (spans),
    ``.log`` (structured events, trace-correlated).

    Parameters
    ----------
    config:
        The :class:`~repro.config.ObsConfig` slice; ``enabled=False``
        swaps in the no-op null implementations.
    clock:
        Optional time source for the tracer (anything with ``now()``,
        e.g. the serve tier's ``VirtualClock``); ``None`` uses
        ``time.perf_counter``.
    """

    def __init__(self, config: ObsConfig = DEFAULT_OBS, clock: Any = None) -> None:
        self.config = config
        if config.enabled:
            self.registry: MetricsRegistry | NullRegistry = MetricsRegistry(
                default_buckets=config.latency_buckets_s
            )
            self.tracer: Tracer | NullTracer = Tracer(
                clock=clock, buffer_size=config.trace_buffer_size
            )
            # Ring-buffer drops surface as a counter so truncated traces
            # are visible in exports, not only on tracer internals.
            self.tracer.drop_counter = self.registry.counter(
                "trace_spans_dropped_total"
            )
            self.clock = self.tracer.clock
            self.log: EventLog | NullEventLog = EventLog(
                config.log, clock=self.clock, tracer=self.tracer
            )
        else:
            self.registry = NullRegistry()
            self.tracer = NullTracer()
            self.clock = clock
            self.log = NullEventLog()

    @classmethod
    def disabled(cls) -> "Obs":
        return cls(ObsConfig(enabled=False))

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- delegates (the surface instrumented code actually touches) ---------

    def counter(self, name: str, **labels: Any):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, edges=None, **labels: Any):
        return self.registry.histogram(name, edges=edges, **labels)

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def record(self, name: str, seconds: float, **attributes: Any):
        return self.tracer.record(name, seconds, **attributes)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Obs({state}, {len(self.registry)} metrics)"


_default_lock = threading.Lock()
_default: Obs | None = None


def default_obs() -> Obs:
    """The process-local default ``Obs``, created enabled on first use."""
    global _default
    with _default_lock:
        if _default is None:
            _default = Obs()
        return _default


def set_default_obs(obs: Obs) -> Obs:
    """Replace the process default; returns the previous one.

    Components resolve the default lazily at *construction*, so set it
    before building the stack you want it to cover (benchmarks install a
    disabled default this way).
    """
    global _default
    with _default_lock:
        previous, _default = _default, obs
    if previous is None:
        previous = obs
    return previous
