"""Zero-copy hot-path benchmarks: shm fan-out and memory-mapped decode.

Two regimes, feeding two gates in ``benchmarks/check_regression.py``:

* **fan-out**: one multi-granule struct-of-arrays payload (~48 MB) is
  map-reduced across a warmed persistent process pool, once with the
  shared-memory transport (arrays published once, workers slice attached
  views) and once with the legacy pickled path (every partition's arrays
  serialised through a pipe).  The pickled/shm time ratio is held above a
  committed >= 2x floor — the tentpole claim of the zero-copy executor.
* **decode**: one serving-scale product is written twice (npz archive and
  raw flat blob) and a single cold zoom-0 tile is served from each through
  a fresh :class:`~repro.serve.query.QueryEngine`.  The npz path inflates
  the whole archive and builds the full pyramid; the raw path memory-maps
  the blob and touches one tile's worth of pages.  Per kernel backend, the
  npz/raw ratio is held above a >= 3x floor.

Run:  python -m pytest benchmarks/bench_zero_copy.py --benchmark-json=zero-copy-bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import kernels
from repro.config import ServeConfig
from repro.distributed.mapreduce import MapReduceEngine
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.serve.catalog import ProductCatalog
from repro.serve.query import ProductLoader, QueryEngine, TileRequest

ROUNDS = dict(rounds=5, iterations=1, warmup_rounds=1)

# -- fan-out: shared-memory vs pickled task payloads -------------------------

#: ~48 MB across six segment-array variables — a few granules' worth of
#: photon/segment columns, the payload the campaign fan-out actually ships.
N_ROWS = 1_000_000
N_VARS = 6
N_PARTITIONS = 4


def _payload() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(29)
    return {f"var_{i}": rng.standard_normal(N_ROWS) for i in range(N_VARS)}


def _chunk_stats(chunk):
    """Cheap per-partition map: fault in every page, return scalars.

    One element per 4 KiB page (512 float64s) is read, so the shm path
    demonstrably touches the shared pages while the measurement stays
    transport-dominated — the pickled path pays full serialisation of the
    arrays whatever the map does.
    """
    return {name: float(np.sum(a[::512])) for name, a in chunk.items()}


def _merge_stats(parts):
    out: dict = {}
    for part in parts:
        for name, value in part.items():
            out[name] = out.get(name, 0.0) + value
    return out


@pytest.fixture(scope="module")
def fanout_setup():
    """Warmed persistent engines (pool spawn paid before any round)."""
    arrays = _payload()
    shm = MapReduceEngine(
        n_partitions=N_PARTITIONS, executor="process", max_workers=N_PARTITIONS
    )
    pickled = MapReduceEngine(
        n_partitions=N_PARTITIONS,
        executor="process",
        max_workers=N_PARTITIONS,
        use_shm=False,
    )
    # Warm both pools and check the transports agree bit-for-bit: the same
    # partitioning yields the same strided page sums whatever ships the bytes.
    warm_shm = shm.map_arrays(arrays, _chunk_stats, _merge_stats)
    warm_pickled = pickled.map_arrays(arrays, _chunk_stats, _merge_stats)
    assert warm_shm.value == warm_pickled.value
    yield arrays, shm, pickled
    shm.close()
    pickled.close()


def _run_fanout(engine: MapReduceEngine, arrays: dict[str, np.ndarray]) -> None:
    engine.map_arrays(arrays, _chunk_stats, _merge_stats)


def test_zero_copy_fanout_shm(benchmark, fanout_setup):
    arrays, shm, _ = fanout_setup
    benchmark.pedantic(_run_fanout, args=(shm, arrays), **ROUNDS)


def test_zero_copy_fanout_pickled(benchmark, fanout_setup):
    arrays, _, pickled = fanout_setup
    benchmark.pedantic(_run_fanout, args=(pickled, arrays), **ROUNDS)


# -- decode: raw memory-mapped window vs npz full inflate --------------------

SERVE = ServeConfig(tile_size=64, tile_cache_size=512)
GRID_NX, GRID_NY = 1536, 1024  # 153.6 km x 102.4 km at 100 m cells


@pytest.fixture(scope="module")
def archives(tmp_path_factory):
    """The same serving-scale mosaic on disk in both product formats."""
    rng = np.random.default_rng(31)
    grid = GridDefinition(
        x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=GRID_NX, ny=GRID_NY
    )
    occupancy = rng.random(grid.shape) < 0.4
    n_seg = np.where(occupancy, rng.integers(1, 40, grid.shape), 0).astype(np.int64)
    product = Level3Grid(
        grid=grid,
        variables={
            "n_segments": n_seg,
            "freeboard_mean": np.where(
                occupancy, rng.normal(0.3, 0.15, grid.shape), np.nan
            ),
        },
        metadata={"kind": "mosaic", "granule_ids": ["bench"], "fingerprint": "fp-zc"},
    )
    catalogs: dict[str, ProductCatalog] = {}
    for format in ("npz", "raw"):
        root = tmp_path_factory.mktemp(f"zero-copy-{format}")
        write_level3(product, root / "mosaic", format=format)
        catalog = ProductCatalog()
        catalog.scan(root)
        catalogs[format] = catalog
    return catalogs


#: One base-resolution tile: the minimal cold request a map client issues.
_TILE_REQUEST = TileRequest(
    bbox=(12_800.0, 6_400.0, 19_200.0, 12_800.0), variable="freeboard_mean", zoom=0
)


def _serve_cold(catalog: ProductCatalog) -> None:
    engine = QueryEngine(catalog, loader=ProductLoader(SERVE), serve=SERVE)
    response = engine.query(_TILE_REQUEST)
    assert response.n_tiles > 0


def _bench_decode(benchmark, archives, format: str, backend: str) -> None:
    with kernels.use_backend(backend):
        benchmark.pedantic(_serve_cold, args=(archives[format],), **ROUNDS)


def test_zero_copy_decode_npz_reference(benchmark, archives):
    _bench_decode(benchmark, archives, "npz", "reference")


def test_zero_copy_decode_npz_vectorized(benchmark, archives):
    _bench_decode(benchmark, archives, "npz", "vectorized")


def test_zero_copy_decode_raw_reference(benchmark, archives):
    _bench_decode(benchmark, archives, "raw", "reference")


def test_zero_copy_decode_raw_vectorized(benchmark, archives):
    _bench_decode(benchmark, archives, "raw", "vectorized")
