"""Shared fixtures for the benchmark harness.

Every paper table/figure has a dedicated ``bench_*`` module.  The expensive
end-to-end pipeline (scene -> granule -> auto-label -> train -> classify ->
freeboard) is executed once per benchmark session and shared; each benchmark
then times its own stage and writes the regenerated table/figure rows to
``benchmarks/results/`` so they can be compared against the paper (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig, prepare_experiment_data, run_end_to_end

#: Directory where each benchmark writes its regenerated rows.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated table/figure as plain text under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def benchmark_experiment_config(seed: int = 42) -> ExperimentConfig:
    """The experiment sizing used by the evaluation benchmarks.

    A 20 km x 20 km lead-rich scene (the paper's comparison tracks cross wide
    leads and polynyas) with a single strong beam and five training epochs —
    large enough to be representative, small enough to finish in seconds.
    """
    return ExperimentConfig(
        scene=SceneConfig(
            width_m=20_000.0,
            height_m=20_000.0,
            open_water_fraction=0.14,
            thin_ice_fraction=0.18,
            thick_ice_fraction=0.68,
            n_leads=14,
            seed=seed,
        ),
        epochs=5,
        seed=seed,
        drift_m=(150.0, 250.0),
    )


@pytest.fixture(scope="session")
def experiment_config():
    return benchmark_experiment_config()


@pytest.fixture(scope="session")
def experiment_data(experiment_config):
    """Stage-1 curated data (scene, granule, S2, auto-labels)."""
    return prepare_experiment_data(experiment_config)


@pytest.fixture(scope="session")
def pipeline_outputs(experiment_config):
    """The complete end-to-end pipeline outputs shared by the figure benches."""
    return run_end_to_end(experiment_config)
