"""Serving-tier latency benchmarks: cold decode vs hot cache, per backend.

Times the full router request path — resolution, single-flight accounting,
shard-engine execution — over a real on-disk mosaic, in two regimes:

* **cold**: a fresh router per round, so every request pays product decode
  plus pyramid build (the kernel-bound worst case a cache miss costs);
* **hot**: a pre-warmed router serving the same requests from the shard
  LRU caches (the steady state the prefetcher maintains for the Zipf head).

Each regime runs under both kernel backends, producing two derived gates
in ``benchmarks/check_regression.py``:

* the usual ``*_reference`` / ``*_vectorized`` pairing turns the cold runs
  into a serving-path speedup (decode + pyramid build dominate, so the
  vectorized backend must keep paying off end to end);
* the cold/hot *latency ratio* per backend is held against a committed
  floor — the router's cache path must stay an order of magnitude off the
  decode path, else the LRU or the single-flight accounting has regressed
  into the request path.

Run:  python -m pytest benchmarks/bench_router.py --benchmark-json=router-bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import kernels
from repro.config import RouterConfig, ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.serve.catalog import ProductCatalog
from repro.serve.query import TileRequest
from repro.serve.router import RequestRouter
from repro.serve.shard import ShardedCatalog

ROUNDS = dict(rounds=5, iterations=1, warmup_rounds=1)

SERVE = ServeConfig(tile_size=64, tile_cache_size=512)
CONFIG = RouterConfig(n_shards=2, max_queue_depth=64)

GRID_NX, GRID_NY = 768, 512  # 76.8 km x 51.2 km at 100 m cells


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """One serving-scale mosaic on disk, catalogued."""
    root = tmp_path_factory.mktemp("router-bench")
    rng = np.random.default_rng(5)
    grid = GridDefinition(
        x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=GRID_NX, ny=GRID_NY
    )
    occupancy = rng.random(grid.shape) < 0.4
    n_seg = np.where(occupancy, rng.integers(1, 40, grid.shape), 0).astype(np.int64)
    product = Level3Grid(
        grid=grid,
        variables={
            "n_segments": n_seg,
            "freeboard_mean": np.where(
                occupancy, rng.normal(0.3, 0.15, grid.shape), np.nan
            ),
        },
        metadata={"kind": "mosaic", "granule_ids": ["bench"], "fingerprint": "fp-bench"},
    )
    write_level3(product, root / "mosaic")
    catalog = ProductCatalog()
    catalog.scan(root)
    return catalog


def make_requests() -> list[TileRequest]:
    """A spread of distinct regions and zooms (no coalescing between them)."""
    requests = []
    for i, zoom in ((0, 0), (1, 0), (2, 1), (3, 1), (4, 2)):
        x0, y0 = i * 12_000.0, (i % 3) * 12_000.0
        requests.append(
            TileRequest(
                bbox=(x0, y0, x0 + 16_000.0, y0 + 12_800.0),
                variable="freeboard_mean",
                zoom=zoom,
            )
        )
    return requests


def fresh_router(catalog: ProductCatalog) -> RequestRouter:
    return RequestRouter(
        ShardedCatalog.from_catalog(catalog, CONFIG.n_shards),
        serve=SERVE,
        config=CONFIG,
    )


def serve_cold(catalog: ProductCatalog, requests: list[TileRequest]) -> None:
    fresh_router(catalog).serve(requests)


def _bench_cold(benchmark, archive, backend: str) -> None:
    with kernels.use_backend(backend):
        benchmark.pedantic(serve_cold, args=(archive, make_requests()), **ROUNDS)


def _bench_hot(benchmark, archive, backend: str) -> None:
    with kernels.use_backend(backend):
        router = fresh_router(archive)
        requests = make_requests()
        warmed = router.serve(requests)
        assert all(r.response.n_tiles > 0 for r in warmed)
        # Steady state: every tile in the LRU, requests still walk the full
        # router path (resolve -> flight -> shard engine -> cache hit).
        benchmark.pedantic(router.serve, args=(requests,), **ROUNDS)
        assert all(r.response.from_cache for r in router.serve(requests))


def test_router_cold_reference(benchmark, archive):
    _bench_cold(benchmark, archive, "reference")


def test_router_cold_vectorized(benchmark, archive):
    _bench_cold(benchmark, archive, "vectorized")


def test_router_hot_reference(benchmark, archive):
    _bench_hot(benchmark, archive, "reference")


def test_router_hot_vectorized(benchmark, archive):
    _bench_hot(benchmark, archive, "vectorized")
