"""Benchmark / regeneration of Fig. 5: distributed-training scaling curves.

The four panels (speedup, total time, throughput, time per epoch) are
regenerated from the calibrated DGX timing model; the benchmark clock times
the ring all-reduce of a full LSTM gradient set — the communication kernel
whose cost shapes the curves.
"""

from conftest import write_result

from repro.distributed.allreduce import ring_allreduce_average
from repro.evaluation.figures import figure5_training_scaling
from repro.evaluation.report import format_table
from repro.ml.models import build_lstm_classifier
from repro.utils.random import spawn_rngs


def test_fig5_training_scaling(benchmark):
    fig = figure5_training_scaling()

    # Benchmark: ring all-reduce of the paper-architecture LSTM gradients
    # across 8 simulated ranks.
    rngs = spawn_rngs(0, 8)
    rank_grads = []
    for rng in rngs:
        model = build_lstm_classifier(rng=rng)
        rank_grads.append([rng.normal(size=p.shape) for p in model.params])
    benchmark(ring_allreduce_average, rank_grads)

    rows = [
        {
            "GPUs": n,
            "speedup": s,
            "ideal": i,
            "total time (s)": t,
            "data/s": d,
            "time/epoch (s)": e,
        }
        for n, s, i, t, d, e in zip(
            fig["n_gpus"], fig["speedup"], fig["ideal_speedup"],
            fig["total_time_s"], fig["samples_per_second"], fig["time_per_epoch_s"],
        )
    ]
    text = format_table(rows, "Fig. 5: distributed training scaling (modelled DGX A100)")
    write_result("fig5_training_scaling", text)
    print("\n" + text)

    # Near-linear speedup that flattens slightly at 8 GPUs, as in the paper.
    assert fig["speedup"][-1] > 6.5
    assert fig["speedup"][-1] < fig["ideal_speedup"][-1]
